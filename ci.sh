#!/usr/bin/env bash
# Local CI gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== pels live smoke (loopback UDP, 2 s) =="
timeout 120 cargo run --release -q -p pels-cli --bin pels -- live --duration 2

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
