#!/usr/bin/env bash
# Local CI gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --workspace =="
# --workspace matters: a bare `cargo build --release` skips workspace
# members the root package does not depend on, leaving stale binaries.
cargo build --release --workspace

echo "== binary provenance gate (embedded commit vs HEAD) =="
# Stale target/release binaries have survived rebuilds on some hosts;
# refuse to record any result with a binary built from another commit.
bin_version="$(./target/release/pels version)"
head_commit="$(git rev-parse HEAD)"
case "$bin_version" in
  *"commit $head_commit"*) echo "$bin_version" ;;
  *) echo "stale binary: '$bin_version' does not embed HEAD $head_commit" >&2
     exit 1 ;;
esac

echo "== cargo test (workspace) =="
# --workspace again: the root package's `cargo test` alone skips every
# member crate's unit tests (scalebench, CLI, netsim, ...).
cargo test -q --workspace

echo "== pels live smoke (loopback UDP, 2 s) =="
# Scratch results dir: the smoke must not clobber the checked-in 5 s
# results/live.csv artifact (results/ is tracked in git).
live_dir="$(mktemp -d -t pels_live_XXXXXX)"
trap 'rm -rf "$live_dir"' EXIT
PELS_RESULTS_DIR="$live_dir" timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  live --duration 2

echo "== pels live determinism gate (in-memory transport, batch defaults) =="
# The Transport batch methods default to scalar loops, so MemHub-backed
# runs must be byte-identical run to run — the gate that vectored I/O
# plumbing never changed the deterministic backend's behavior.
PELS_RESULTS_DIR="$live_dir" timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  live --duration 2 --mem --json > "$live_dir/live_mem_a.json"
PELS_RESULTS_DIR="$live_dir" timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  live --duration 2 --mem --json > "$live_dir/live_mem_b.json"
cmp "$live_dir/live_mem_a.json" "$live_dir/live_mem_b.json" || {
  echo "pels live --mem output is not byte-identical across runs" >&2; exit 1; }

echo "== pels chaos wire smoke (fault matrix, CI preset) =="
# Six fault cases against the live wire agents; the command exits nonzero
# if any recovery invariant (rate re-convergence, green floor, budget) fails.
timeout 300 cargo run --release -q -p pels-cli --bin pels -- chaos --wire --short

echo "== pels run telemetry smoke (JSON-lines stream) =="
tel_file="$(mktemp -t pels_telemetry_XXXXXX.jsonl)"
trap 'rm -rf "$live_dir"; rm -f "$tel_file"' EXIT
timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  run --flows 2 --duration 5 --telemetry "$tel_file" > /dev/null
test -s "$tel_file" || { echo "telemetry stream is empty" >&2; exit 1; }
# `pels metrics` fails unless every line parses as a snapshot.
metrics_out="$(timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  metrics "$tel_file")"
printf '%s\n' "$metrics_out" | head -n 3

echo "== pels bench smoke (scaling harness, short preset, 2 workers) =="
bench_dir="$(mktemp -d -t pels_bench_XXXXXX)"
trap 'rm -rf "$live_dir"; rm -f "$tel_file"; rm -rf "$bench_dir"' EXIT
PELS_BENCH_DIR="$bench_dir" timeout 300 cargo run --release -q -p pels-cli --bin pels -- \
  bench --short --workers 2
# --check validates the rev-4 honesty gates: per-row effective_workers no
# larger than the host/request/shard count, and deterministic rows
# byte-identical to their serial digest.
timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  bench --check "$bench_dir/BENCH_scale.json"

echo "== parallel determinism gate (serial vs sharded report digest) =="
# The report must be a pure function of (config, seed): byte-identical
# JSON whether one worker or many execute the shards (DESIGN.md §12).
serial_json="$bench_dir/run_w1.json"
parallel_json="$bench_dir/run_w2.json"
timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  run --flows 8 --duration 10 --workers 1 --json > "$serial_json"
timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  run --flows 8 --duration 10 --workers 2 --json > "$parallel_json"
cmp "$serial_json" "$parallel_json" || {
  echo "parallel report diverges from serial report" >&2; exit 1; }

echo "== relaxed-mode smoke (bounded-ring cross-shard path) =="
# --relaxed trades byte-identity for throughput; the run must still finish
# and emit a well-formed report on any host (with one effective worker it
# degrades to the deterministic serial path).
timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  run --flows 8 --duration 5 --workers 2 --relaxed --json \
  > "$bench_dir/run_relaxed.json"
test -s "$bench_dir/run_relaxed.json" || {
  echo "relaxed run produced no report" >&2; exit 1; }

echo "== pels serve loopback smoke (256 flows, 2 s loadgen) =="
# A real serve+loadgen pair over loopback UDP: every flow registers,
# streams paced data, and says BYE. Gates: zero decode errors on the
# serve socket and zero leaked flow-table entries after teardown.
serve_json="$bench_dir/serve.json"
serve_log="$bench_dir/serve.log"
timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  serve --listen 127.0.0.1:0 --duration 8 --json \
  > "$serve_json" 2> "$serve_log" &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr="$(sed -n 's/^pels serve: listening on //p' "$serve_log" | head -n 1)"
  [ -n "$serve_addr" ] && break
  sleep 0.1
done
[ -n "$serve_addr" ] || { echo "serve never announced its address" >&2; exit 1; }
timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  loadgen --server "$serve_addr" --flows 256 --duration 2 --warmup 1 --json \
  > "$bench_dir/loadgen.json"
wait "$serve_pid"
python3 - "$serve_json" "$bench_dir/loadgen.json" <<'PY'
import json, sys
serve = json.load(open(sys.argv[1]))
lg = json.load(open(sys.argv[2]))
problems = []
if serve["decode_errors"] != 0:
    problems.append(f"serve saw {serve['decode_errors']} decode errors")
if serve["leaked_flows"] != 0:
    problems.append(f"serve leaked {serve['leaked_flows']} flow-table entries")
if serve["peak_flows"] < 256:
    problems.append(f"serve peaked at {serve['peak_flows']}/256 flows")
if lg["data_received"] == 0:
    problems.append("loadgen received no data")
if problems:
    sys.exit("serve smoke failed: " + "; ".join(problems))
print(f"serve smoke ok: peak {serve['peak_flows']} flows, "
      f"{lg['data_received']} datagrams delivered, "
      f"p99 pacing jitter {serve['pacing_jitter_p99_us']:.0f} us")
PY

echo "== pels bench --wire smoke (saturation harness, short preset) =="
PELS_BENCH_DIR="$bench_dir" timeout 300 cargo run --release -q -p pels-cli --bin pels -- \
  bench --wire --short
# --check re-derives the rows digest and the batched/loop headline ratio;
# hand-edited or truncated reports never validate.
timeout 120 cargo run --release -q -p pels-cli --bin pels -- \
  bench --wire --check "$bench_dir/BENCH_wire.json"

echo "== topo generator property tests =="
cargo test -q -p pels-topo

echo "== topo scenario smoke (fat-tree + random graph, workers 2) =="
# Short multi-bottleneck runs on the sharded engine; results CSVs go to
# the scratch dir so the checked-in 30 s artifacts stay untouched.
PELS_RESULTS_DIR="$bench_dir" timeout 300 cargo run --release -q -p pels-cli --bin pels -- \
  run --topology fattree:k=4,flows=8,seed=1 --duration 5 --workers 2 --json \
  > "$bench_dir/topo_ft.json"
PELS_RESULTS_DIR="$bench_dir" timeout 300 cargo run --release -q -p pels-cli --bin pels -- \
  run --topology waxman:routers=16,flows=8,seed=1 --duration 5 --workers 2 --json \
  > "$bench_dir/topo_wx_w2.json"

echo "== topo determinism gate (generated graph, workers 1 vs 2) =="
# Same spec, different thread-pool size: the partition fixes the schedule,
# so the reports must be byte-identical (DESIGN.md §12/§14).
PELS_RESULTS_DIR="$bench_dir" timeout 300 cargo run --release -q -p pels-cli --bin pels -- \
  run --topology waxman:routers=16,flows=8,seed=1 --duration 5 --workers 1 --json \
  > "$bench_dir/topo_wx_w1.json"
cmp "$bench_dir/topo_wx_w1.json" "$bench_dir/topo_wx_w2.json" || {
  echo "topo report diverges across worker counts" >&2; exit 1; }

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
