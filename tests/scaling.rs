//! Many-flow scaling regression tests (DESIGN.md §11).
//!
//! Pins the invariants that used to fail past N = 32: on a
//! capacity-proportional topology every flow keeps its Lemma 6 rate, the
//! base layer never drops, fairness stays near-perfect and utility near 1.
//! On the paper's *fixed* 4 Mb/s topology the same flow counts overload the
//! base floor; there the degradation policy must starve the excess flows
//! and protect the admitted set instead of letting everyone collapse.

use pels_analysis::queueing::jain_index;
use pels_core::scenario::{lemma6_kbps_for, proportional_config, Scenario, ScenarioReport};
use pels_core::sweep::run_parallel;
use pels_netsim::time::SimTime;

fn check_proportional_invariants(n: usize, report: &ScenarioReport) {
    assert_eq!(report.green_drops, 0, "N={n}: base-layer packets dropped");
    assert_eq!(report.starved_flows, 0, "N={n}: no starvation above the floor");
    let rates: Vec<f64> = report.flows.iter().map(|f| f.final_rate_kbps).collect();
    let jain = jain_index(&rates);
    assert!(jain > 0.999, "N={n}: Jain index {jain}");
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    let lemma6 = report.lemma6_kbps.expect("MKC flows have a Lemma 6 rate");
    assert!(
        (mean - lemma6).abs() < 0.08 * lemma6,
        "N={n}: mean rate {mean:.1} kb/s vs Lemma 6 {lemma6:.1} kb/s"
    );
    for f in &report.flows {
        assert!(f.utility > 0.9, "N={n} flow {}: utility {}", f.flow, f.utility);
    }
}

#[test]
fn proportional_topology_holds_invariants_at_32_64_128_flows() {
    let counts = [32usize, 64, 128];
    let configs: Vec<_> = counts.iter().map(|&n| proportional_config(n)).collect();
    let reports = run_parallel(configs, 30.0, 3);
    for (&n, report) in counts.iter().zip(&reports) {
        check_proportional_invariants(n, report);
    }
}

#[test]
fn fixed_topology_starves_excess_flows_and_protects_the_admitted_set() {
    // 32 flows on the paper's 2 Mb/s PELS share: the base floor fits at
    // most 15 (15 × 128 kb/s ≤ 2 Mb/s). The policy must converge to an
    // admitted set near that bound, after which green drops stop entirely.
    let n = 32;
    let cfg = pels_core::scenario::ScenarioConfig {
        flows: vec![Default::default(); n],
        keep_series: false,
        ..Default::default()
    };
    let mut s = Scenario::build(cfg);
    s.run_until(SimTime::from_secs_f64(15.0));
    let mid = s.report();
    // Utility counters are cumulative; snapshot them so the steady-state
    // window can be judged apart from the initial collapse-and-shed phase.
    let mid_utility: Vec<_> = (0..n).map(|i| s.receiver(i).utility()).collect();
    s.run_until(SimTime::from_secs_f64(30.0));
    let end = s.report();

    assert_eq!(
        end.green_drops, mid.green_drops,
        "green drops must stop once the admitted set settles"
    );
    assert!(
        (10..=15).contains(&end.admitted_flows),
        "admitted {} of {n}, expected close to the 15-flow floor capacity",
        end.admitted_flows
    );
    assert_eq!(end.admitted_flows + end.starved_flows, n);

    // The admitted flows share the pipe at Lemma 6 for the *admitted*
    // population and every frame's base layer decodes over the settled
    // window (Eq. 3 utility is meaningless here: at the overloaded
    // equilibrium MKC's excess α/β is shed at the AQM, so only a handful
    // of enhancement packets survive per flow). The starved flows keep
    // probing for capacity instead of emitting corrupted video.
    let admitted: Vec<_> = end.flows.iter().filter(|f| !f.starved).collect();
    let mean = admitted.iter().map(|f| f.final_rate_kbps).sum::<f64>() / admitted.len() as f64;
    let lemma6 = lemma6_kbps_for(s.config(), end.admitted_flows).expect("MKC");
    assert!(
        (mean - lemma6).abs() < 0.08 * lemma6,
        "admitted mean {mean:.1} kb/s vs Lemma 6 {lemma6:.1} kb/s"
    );
    for f in &admitted {
        let i = f.flow as usize;
        let (m, e) = (&mid_utility[i], s.receiver(i).utility());
        let frames = e.frames - m.frames;
        let base_ok = e.base_ok_frames - m.base_ok_frames;
        assert!(frames > 100, "admitted flow {} went quiet after 15 s", f.flow);
        assert_eq!(base_ok, frames, "admitted flow {}: base layer corrupted", f.flow);
    }
    for f in end.flows.iter().filter(|f| f.starved) {
        assert!(f.probes_sent > 0, "starved flow {} never probed", f.flow);
    }
}
