//! Calibration of the packet simulator against classical queueing theory:
//! Poisson arrivals into a fixed-rate port form an M/D/1 queue, whose mean
//! sojourn time the Pollaczek–Khinchine formula predicts exactly. If these
//! tests pass, the simulator's notion of "link", "queue", and "delay" is
//! trustworthy ground for every PELS experiment built on top.

use pels_analysis::queueing::{md1_mean_sojourn, mm1_mean_in_system, utilization};
use pels_netsim::cbr::{CbrConfig, PoissonSource};
use pels_netsim::disc::{DropTail, QueueLimit};
use pels_netsim::packet::{AgentId, FlowId, Packet, PacketKind};
use pels_netsim::port::Port;
use pels_netsim::sim::{Agent, Context, Simulator};
use pels_netsim::stats::Summary;
use pels_netsim::time::{Rate, SimDuration, SimTime};
use std::any::Any;

struct DelaySink {
    delays: Summary,
}
impl Agent for DelaySink {
    fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
        if p.kind == PacketKind::Data {
            self.delays.record(ctx.now.duration_since(p.sent_at).as_secs_f64());
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Runs an M/D/1 system at utilization `rho` and returns the measured mean
/// sojourn (queueing + service; propagation is set to zero).
fn measure_md1(rho: f64, seed: u64) -> (f64, f64) {
    let service_rate = Rate::from_mbps(4.0); // 500 B -> 1 ms service
    let packet = 500u32;
    let service_s = 0.001;
    let lambda = rho / service_s; // packets per second
    let arrival_rate = Rate::from_bps((lambda * packet as f64 * 8.0) as u64);

    let mut sim = Simulator::new(seed);
    let sink = AgentId(1);
    let port = Port::new(
        0,
        sink,
        service_rate,
        SimDuration::ZERO,
        Box::new(DropTail::new(QueueLimit::Packets(1_000_000))),
    );
    let cfg = CbrConfig::new(FlowId(1), sink, arrival_rate, packet, 3);
    sim.add_agent(Box::new(PoissonSource::new(cfg, port)));
    sim.add_agent(Box::new(DelaySink { delays: Summary::new() }));
    sim.run_until(SimTime::from_secs_f64(400.0));

    let measured = sim.agent::<DelaySink>(sink).delays.mean();
    let predicted = md1_mean_sojourn(lambda, service_s);
    (measured, predicted)
}

#[test]
fn md1_sojourn_matches_pollaczek_khinchine() {
    for (rho, tol) in [(0.3, 0.03), (0.6, 0.05), (0.8, 0.10)] {
        let (measured, predicted) = measure_md1(rho, 42);
        assert!(
            (measured - predicted).abs() < tol * predicted,
            "rho={rho}: measured {measured:.6}s vs P-K {predicted:.6}s"
        );
    }
}

#[test]
fn md1_beats_mm1_variability() {
    // At the same utilization, deterministic service must produce *less*
    // delay than the exponential-service M/M/1 prediction.
    let rho: f64 = 0.7;
    let (measured, _) = measure_md1(rho, 7);
    let service_s = 0.001;
    let mm1_w = mm1_mean_in_system(rho) / (rho / service_s);
    assert!(measured < mm1_w, "M/D/1 {measured:.6}s should undercut M/M/1 {mm1_w:.6}s");
    assert!((utilization(rho / service_s, service_s) - rho).abs() < 1e-12);
}

#[test]
fn empty_system_delay_is_pure_service_time() {
    // At vanishing load the sojourn tends to the bare serialization time.
    let (measured, predicted) = measure_md1(0.02, 3);
    assert!((measured - 0.001).abs() < 0.0001, "measured {measured}");
    assert!((predicted - 0.001).abs() < 0.0001);
}
