//! Property-based integration tests: randomized configurations of the full
//! stack must preserve the framework's invariants. (Each case runs a short
//! packet simulation, so case counts are kept deliberately small.)

use pels_core::gamma::GammaConfig;
use pels_core::mkc::MkcConfig;
use pels_core::scenario::{pels_flows, Scenario, ScenarioConfig};
use pels_core::source::CcSpec;
use pels_core::FlowSpec;
use pels_netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// For any in-range controller gains and moderate flow counts:
    /// green never drops, every steady-state frame decodes its base layer,
    /// and utility stays above 0.9.
    #[test]
    fn pels_invariants_hold_for_random_configs(
        n_flows in 2usize..6,
        sigma in 0.2f64..1.5,
        beta in 0.3f64..0.7,
        p_thr in 0.6f64..0.9,
        seed in 0u64..1000,
    ) {
        let flow = FlowSpec {
            cc: CcSpec::Mkc(MkcConfig { beta, ..Default::default() }),
            gamma: GammaConfig { sigma, p_thr, ..Default::default() },
            ..Default::default()
        };
        let cfg = ScenarioConfig {
            seed,
            flows: vec![flow; n_flows],
            keep_series: false,
            ..Default::default()
        };
        let mut s = Scenario::build(cfg);
        s.run_until(SimTime::from_secs_f64(25.0));
        let report = s.report();
        prop_assert_eq!(report.bottleneck_drops_by_class[0], 0, "green must never drop");

        let mut u = pels_fgs::UtilityStats::new();
        for i in 0..n_flows {
            for d in s.receiver(i).decode_all() {
                if d.frame >= 80 {
                    u.add(&d);
                }
            }
        }
        prop_assert!(u.frames > 0);
        prop_assert_eq!(u.base_ok_frames, u.frames, "base layers stay intact");
        prop_assert!(u.utility() > 0.9, "utility {} too low", u.utility());
    }

    /// Fairness: all flows converge to rates within 15% of each other for
    /// any staggered start pattern.
    #[test]
    fn flows_converge_to_fair_shares(
        stagger in 0.0f64..8.0,
        seed in 0u64..1000,
    ) {
        let cfg = ScenarioConfig {
            seed,
            flows: pels_flows(&[0.0, stagger, stagger * 1.5]),
            keep_series: false,
            ..Default::default()
        };
        let mut s = Scenario::build(cfg);
        s.run_until(SimTime::from_secs_f64(30.0));
        let rates: Vec<f64> = (0..3).map(|i| s.source(i).rate_bps()).collect();
        let mean = rates.iter().sum::<f64>() / 3.0;
        for (i, r) in rates.iter().enumerate() {
            prop_assert!(
                (r - mean).abs() < 0.15 * mean,
                "flow {} rate {} vs mean {}", i, r, mean
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Determinism is configuration-independent: any (seed, flows, delay)
    /// triple replays identically.
    #[test]
    fn determinism_for_any_config(
        seed in 0u64..10_000,
        n_flows in 1usize..4,
        delay_ms in 1u64..20,
    ) {
        let run = || {
            let cfg = ScenarioConfig {
                seed,
                flows: pels_flows(&vec![0.0; n_flows]),
                access_delay: SimDuration::from_millis(delay_ms),
                keep_series: false,
                ..Default::default()
            };
            let mut s = Scenario::build(cfg);
            s.run_until(SimTime::from_secs_f64(5.0));
            (s.sim.events_processed(), s.source(0).rate_bps().to_bits())
        };
        prop_assert_eq!(run(), run());
    }
}
