//! Property-based integration tests: randomized configurations of the full
//! stack must preserve the framework's invariants. (Each case runs a short
//! packet simulation, so case counts are kept deliberately small.)

use pels_core::gamma::GammaConfig;
use pels_core::mkc::MkcConfig;
use pels_core::scenario::{pels_flows, Scenario, ScenarioConfig};
use pels_core::source::CcSpec;
use pels_core::FlowSpec;
use pels_netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// For any in-range controller gains and moderate flow counts:
    /// green never drops, every steady-state frame decodes its base layer,
    /// and utility stays above 0.9.
    #[test]
    fn pels_invariants_hold_for_random_configs(
        n_flows in 2usize..6,
        sigma in 0.2f64..1.5,
        beta in 0.3f64..0.7,
        p_thr in 0.6f64..0.9,
        seed in 0u64..1000,
    ) {
        let flow = FlowSpec {
            cc: CcSpec::Mkc(MkcConfig { beta, ..Default::default() }),
            gamma: GammaConfig { sigma, p_thr, ..Default::default() },
            ..Default::default()
        };
        let cfg = ScenarioConfig {
            seed,
            flows: vec![flow; n_flows],
            keep_series: false,
            ..Default::default()
        };
        let mut s = Scenario::build(cfg);
        s.run_until(SimTime::from_secs_f64(25.0));
        let report = s.report();
        prop_assert_eq!(report.bottleneck_drops_by_class[0], 0, "green must never drop");

        let mut u = pels_fgs::UtilityStats::new();
        for i in 0..n_flows {
            for d in s.receiver(i).decode_all() {
                if d.frame >= 80 {
                    u.add(&d);
                }
            }
        }
        prop_assert!(u.frames > 0);
        prop_assert_eq!(u.base_ok_frames, u.frames, "base layers stay intact");
        prop_assert!(u.utility() > 0.9, "utility {} too low", u.utility());
    }

    /// Fairness: all flows converge to rates within 15% of each other for
    /// any staggered start pattern.
    #[test]
    fn flows_converge_to_fair_shares(
        stagger in 0.0f64..8.0,
        seed in 0u64..1000,
    ) {
        let cfg = ScenarioConfig {
            seed,
            flows: pels_flows(&[0.0, stagger, stagger * 1.5]),
            keep_series: false,
            ..Default::default()
        };
        let mut s = Scenario::build(cfg);
        s.run_until(SimTime::from_secs_f64(30.0));
        let rates: Vec<f64> = (0..3).map(|i| s.source(i).rate_bps()).collect();
        let mean = rates.iter().sum::<f64>() / 3.0;
        for (i, r) in rates.iter().enumerate() {
            prop_assert!(
                (r - mean).abs() < 0.15 * mean,
                "flow {} rate {} vs mean {}", i, r, mean
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Determinism is configuration-independent: any (seed, flows, delay)
    /// triple replays identically.
    #[test]
    fn determinism_for_any_config(
        seed in 0u64..10_000,
        n_flows in 1usize..4,
        delay_ms in 1u64..20,
    ) {
        let run = || {
            let cfg = ScenarioConfig {
                seed,
                flows: pels_flows(&vec![0.0; n_flows]),
                access_delay: SimDuration::from_millis(delay_ms),
                keep_series: false,
                ..Default::default()
            };
            let mut s = Scenario::build(cfg);
            s.run_until(SimTime::from_secs_f64(5.0));
            (s.sim.events_processed(), s.source(0).rate_bps().to_bits())
        };
        prop_assert_eq!(run(), run());
    }
}

/// Harness for the fault-injection properties: a paced packet source driving
/// a single faulted port into a counting sink — a closed system where every
/// packet the source emits must end up delivered, dropped, or still queued.
mod fault_harness {
    use pels_netsim::disc::{DropTail, QueueLimit};
    use pels_netsim::faults::apply_port_fault;
    use pels_netsim::port::Port;
    use pels_netsim::sim::{Agent, Context};
    use pels_netsim::time::{Rate, SimDuration, SimTime};
    use pels_netsim::{AgentId, FaultAction, FlowId, Packet};
    use std::any::Any;

    pub const PACKET_BYTES: u32 = 500;

    /// Emits one packet per `gap` until `stop`, honouring port faults.
    pub struct Blaster {
        pub port: Port,
        pub gap: SimDuration,
        pub stop: SimTime,
        pub sent: u64,
        seq: u64,
    }

    impl Blaster {
        pub fn new(peer: AgentId, gap: SimDuration, stop: SimTime) -> Self {
            Blaster {
                port: Port::new(
                    0,
                    peer,
                    Rate::from_mbps(4.0),
                    SimDuration::from_millis(1),
                    Box::new(DropTail::new(QueueLimit::Packets(50))),
                ),
                gap,
                stop,
                sent: 0,
                seq: 0,
            }
        }
    }

    impl Agent for Blaster {
        fn start(&mut self, ctx: &mut Context<'_>) {
            ctx.schedule_timer(SimDuration::ZERO, 1);
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
            if ctx.now >= self.stop {
                return;
            }
            let pkt = Packet::data(FlowId(0), ctx.self_id, self.port.peer, PACKET_BYTES)
                .with_seq(self.seq)
                .with_id(ctx.alloc_packet_id());
            self.seq += 1;
            self.sent += 1;
            self.port.send(pkt, ctx);
            ctx.schedule_timer(self.gap, 1);
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
            self.port.on_tx_complete(ctx);
        }
        fn on_fault(&mut self, action: &FaultAction, ctx: &mut Context<'_>) {
            apply_port_fault(std::slice::from_mut(&mut self.port), action, ctx);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts arrivals and records their times.
    pub struct Sink {
        pub got: u64,
        pub arrivals: Vec<SimTime>,
    }

    impl Agent for Sink {
        fn on_packet(&mut self, _p: Packet, ctx: &mut Context<'_>) {
            self.got += 1;
            self.arrivals.push(ctx.now);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Under ANY random fault schedule (link flaps, a queue flush, and a
    /// final forced link-up) the simulation terminates, time advances
    /// monotonically at the sink, and packets are conserved:
    /// sent == delivered + dropped + still queued. With the link restored
    /// and the source stopped, the queue must also fully drain.
    #[test]
    fn fault_schedules_preserve_conservation(
        seed in 0u64..10_000,
        flaps in 1usize..5,
        max_outage_ms in 20u64..400,
        flush in 0u8..2,
    ) {
        use fault_harness::{Blaster, Sink};
        use pels_netsim::faults::FaultSchedule;
        use pels_netsim::{FaultAction, Simulator};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut sim = Simulator::new(seed);
        let src = sim.add_agent(Box::new(Blaster::new(
            pels_netsim::AgentId(1),
            SimDuration::from_millis(2),
            SimTime::from_secs_f64(3.0),
        )));
        let sink = sim.add_agent(Box::new(Sink { got: 0, arrivals: vec![] }));

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut faults = FaultSchedule::random_link_flaps(
            &mut rng,
            src,
            0,
            (SimTime::from_secs_f64(0.1), SimTime::from_secs_f64(2.5)),
            flaps,
            SimDuration::from_millis(max_outage_ms),
        );
        if flush == 1 {
            faults.flush_at(src, SimTime::from_secs_f64(1.7));
        }
        // Whatever the flaps did, force the link up before the drain window.
        faults.push(
            SimTime::from_secs_f64(3.5),
            src,
            FaultAction::LinkUp { port: 0 },
        );
        sim.install_faults(&faults);

        // Terminates (no deadlock): run_until returns with all work done.
        sim.run_until(SimTime::from_secs_f64(6.0));
        prop_assert!(sim.now() <= SimTime::from_secs_f64(6.0));
        prop_assert!(sim.events_processed() > 0);

        let (sent, dropped, queued) = {
            let b = sim.agent::<Blaster>(src);
            (b.sent, b.port.stats.dropped_packets, b.port.discipline().len_packets() as u64)
        };
        let s = sim.agent::<Sink>(sink);

        // Monotone time at the sink.
        prop_assert!(s.arrivals.windows(2).all(|w| w[0] <= w[1]));

        // Conservation: every emitted packet is accounted for.
        prop_assert_eq!(
            sent,
            s.got + dropped + queued,
            "sent {} != delivered {} + dropped {} + queued {}",
            sent, s.got, dropped, queued
        );

        // The source emitted for 3 s at 2 ms per packet.
        prop_assert_eq!(sent, 1500);

        // With the link up and the source stopped, the queue drains dry.
        prop_assert_eq!(queued, 0, "queue must drain after the final link-up");
    }
}
