//! Cross-validation of the analytical models (pels-analysis) against the
//! packet-level machinery (pels-netsim + pels-fgs): every closed form in
//! Section 3 must agree with what the simulator's components actually do.

use pels_analysis::lossmodel::{BernoulliChannel, BurstStats};
use pels_analysis::montecarlo::simulate_useful_fixed;
use pels_analysis::useful::{best_effort_utility, expected_useful_fixed};
use pels_fgs::decoder::{FrameReception, UtilityStats};
use pels_fgs::packetize::packetize;
use pels_fgs::scaling::ScaledFrame;
use pels_netsim::disc::{Discipline, QEntry, QueueLimit, UniformLoss};
use pels_netsim::event::PacketSlot;
use pels_netsim::time::SimTime;

/// Streams `frames` frames of `h` enhancement packets through a Bernoulli
/// channel and decodes with the real FGS decoder.
fn decode_through_channel(p: f64, h: u32, frames: u64, seed: u64) -> UtilityStats {
    let mut channel = BernoulliChannel::new(p, seed);
    let mut stats = UtilityStats::new();
    let frame = ScaledFrame { base_bytes: 500, enhancement_bytes: h * 500 };
    let plan = packetize(&frame, h * 500, 0, 500);
    for f in 0..frames {
        let mut rx = FrameReception::from_plan(f, &plan);
        rx.mark_received(0); // base protected, as in the paper's comparator
        for pkt in plan.iter().skip(1) {
            if !channel.is_lost() {
                rx.mark_received(pkt.index);
            }
        }
        stats.add(&rx.decode());
    }
    stats
}

#[test]
fn fgs_decoder_reproduces_eq2_exactly() {
    // Table 1 regenerated through the *decoder* rather than the ad-hoc
    // Monte Carlo: same closed form, independent code path.
    for (p, expect) in [(0.01, 62.76), (0.1, 8.99)] {
        let stats = decode_through_channel(p, 100, 40_000, 11);
        let measured = stats.mean_useful_per_frame();
        assert!(
            (measured - expect).abs() < 0.5,
            "p={p}: decoder gives {measured}, Eq. 2 gives {expect}"
        );
    }
}

#[test]
fn fgs_decoder_reproduces_eq3_utility() {
    let stats = decode_through_channel(0.1, 100, 40_000, 13);
    let expect = best_effort_utility(0.1, 100);
    assert!(
        (stats.utility() - expect).abs() < 0.01,
        "utility {} vs Eq. 3 {expect}",
        stats.utility()
    );
}

#[test]
fn montecarlo_and_decoder_agree() {
    let mc = simulate_useful_fixed(0.05, 80, 30_000, 17);
    let dec = decode_through_channel(0.05, 80, 30_000, 17);
    assert!(
        (mc.mean - dec.mean_useful_per_frame()).abs() < 0.3,
        "two independent estimators: {} vs {}",
        mc.mean,
        dec.mean_useful_per_frame()
    );
}

#[test]
fn uniform_loss_discipline_is_a_bernoulli_channel() {
    // The netsim UniformLoss discipline must produce geometric bursts —
    // the Section 3 assumption the best-effort comparator relies on.
    let mut q = UniformLoss::new(QueueLimit::Packets(1_000_000), 0, 23);
    q.set_drop_prob(0.2);
    let mut dropped = Vec::new();
    let mut lost_flags = Vec::with_capacity(100_000);
    for seq in 0..100_000u32 {
        let before = dropped.len();
        q.enqueue(QEntry::new(PacketSlot(seq), 500, 1), SimTime::ZERO, &mut dropped);
        lost_flags.push(dropped.len() > before);
    }
    let bursts = BurstStats::from_sequence(lost_flags.iter().copied());
    // Geometric with ratio p: mean burst = 1/(1-p) = 1.25.
    assert!((bursts.mean() - 1.25).abs() < 0.02, "burst mean {}", bursts.mean());
    assert!((bursts.geometric_ratio() - 0.2).abs() < 0.02);
    let loss = lost_flags.iter().filter(|&&l| l).count() as f64 / lost_flags.len() as f64;
    assert!((loss - 0.2).abs() < 0.01);
}

#[test]
fn lemma1_general_pmf_matches_variable_size_traces() {
    // Eq. (1) with an arbitrary frame-size PMF, validated against the real
    // decoder fed a synthetic variable-size trace through a Bernoulli
    // channel (the paper only simulates the constant-size special case).
    use pels_analysis::useful::expected_useful_general;
    use pels_fgs::trace_gen::{generate, TraceGenConfig};

    let p = 0.1;
    let cfg = TraceGenConfig {
        n_frames: 12_000,
        mean_enhancement_bytes: 20_000, // 40 packets mean
        cv: 0.3,
        smoothness: 0.0, // i.i.d. sizes, as Lemma 1 assumes
        base_bytes: 500,
        ..Default::default()
    };
    let trace = generate(&cfg, 5);

    // Empirical PMF of enhancement-packet counts.
    let counts: Vec<u32> = trace.iter().map(|f| f.enhancement_bytes.div_ceil(500)).collect();
    let max_h = *counts.iter().max().unwrap() as usize;
    let mut pmf = vec![0.0; max_h];
    for &h in &counts {
        pmf[h as usize - 1] += 1.0 / counts.len() as f64;
    }
    let model = expected_useful_general(p, &pmf);

    // Decode every frame through a Bernoulli channel.
    let mut channel = BernoulliChannel::new(p, 9);
    let mut stats = UtilityStats::new();
    for spec in trace.iter() {
        let frame = ScaledFrame { base_bytes: 500, enhancement_bytes: spec.enhancement_bytes };
        let plan = packetize(&frame, spec.enhancement_bytes, 0, 500);
        let mut rx = FrameReception::from_plan(spec.index, &plan);
        rx.mark_received(0);
        for pkt in plan.iter().skip(1) {
            if !channel.is_lost() {
                rx.mark_received(pkt.index);
            }
        }
        stats.add(&rx.decode());
    }
    let measured = stats.mean_useful_per_frame();
    assert!(
        (measured - model).abs() < 0.25,
        "Lemma 1 general: decoder {measured:.3} vs Eq. 1 {model:.3}"
    );
}

#[test]
fn saturation_effect_matches_model_at_large_h() {
    // Section 3.1: as H grows, E[Y] saturates at (1-p)/p while the loss
    // keeps shredding everything above the first gap.
    let small = decode_through_channel(0.1, 20, 20_000, 29);
    let large = decode_through_channel(0.1, 500, 4_000, 31);
    assert!(
        (large.mean_useful_per_frame() - 9.0).abs() < 0.5,
        "E[Y] saturates at 9: {}",
        large.mean_useful_per_frame()
    );
    assert!(
        small.utility() > 4.0 * large.utility(),
        "utility decays ~1/H: {} vs {}",
        small.utility(),
        large.utility()
    );
    assert!((small.mean_useful_per_frame() - expected_useful_fixed(0.1, 20)).abs() < 0.2);
}
