//! Integration tests spanning all crates: the full PELS stack (netsim +
//! fgs + core) exercised end to end, checking the paper's headline claims
//! and the engineering invariants that the unit tests cannot see.

use pels_core::gamma::GammaConfig;
use pels_core::mkc::MkcConfig;
use pels_core::router::AqmConfig;
use pels_core::scenario::{
    best_effort_flows, pels_flows, to_best_effort, wideband_config, FlowSpec, Scenario,
    ScenarioConfig,
};
use pels_core::source::CcSpec;
use pels_core::tandem::{Tandem, TandemConfig};
use pels_fgs::UtilityStats;
use pels_netsim::time::{Rate, SimDuration, SimTime};

fn steady_utility(s: &Scenario, warmup_frames: u64) -> UtilityStats {
    let mut u = UtilityStats::new();
    for i in 0..s.receivers.len() {
        for d in s.receiver(i).decode_all() {
            if d.frame >= warmup_frames {
                u.add(&d);
            }
        }
    }
    u
}

#[test]
fn headline_pels_beats_best_effort_by_an_order_of_magnitude() {
    // The paper's core claim (Sections 3-4): at H ~ 100-packet frames and
    // ~10% FGS loss, preferential streaming delivers ~10x the useful data.
    let cfg = wideband_config(4, 0.10);
    let t = SimTime::from_secs_f64(40.0);
    let mut pels = Scenario::build(cfg.clone());
    pels.run_until(t);
    let mut be = Scenario::build(to_best_effort(cfg));
    be.run_until(t);

    let pu = steady_utility(&pels, 100);
    let bu = steady_utility(&be, 100);
    assert!(pu.utility() > 0.95, "PELS utility {}", pu.utility());
    assert!(bu.utility() < 0.2, "best-effort utility {}", bu.utility());
    assert!(
        pu.utility() > 5.0 * bu.utility(),
        "expected ~10x: {} vs {}",
        pu.utility(),
        bu.utility()
    );
}

#[test]
fn full_scenario_is_bit_deterministic() {
    let run = |seed: u64| {
        let cfg =
            ScenarioConfig { seed, flows: pels_flows(&[0.0, 5.0, 10.0]), ..Default::default() };
        let mut s = Scenario::build(cfg);
        s.run_until(SimTime::from_secs_f64(20.0));
        (s.sim.events_processed(), serde_json::to_string(&s.report()).unwrap())
    };
    assert_eq!(run(3), run(3), "same seed, same run");

    // A pure-PELS run has no randomness on its fast path (pacing, MKC and
    // the priority queues are deterministic), so different seeds coincide.
    // Where randomness exists — the best-effort comparator's uniform
    // drops — seeds must matter:
    let run_be = |seed: u64| {
        let cfg = to_best_effort(ScenarioConfig {
            seed,
            flows: pels_flows(&[0.0, 5.0, 10.0]),
            ..Default::default()
        });
        let mut s = Scenario::build(cfg);
        s.run_until(SimTime::from_secs_f64(20.0));
        s.sim.events_processed()
    };
    assert_eq!(run_be(3), run_be(3));
    assert_ne!(run_be(3), run_be(4), "seeds drive the random-drop comparator");
}

#[test]
fn eq6_utility_bound_holds_in_the_packet_simulator() {
    // Lemma 4 + Eq. 6: with red loss pinned at p_thr, utility is at least
    // (1 - p/p_thr)/(1 - p) for the measured FGS loss p.
    for n in [4usize, 8] {
        let cfg = ScenarioConfig { flows: pels_flows(&vec![0.0; n]), ..Default::default() };
        let mut s = Scenario::build(cfg);
        s.run_until(SimTime::from_secs_f64(40.0));
        let p = s.router().fgs_loss_series.mean_after(20.0).unwrap();
        let bound = pels_analysis::useful::pels_utility_lower_bound(p.min(0.99), 0.75);
        let u = steady_utility(&s, 100).utility();
        assert!(
            u >= bound - 0.03,
            "{n} flows: measured utility {u} violates Eq. 6 bound {bound} (p = {p})"
        );
    }
}

#[test]
fn lemma6_rate_is_independent_of_rtt_heterogeneity() {
    // Two flows with very different RTTs (one gets +30 ms each way on its
    // access link) still converge to the same stationary rate — unlike
    // TCP/AIMD, MKC does not penalize long-RTT flows (paper Section 5.1).
    let mut flows = pels_flows(&[0.0, 0.0]);
    flows[1].extra_delay = SimDuration::from_millis(30);
    let cfg =
        ScenarioConfig { flows, access_delay: SimDuration::from_millis(1), ..Default::default() };
    let mut s = Scenario::build(cfg);
    s.run_until(SimTime::from_secs_f64(40.0));
    let r0 = s.source(0).rate_series.mean_after(25.0).unwrap();
    let r1 = s.source(1).rate_series.mean_after(25.0).unwrap();
    assert!((r0 - r1).abs() < 0.07 * r0, "fair despite 5x RTT gap: {r0} vs {r1}");
    assert!((r0 - 1_040.0).abs() < 0.07 * 1_040.0, "Lemma 6: {r0}");
    // Sanity: the delay really differs (green one-way delay gap ~30 ms).
    let d0 = s.receiver(0).delays.by_class[0].mean();
    let d1 = s.receiver(1).delays.by_class[0].mean();
    assert!(d1 - d0 > 0.025, "delay heterogeneity present: {d0} vs {d1}");
}

#[test]
fn green_never_drops_under_pels_even_at_extreme_load() {
    let cfg = ScenarioConfig { flows: pels_flows(&[0.0; 12]), ..Default::default() };
    let mut s = Scenario::build(cfg);
    s.run_until(SimTime::from_secs_f64(30.0));
    let report = s.report();
    assert_eq!(report.bottleneck_drops_by_class[0], 0, "green is sacrosanct");
    // All flows still decode their base layers.
    let u = steady_utility(&s, 50);
    assert_eq!(u.base_ok_frames, u.frames, "every steady-state frame has an intact base");
}

#[test]
fn tcp_share_is_respected_in_both_directions() {
    // WRR isolation: video load must not starve TCP, and vice versa.
    let cfg = ScenarioConfig { flows: pels_flows(&[0.0; 8]), n_tcp: 2, ..Default::default() };
    let mut s = Scenario::build(cfg);
    s.run_until(SimTime::from_secs_f64(30.0));
    let report = s.report();
    // Internet share is 2 Mb/s = 250 kB/s = 250 packets/s of 1000 B.
    // Expect at least 60% of that net of TCP overheads.
    assert!(report.tcp_delivered > 4_500, "tcp starved: {}", report.tcp_delivered);
    // And the video side still meets its Lemma 6 share.
    let r = s.source(0).rate_series.mean_after(20.0).unwrap();
    assert!((r - 290.0).abs() < 40.0, "video share with 8 flows: {r}");
}

#[test]
fn best_effort_flows_match_section3_model() {
    // The uniform-drop comparator should reproduce Eq. 2/3 quantitatively:
    // measured per-frame useful packets == expected_useful_fixed(p, H).
    let mut cfg = wideband_config(4, 0.10);
    cfg.aqm.mode = pels_core::router::QueueMode::BestEffortUniform;
    cfg.flows = best_effort_flows(&[0.0; 4])
        .into_iter()
        .map(|f| FlowSpec { cc: cfg.flows[0].cc, ..f })
        .collect();
    let mut s = Scenario::build(cfg);
    s.run_until(SimTime::from_secs_f64(40.0));

    let u = steady_utility(&s, 100);
    let p = u.loss_rate();
    // Mean transmitted enhancement packets per frame.
    let h = (u.enh_sent as f64 / u.frames as f64).round() as u32;
    let expect = pels_analysis::useful::expected_useful_fixed(p, h);
    let measured = u.mean_useful_per_frame();
    assert!(
        (measured - expect).abs() < 0.25 * expect,
        "Eq. 2: measured {measured:.2} vs model {expect:.2} (p = {p:.3}, H = {h})"
    );
}

#[test]
fn tandem_follows_bottleneck_shift() {
    // Start with B tighter (3 Mb/s). The source must track B's feedback;
    // both AQM routers stamp, max-loss override decides.
    let mut t = Tandem::build(TandemConfig {
        capacity_a: Rate::from_mbps(4.0),
        capacity_b: Rate::from_mbps(3.0),
        ..Default::default()
    });
    t.run_until(SimTime::from_secs_f64(25.0));
    assert!(
        t.router_b().estimator().loss() > t.router_a().estimator().loss(),
        "B is the binding constraint"
    );
    let r = t.source(0).rate_series.mean_after(15.0).unwrap();
    assert!((r - 790.0).abs() < 0.1 * 790.0, "rate follows B: {r}");
}

#[test]
fn controllers_with_custom_gains_flow_through_the_stack() {
    // Configuration plumbing: per-flow gains reach the controllers.
    let flow = FlowSpec {
        cc: CcSpec::Mkc(MkcConfig { alpha_bps: 40_000.0, ..Default::default() }),
        gamma: GammaConfig { p_thr: 0.9, ..Default::default() },
        ..Default::default()
    };
    let cfg =
        ScenarioConfig { flows: vec![flow; 2], aqm: AqmConfig::default(), ..Default::default() };
    let mut s = Scenario::build(cfg);
    s.run_until(SimTime::from_secs_f64(30.0));
    // Lemma 6 with alpha = 40k: r* = 1000 + 80 = 1080 kb/s.
    let r = s.source(0).rate_series.mean_after(20.0).unwrap();
    assert!((r - 1_080.0).abs() < 0.05 * 1_080.0, "alpha plumbed: {r}");
    // gamma* = p/p_thr with the larger threshold is smaller.
    let p = s.router().fgs_loss_series.mean_after(20.0).unwrap();
    let g = s.source(0).gamma_series.mean_after(20.0).unwrap();
    assert!((g - p / 0.9).abs() < 0.3 * (p / 0.9), "p_thr plumbed: gamma {g} vs {}", p / 0.9);
}

#[test]
fn arq_recovers_losses_when_rtt_is_small() {
    // End-to-end ARQ sanity: with a small FIFO (low queueing delay) and a
    // generous deadline, NACK/retransmit recovers most gaps and utility
    // improves over no-ARQ best effort.
    use pels_core::receiver::NackConfig;
    use pels_core::router::QueueMode;
    use pels_core::source::{ArqConfig, SourceMode};

    let base_cfg = || {
        let mut cfg = wideband_config(4, 0.10);
        cfg.aqm.mode = QueueMode::Fifo;
        cfg.aqm.best_effort_limit = 100;
        for f in &mut cfg.flows {
            f.mode = SourceMode::BestEffort;
        }
        cfg
    };
    let mut with_arq = base_cfg();
    for f in &mut with_arq.flows {
        f.arq = Some(ArqConfig::default());
    }
    with_arq.nack = Some(NackConfig::default());

    let t = SimTime::from_secs_f64(30.0);
    let mut plain = Scenario::build(base_cfg());
    plain.run_until(t);
    let mut arq = Scenario::build(with_arq);
    arq.run_until(t);

    let pu = steady_utility(&plain, 100).utility();
    let au = steady_utility(&arq, 100).utility();
    assert!(au > pu + 0.1, "ARQ should help here: {au} vs {pu}");
    assert!(arq.source(0).retransmissions > 100, "retransmissions flowed");
    assert!(arq.receiver(0).nacks_sent() > 100, "nacks flowed");
}

#[test]
fn conclusions_hold_under_both_quality_models() {
    // Robustness of the Fig.-10 conclusion to the quality-map substitution:
    // whether PSNR comes from the smooth R-D map or the bitplane-structured
    // model, PELS beats best-effort by a wide margin on the same loss maps.
    use pels_fgs::bitplane::{BitplaneModel, QualityModel};
    use pels_fgs::psnr::RdModel;

    let cfg = wideband_config(4, 0.10);
    let t = SimTime::from_secs_f64(40.0);
    let mut pels = Scenario::build(cfg.clone());
    pels.run_until(t);
    let mut be = Scenario::build(to_best_effort(cfg));
    be.run_until(t);

    let mean_gain = |s: &Scenario, model: &dyn QualityModel| -> f64 {
        let mut sum = 0.0;
        let mut base = 0.0;
        for d in s.receiver(0).decode_all() {
            if d.frame < 100 {
                continue;
            }
            sum += model.psnr(d.frame, d.enh_useful_bytes, d.base_ok);
            base += model.base_psnr(d.frame);
        }
        sum / base - 1.0
    };

    let rd = RdModel::foreman_like(300, 42);
    let bp = BitplaneModel::foreman_like(300, 42);
    for (name, model) in [("rd", &rd as &dyn QualityModel), ("bitplane", &bp)] {
        let g_pels = mean_gain(&pels, model);
        let g_be = mean_gain(&be, model);
        assert!(
            g_pels > 1.5 * g_be,
            "{name}: PELS gain {g_pels:.3} should dominate best-effort {g_be:.3}"
        );
        assert!(g_pels > 0.2, "{name}: PELS gain {g_pels:.3} is substantial");
    }
}

#[test]
fn trace_csv_roundtrip_drives_a_simulation() {
    // A trace exported to CSV, re-imported, and streamed end-to-end behaves
    // identically to the original.
    use pels_fgs::frame::VideoTrace;

    let trace = pels_core::scenario::default_trace();
    let reloaded = VideoTrace::from_csv(&trace.to_csv()).unwrap();
    assert_eq!(reloaded, trace);

    let run = |tr: VideoTrace| {
        let cfg =
            ScenarioConfig { trace: tr, flows: pels_flows(&[0.0, 0.0]), ..Default::default() };
        let mut s = Scenario::build(cfg);
        s.run_until(SimTime::from_secs_f64(10.0));
        s.sim.events_processed()
    };
    assert_eq!(run(trace), run(reloaded));
}

#[test]
fn router_backlog_series_shows_red_queue_pressure() {
    // The router samples its video-queue backlog each feedback tick; under
    // sustained congestion the red band holds a persistent standing queue
    // while the total stays bounded.
    let cfg = ScenarioConfig { flows: pels_flows(&[0.0; 4]), ..Default::default() };
    let mut s = Scenario::build(cfg);
    s.run_until(SimTime::from_secs_f64(20.0));
    let r = s.router();
    assert!(r.backlog_series.len() > 500, "sampled every tick");
    let red_mean = r.red_backlog_series.mean_after(10.0).unwrap();
    let total_mean = r.backlog_series.mean_after(10.0).unwrap();
    assert!(red_mean > 5.0, "red standing queue: {red_mean}");
    assert!(total_mean >= red_mean, "total includes red");
    assert!(total_mean < 500.0, "bounded backlog: {total_mean}");
}
