//! Bit-stable parallel execution (DESIGN.md §12).
//!
//! The sharded engine's contract is determinism by construction: the
//! partition — and therefore the per-shard event schedule — is a pure
//! function of the topology, and the worker count only sizes the thread
//! pool. These tests pin that contract end to end, at the level a user
//! observes it: the serialized `ScenarioReport` must be byte-identical
//! across worker counts, across repeated runs, and (for component
//! partitions, which never exchange events) against the serial engine.

use pels_core::parallel::ParallelScenario;
use pels_core::scenario::{chained_proportional_config, pels_flows, Scenario, ScenarioConfig};
use pels_netsim::time::SimTime;

const N: usize = 32;
const HORIZON_S: f64 = 5.0;

fn report_json(cfg: ScenarioConfig, workers: usize) -> String {
    let mut s = ParallelScenario::build(cfg);
    s.set_workers(workers);
    s.run_until(SimTime::from_secs_f64(HORIZON_S));
    serde_json::to_string(&s.report()).expect("report serializes")
}

/// The fixed shared dumbbell: one bottleneck, so the partitioner falls
/// back to the delay-cut (2 shards) and the conservative windowed
/// executor runs with barriers. Reports must not depend on the worker
/// count.
#[test]
fn fixed_dumbbell_reports_are_worker_invariant() {
    let cfg = || ScenarioConfig {
        flows: pels_flows(&[0.0; N]),
        keep_series: false,
        ..Default::default()
    };
    let baseline = report_json(cfg(), 1);
    for workers in [2, 8] {
        let r = report_json(cfg(), workers);
        assert_eq!(baseline, r, "fixed dumbbell: workers=1 vs workers={workers}");
    }
}

/// The chained proportional topology decomposes into N components, one
/// shard each — the maximally parallel shape. Still byte-identical at
/// every worker count.
#[test]
fn chained_topology_reports_are_worker_invariant() {
    let baseline = report_json(chained_proportional_config(N), 1);
    for workers in [2, 8] {
        let r = report_json(chained_proportional_config(N), workers);
        assert_eq!(baseline, r, "chained: workers=1 vs workers={workers}");
    }
}

/// Running the same config twice at the same worker count must also be
/// stable — no wall-clock, thread-id, or iteration-order leakage into
/// results.
#[test]
fn repeated_runs_are_bit_stable() {
    assert_eq!(
        report_json(chained_proportional_config(N), 8),
        report_json(chained_proportional_config(N), 8),
        "chained repeat at workers=8"
    );
    let cfg = || ScenarioConfig {
        flows: pels_flows(&[0.0; 4]),
        keep_series: false,
        ..Default::default()
    };
    assert_eq!(report_json(cfg(), 2), report_json(cfg(), 2), "dumbbell repeat at workers=2");
}

/// Component partitions never exchange cross-shard events, so each shard
/// replays exactly the schedule the serial engine would give that
/// component — the parallel report must match the serial `Scenario`
/// byte for byte.
#[test]
fn chained_parallel_matches_serial_engine() {
    let mut serial = Scenario::build(chained_proportional_config(N));
    serial.run_until(SimTime::from_secs_f64(HORIZON_S));
    let serial_json = serde_json::to_string(&serial.report()).expect("report serializes");
    assert_eq!(serial_json, report_json(chained_proportional_config(N), 8));
}
