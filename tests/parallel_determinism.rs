//! Bit-stable parallel execution (DESIGN.md §12).
//!
//! The sharded engine's contract is determinism by construction: the
//! partition — and therefore the per-shard event schedule — is a pure
//! function of the topology, and the worker count only sizes the thread
//! pool. These tests pin that contract end to end, at the level a user
//! observes it: the serialized `ScenarioReport` must be byte-identical
//! across worker counts, across repeated runs, and (for component
//! partitions, which never exchange events) against the serial engine.

use pels_core::parallel::ParallelScenario;
use pels_core::scenario::{
    chained_proportional_config, pels_flows, Scenario, ScenarioConfig, ScenarioReport,
};
use pels_netsim::shard::ExecMode;
use pels_netsim::time::SimTime;

const N: usize = 32;
const HORIZON_S: f64 = 5.0;

fn report_json(cfg: ScenarioConfig, workers: usize) -> String {
    let mut s = ParallelScenario::build(cfg);
    s.set_workers(workers);
    s.run_until(SimTime::from_secs_f64(HORIZON_S));
    serde_json::to_string(&s.report()).expect("report serializes")
}

fn relaxed_run(cfg: ScenarioConfig, workers: usize) -> (ScenarioReport, SimTime) {
    let mut s = ParallelScenario::build(cfg);
    s.set_workers(workers);
    s.sim.set_mode(ExecMode::Relaxed);
    s.run_until(SimTime::from_secs_f64(HORIZON_S));
    (s.report(), s.sim.now())
}

/// The fixed shared dumbbell: one bottleneck, so the partitioner falls
/// back to the delay-cut (2 shards) and the conservative windowed
/// executor runs with barriers. Reports must not depend on the worker
/// count.
#[test]
fn fixed_dumbbell_reports_are_worker_invariant() {
    let cfg = || ScenarioConfig {
        flows: pels_flows(&[0.0; N]),
        keep_series: false,
        ..Default::default()
    };
    let baseline = report_json(cfg(), 1);
    for workers in [2, 8] {
        let r = report_json(cfg(), workers);
        assert_eq!(baseline, r, "fixed dumbbell: workers=1 vs workers={workers}");
    }
}

/// The chained proportional topology decomposes into N components, one
/// shard each — the maximally parallel shape. Still byte-identical at
/// every worker count.
#[test]
fn chained_topology_reports_are_worker_invariant() {
    let baseline = report_json(chained_proportional_config(N), 1);
    for workers in [2, 8] {
        let r = report_json(chained_proportional_config(N), workers);
        assert_eq!(baseline, r, "chained: workers=1 vs workers={workers}");
    }
}

/// Running the same config twice at the same worker count must also be
/// stable — no wall-clock, thread-id, or iteration-order leakage into
/// results.
#[test]
fn repeated_runs_are_bit_stable() {
    assert_eq!(
        report_json(chained_proportional_config(N), 8),
        report_json(chained_proportional_config(N), 8),
        "chained repeat at workers=8"
    );
    let cfg = || ScenarioConfig {
        flows: pels_flows(&[0.0; 4]),
        keep_series: false,
        ..Default::default()
    };
    assert_eq!(report_json(cfg(), 2), report_json(cfg(), 2), "dumbbell repeat at workers=2");
}

/// Component partitions never exchange cross-shard events, so each shard
/// replays exactly the schedule the serial engine would give that
/// component — the parallel report must match the serial `Scenario`
/// byte for byte.
#[test]
fn chained_parallel_matches_serial_engine() {
    let mut serial = Scenario::build(chained_proportional_config(N));
    serial.run_until(SimTime::from_secs_f64(HORIZON_S));
    let serial_json = serde_json::to_string(&serial.report()).expect("report serializes");
    assert_eq!(serial_json, report_json(chained_proportional_config(N), 8));
}

/// The shared dumbbell exercises the windowed executor's batched drain
/// and cross-shard merge. Deterministic mode must still reproduce the
/// serial engine byte for byte at every worker count — the merge order
/// `(time, src_shard, seq)` is the oracle the relaxed path is judged
/// against.
#[test]
fn shared_dumbbell_parallel_matches_serial_engine() {
    let cfg = || ScenarioConfig {
        flows: pels_flows(&[0.0; N]),
        keep_series: false,
        ..Default::default()
    };
    let mut serial = Scenario::build(cfg());
    serial.run_until(SimTime::from_secs_f64(HORIZON_S));
    let serial_json = serde_json::to_string(&serial.report()).expect("report serializes");
    for workers in [1, 2, 8] {
        assert_eq!(
            serial_json,
            report_json(cfg(), workers),
            "shared dumbbell: serial vs workers={workers}"
        );
    }
}

/// Relaxed mode gives up bit-identity, not correctness. Whatever order
/// the rings deliver in, the run must preserve the engine's invariants:
/// the clock reaches the horizon monotonically, every packet is accounted
/// for (transmitted + dropped at the bottleneck, never lost in flight),
/// the base layer stays protected, and the final report lands within
/// tolerance of the deterministic one.
#[test]
fn relaxed_mode_preserves_invariants_and_tracks_deterministic() {
    let cfg = || ScenarioConfig {
        flows: pels_flows(&[0.0; 8]),
        keep_series: false,
        ..Default::default()
    };
    let det: ScenarioReport =
        serde_json::from_str(&report_json(cfg(), 1)).expect("report round-trips");
    for workers in [2, 8] {
        let (rel, now) = relaxed_run(cfg(), workers);
        // Monotone time: the clock reached exactly the requested horizon.
        assert_eq!(now, SimTime::from_secs_f64(HORIZON_S), "workers={workers}");
        // Conservation: every class transmits in relaxed mode iff it
        // transmits deterministically, and totals match closely (the only
        // permitted divergence is FIFO tie-break order, which cannot
        // create or destroy packets; small count drift comes from
        // reordered drops near queue limits).
        let det_tx: u64 = det.bottleneck_tx_by_class.iter().sum();
        let rel_tx: u64 = rel.bottleneck_tx_by_class.iter().sum();
        let drift = (det_tx as f64 - rel_tx as f64).abs() / det_tx as f64;
        assert!(drift < 0.01, "workers={workers}: tx drift {drift} (det {det_tx}, rel {rel_tx})");
        // The paper's core invariant holds in any execution order.
        assert_eq!(rel.green_drops, 0, "workers={workers}");
        assert_eq!(rel.starved_flows, det.starved_flows, "workers={workers}");
        assert_eq!(rel.flows.len(), det.flows.len());
        // Final rates within 5% of the deterministic fixed point.
        for (d, r) in det.flows.iter().zip(&rel.flows) {
            let dev = (d.final_rate_kbps - r.final_rate_kbps).abs() / d.final_rate_kbps.max(1.0);
            assert!(
                dev < 0.05,
                "workers={workers}: flow rate {} vs {} ({:.1}% off)",
                d.final_rate_kbps,
                r.final_rate_kbps,
                dev * 100.0
            );
        }
    }
}

/// Relaxed mode on a component partition (no cross-shard events at all)
/// has nothing to reorder — it must match the deterministic report
/// exactly, whatever the worker count.
#[test]
fn relaxed_mode_is_exact_on_component_partitions() {
    let det = report_json(chained_proportional_config(N), 1);
    for workers in [2, 8] {
        let (rel, _) = relaxed_run(chained_proportional_config(N), workers);
        let rel_json = serde_json::to_string(&rel).expect("report serializes");
        assert_eq!(det, rel_json, "chained relaxed: workers={workers}");
    }
}
