//! Workspace umbrella crate: re-exports the PELS reproduction crates for examples and integration tests.
pub use pels_analysis as analysis;
pub use pels_core as pels;
pub use pels_fgs as fgs;
pub use pels_netsim as netsim;
