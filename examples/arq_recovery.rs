//! Retransmission-based recovery vs PELS, plus the simulator's event
//! journal in action.
//!
//! The paper argues (Section 1) that retransmission is the wrong tool for
//! congested video paths: recoveries ride the same congested queues and
//! miss their decoding deadlines. This example runs an ARQ comparator over
//! a FIFO bottleneck with a playout deadline, prints the recovery ledger,
//! and uses the event journal to show one packet's journey through the
//! network.
//!
//! Run with: `cargo run --release --example arq_recovery`

use pels_core::receiver::NackConfig;
use pels_core::router::QueueMode;
use pels_core::scenario::{wideband_config, Scenario};
use pels_core::source::{ArqConfig, SourceMode};
use pels_netsim::journal::EntryKind;
use pels_netsim::time::{SimDuration, SimTime};

fn main() {
    // ARQ over a short FIFO: recovery mostly works.
    let mut cfg = wideband_config(4, 0.10);
    cfg.aqm.mode = QueueMode::Fifo;
    cfg.aqm.best_effort_limit = 100;
    for f in &mut cfg.flows {
        f.mode = SourceMode::BestEffort;
        f.arq = Some(ArqConfig::default());
    }
    cfg.nack = Some(NackConfig::default());
    cfg.playout_deadline = Some(SimDuration::from_millis(300));

    let mut s = Scenario::build(cfg);
    // Enable the journal for a window of the run (ring of 50k events).
    s.sim.enable_journal(50_000);
    s.run_until(SimTime::from_secs_f64(20.0));

    println!("=== ARQ recovery over a congested FIFO (300 ms playout deadline) ===\n");
    let mut nacks = 0;
    let mut retx = 0;
    let mut on_time = 0;
    let mut late = 0;
    for i in 0..4 {
        nacks += s.receiver(i).nacks_sent();
        retx += s.source(i).retransmissions;
        on_time += s.receiver(i).recovered_on_time;
        late += s.receiver(i).recovered_late;
    }
    println!("NACKs sent:            {nacks}");
    println!("retransmissions:       {retx}");
    println!("recovered on time:     {on_time}");
    println!("recovered too late:    {late}");
    let u = s.total_utility();
    println!("utility with recovery: {:.3}", u.utility());
    assert!(retx > 0 && on_time > 0);

    // The journal: reconstruct the journey of a recently delivered packet.
    let journal = s.sim.journal().expect("journal enabled");
    println!("\njournal: {} events retained of {} recorded", journal.len(), journal.total_recorded);
    let last_arrival = journal
        .iter()
        .rev()
        .find_map(|e| match e.kind {
            EntryKind::PacketArrival { id, .. } if e.target == s.receivers[0] => Some(id),
            _ => None,
        })
        .expect("receiver 0 saw traffic");
    println!("journey of packet {last_arrival:?}:");
    for hop in journal.packet_journey(last_arrival) {
        println!("  t={} -> {}", hop.time, hop.target);
    }
    let journey = journal.packet_journey(last_arrival);
    assert!(journey.len() >= 3, "source -> R1 -> R2 -> receiver hops");

    println!(
        "\ncompare: `cargo run -p pels-bench --bin ablation_retransmission` shows the\n\
         same machinery over a bloated buffer, where 100% of recoveries miss the\n\
         deadline — the paper's argument for a retransmission-free design."
    );
}
