//! Building a custom experiment directly on the simulator substrate —
//! no PELS involved. This is the "downstream user" path: compose agents,
//! disciplines, and the dumbbell builder into your own study.
//!
//! Here: three TCP flows compete with an unresponsive 1.5 Mb/s CBR blast
//! through a 4 Mb/s drop-tail bottleneck; we measure how much each TCP flow
//! salvages and verify TCP's well-known capitulation to unresponsive
//! traffic (the motivation for fair queueing, and context for why the
//! PELS/Internet split uses WRR isolation).
//!
//! Run with: `cargo run --release --example custom_topology`

use pels_analysis::queueing::jain_index;
use pels_netsim::cbr::{CbrConfig, CbrSource};
use pels_netsim::packet::FlowId;
use pels_netsim::sim::Simulator;
use pels_netsim::tcp::{TcpSink, TcpSource};
use pels_netsim::time::{Rate, SimDuration, SimTime};
use pels_netsim::topology::{build_dumbbell, DumbbellSpec, Side};

fn main() {
    let mut sim = Simulator::new(11);
    let spec = DumbbellSpec {
        pairs: 4, // 3 TCP pairs + 1 CBR pair
        bottleneck: Rate::from_mbps(4.0),
        access: Rate::from_mbps(10.0),
        ..Default::default()
    };
    let ids = build_dumbbell(&mut sim, &spec, |slot, port| {
        let flow = FlowId(slot.index as u32);
        match (slot.side, slot.index) {
            // Pair 3 is the unresponsive CBR blast.
            (Side::Left, 3) => Box::new(CbrSource::new(
                CbrConfig::new(flow, slot.peer, Rate::from_mbps(1.5), 1_000, 3),
                port,
            )),
            (Side::Left, _) => {
                Box::new(TcpSource::new(port, flow, slot.peer, 1_000, SimDuration::ZERO))
            }
            (Side::Right, _) => Box::new(TcpSink::new(port, flow)),
        }
    });

    sim.run_until(SimTime::from_secs_f64(60.0));

    println!("=== custom dumbbell: 3 TCP flows vs a 1.5 Mb/s unresponsive CBR ===\n");
    let mut tcp_rates = Vec::new();
    for i in 0..3 {
        let delivered = sim.agent::<TcpSink>(ids.right_hosts[i]).delivered();
        let kbps = delivered as f64 * 1_000.0 * 8.0 / 60.0 / 1_000.0;
        println!("TCP flow {i}: {delivered} packets ({kbps:.0} kb/s)");
        tcp_rates.push(kbps);
    }
    let cbr_sent = sim.agent::<CbrSource>(ids.left_hosts[3]).sent;
    println!("CBR blast:  {cbr_sent} packets offered (1500 kb/s, unresponsive)");

    // The TCP flows share what the CBR leaves (~2.5 Mb/s minus overheads)
    // roughly fairly among themselves.
    let total_tcp: f64 = tcp_rates.iter().sum();
    let jain = jain_index(&tcp_rates);
    println!("\nTCP aggregate {total_tcp:.0} kb/s, Jain index {jain:.3}");
    assert!(total_tcp > 1_800.0 && total_tcp < 2_700.0, "TCP takes the remainder: {total_tcp}");
    assert!(jain > 0.85, "TCP flows stay mutually fair: {jain}");
    println!(
        "\nTCP backs off around the blast while the blast concedes nothing — \
         drop-tail FIFOs cannot protect responsive flows, which is why the \
         paper isolates video and Internet queues with WRR."
    );
}
