//! Head-to-head comparison of PELS against the paper's "generic
//! best-effort" streaming (Section 6.5): same congestion control, same
//! load, but uniform random enhancement-layer drops instead of priority
//! queueing. Reports utility and reconstructed PSNR per scheme.
//!
//! Run with: `cargo run --release --example best_effort_vs_pels`

use pels_core::scenario::{to_best_effort, wideband_config, Scenario};
use pels_fgs::psnr::RdModel;
use pels_netsim::time::SimTime;

/// Frames to skip while the controllers converge.
const WARMUP_FRAMES: u64 = 100;

fn mean_psnr(scenario: &Scenario, model: &RdModel) -> (f64, f64) {
    // Mean PSNR of flow 0's reconstruction vs base-layer-only.
    let mut sum = 0.0;
    let mut base_sum = 0.0;
    let mut n = 0u64;
    for d in scenario.receiver(0).decode_all() {
        if d.frame < WARMUP_FRAMES {
            continue;
        }
        sum += model.psnr(d.frame, d.enh_useful_bytes, d.base_ok);
        base_sum += model.base_psnr(d.frame);
        n += 1;
    }
    (sum / n as f64, base_sum / n as f64)
}

fn main() {
    // The paper's Fig. 10 (left) operating point: each flow streams frames
    // of ~100 enhancement packets while the FGS layer loses ~10%. (At such
    // frame sizes Eq. 3 predicts best-effort utility near 0.1.)
    let cfg = wideband_config(4, 0.10);
    let duration = SimTime::from_secs_f64(40.0);

    let mut pels = Scenario::build(cfg.clone());
    pels.run_until(duration);
    let mut best_effort = Scenario::build(to_best_effort(cfg));
    best_effort.run_until(duration);

    let model = RdModel::foreman_like(300, 42);
    let (pels_psnr, base_psnr) = mean_psnr(&pels, &model);
    let (be_psnr, _) = mean_psnr(&best_effort, &model);

    let pels_u = pels.total_utility();
    let be_u = best_effort.total_utility();

    println!("=== PELS vs best-effort (4 wideband flows, 40 s, same MKC control) ===\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>14}",
        "scheme", "utility", "enh loss", "mean PSNR", "gain over base"
    );
    println!(
        "{:<14} {:>10.3} {:>11.1}% {:>9.2} dB {:>+13.1}%",
        "base only", 0.0, 100.0, base_psnr, 0.0
    );
    println!(
        "{:<14} {:>10.3} {:>11.1}% {:>9.2} dB {:>+13.1}%",
        "best-effort",
        be_u.utility(),
        be_u.loss_rate() * 100.0,
        be_psnr,
        (be_psnr / base_psnr - 1.0) * 100.0
    );
    println!(
        "{:<14} {:>10.3} {:>11.1}% {:>9.2} dB {:>+13.1}%",
        "PELS",
        pels_u.utility(),
        pels_u.loss_rate() * 100.0,
        pels_psnr,
        (pels_psnr / base_psnr - 1.0) * 100.0
    );

    println!(
        "\nPELS delivers {:.1}x the useful enhancement data of best-effort \
         under identical loss.",
        pels_u.enh_useful as f64 / be_u.enh_useful.max(1) as f64
    );
    assert!(pels_u.utility() > 0.9);
    assert!(pels_u.utility() > 2.0 * be_u.utility());
    assert!(pels_psnr > be_psnr);
}
