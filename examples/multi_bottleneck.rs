//! Multi-bottleneck streaming: two PELS AQM routers in tandem. Each stamps
//! its feedback with the max-loss override rule (paper Section 5.2), so the
//! sources automatically track the *tighter* bottleneck.
//!
//! Run with: `cargo run --release --example multi_bottleneck`

use pels_core::router::AqmConfig;
use pels_core::tandem::{Tandem, TandemConfig};
use pels_netsim::time::{Rate, SimTime};

fn run(capacity_a_mbps: f64, capacity_b_mbps: f64) {
    let cfg = TandemConfig {
        capacity_a: Rate::from_mbps(capacity_a_mbps),
        capacity_b: Rate::from_mbps(capacity_b_mbps),
        aqm: AqmConfig::default(),
        ..Default::default()
    };
    let mut t = Tandem::build(cfg);
    t.run_until(SimTime::from_secs_f64(40.0));

    let tight = capacity_a_mbps.min(capacity_b_mbps);
    // PELS share is 50%; Lemma 6 with two flows.
    let expect = tight * 1000.0 / 2.0 / 2.0 + 40.0;
    println!(
        "A = {capacity_a_mbps} Mb/s, B = {capacity_b_mbps} Mb/s  ->  \
         flow rates {:.0} / {:.0} kb/s (Lemma 6 target at tight link: {expect:.0})",
        t.source(0).rate_bps() / 1e3,
        t.source(1).rate_bps() / 1e3,
    );
    println!(
        "  router A: p = {:+.3}   router B: p = {:+.3}   (positive = bottleneck)",
        t.router_a().estimator().loss(),
        t.router_b().estimator().loss(),
    );
    let mut u = pels_fgs::UtilityStats::new();
    for i in 0..2 {
        for d in t.receiver(i).decode_all() {
            if d.frame >= 50 {
                u.add(&d);
            }
        }
    }
    println!("  end-user utility across both hops: {:.3}\n", u.utility());
    assert!(u.utility() > 0.9);
    let r = t.source(0).rate_bps() / 1e3;
    assert!((r - expect).abs() < 0.15 * expect, "rate {r} vs {expect}");
}

fn main() {
    println!("=== PELS across two AQM bottlenecks (max-loss feedback override) ===\n");
    // Second hop tighter: B's feedback must win.
    run(4.0, 3.0);
    // First hop tighter: A's feedback must win.
    run(3.0, 4.0);
    // Equal: either may report the binding constraint.
    run(4.0, 4.0);
    println!("sources followed the tighter bottleneck in every case");
}
