//! Quickstart: stream two PELS video flows over the paper's dumbbell
//! topology for 30 simulated seconds and print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use pels_core::scenario::{pels_flows, Scenario, ScenarioConfig};
use pels_netsim::time::SimTime;

fn main() {
    // The paper's Section 6.1 setup: a 4 Mb/s bottleneck, 10 Mb/s access
    // links, 50% of the bottleneck allocated to the PELS queue by WRR, TCP
    // cross traffic in the Internet queue, T = 30 ms feedback intervals.
    let cfg = ScenarioConfig { flows: pels_flows(&[0.0, 0.0]), ..Default::default() };
    let mut scenario = Scenario::build(cfg);
    scenario.run_until(SimTime::from_secs_f64(30.0));

    let report = scenario.report();
    println!("=== PELS quickstart: 2 flows, 30 s, 4 Mb/s bottleneck ===\n");
    for f in &report.flows {
        println!(
            "flow {}: rate {:.0} kb/s, gamma {:.3}, utility {:.3}, \
             delays (green/yellow/red) = {:.0}/{:.0}/{:.0} ms",
            f.flow,
            f.final_rate_kbps,
            f.final_gamma,
            f.utility,
            f.mean_delay_s[0] * 1e3,
            f.mean_delay_s[1] * 1e3,
            f.mean_delay_s[2] * 1e3,
        );
    }
    println!(
        "\nbottleneck: tx by class (G/Y/R/Inet) = {:?}, drops = {:?}",
        report.bottleneck_tx_by_class, report.bottleneck_drops_by_class
    );
    println!(
        "router feedback: p = {:.3}, FGS-layer loss = {:.3}",
        report.router_final_loss, report.router_final_fgs_loss
    );
    println!("TCP cross traffic delivered {} packets", report.tcp_delivered);

    // The headline property (paper Section 3 vs 4): despite real packet
    // loss at the bottleneck, virtually every received enhancement packet
    // is decodable, because losses are confined to the red class.
    let u = scenario.total_utility();
    println!(
        "\nend-user utility U = {:.4}  (useful {} / received {} enhancement packets)",
        u.utility(),
        u.enh_useful,
        u.enh_received
    );
    assert!(u.utility() > 0.9, "PELS should keep utility near 1");
}
