//! MKC congestion control dynamics — the paper's Fig. 9 (right): flow F1
//! starts at 128 kb/s, exponentially claims the whole PELS share; F2 joins
//! at t = 10 s and both converge, with no steady-state oscillation, to the
//! fair allocation C/N + alpha/beta (Lemma 6).
//!
//! Run with: `cargo run --release --example mkc_convergence`

use pels_core::scenario::{pels_flows, Scenario, ScenarioConfig};
use pels_netsim::time::SimTime;

fn main() {
    let cfg = ScenarioConfig { flows: pels_flows(&[0.0, 10.0]), ..Default::default() };
    let mut s = Scenario::build(cfg);
    s.run_until(SimTime::from_secs_f64(30.0));

    println!("=== MKC convergence (alpha = 20 kb/s, beta = 0.5) ===\n");
    println!("{:>6} {:>10} {:>10}", "t(s)", "F1 kb/s", "F2 kb/s");
    let rate_at = |i: usize, t: f64| -> f64 {
        s.source(i)
            .rate_series
            .points
            .iter()
            .take_while(|&&(pt, _)| pt <= t)
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(128.0)
    };
    for t in [0.05, 0.1, 0.2, 0.5, 2.0, 5.0, 9.9, 10.2, 11.0, 13.0, 20.0, 29.9] {
        println!("{t:>6.2} {:>10.0} {:>10.0}", rate_at(0, t), rate_at(1, t));
    }

    // F1 alone: r* = 2000 + 40 = 2040 kb/s. Both: 1000 + 40 = 1040 kb/s.
    let f1_solo = rate_at(0, 9.5);
    assert!(
        (f1_solo - 2_040.0).abs() < 0.05 * 2_040.0,
        "single-flow stationary rate (Lemma 6): got {f1_solo}"
    );
    let f1 = s.source(0).rate_bps() / 1e3;
    let f2 = s.source(1).rate_bps() / 1e3;
    assert!((f1 - 1_040.0).abs() < 0.05 * 1_040.0, "F1 fair share: {f1}");
    assert!((f2 - 1_040.0).abs() < 0.05 * 1_040.0, "F2 fair share: {f2}");

    // No steady-state oscillation: tail swing under 5%.
    let tail: Vec<f64> = s
        .source(0)
        .rate_series
        .points
        .iter()
        .filter(|&&(t, _)| t > 25.0)
        .map(|&(_, v)| v)
        .collect();
    let (min, max) =
        tail.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    println!("\nsteady-state swing of F1 over t in [25, 30]: {:.1}%", (max - min) / max * 100.0);
    assert!((max - min) / max < 0.05, "MKC must not oscillate in steady state");

    println!("Lemma 6 confirmed: single flow 2040 kb/s, two flows 1040 kb/s each.");
}
