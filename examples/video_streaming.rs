//! A longer streaming session with flows joining over time — the workload
//! of the paper's Fig. 8–9: every 50 seconds two new flows enter at the
//! base-layer rate, increasing congestion in the red queue while green and
//! yellow service stays crisp.
//!
//! Run with: `cargo run --release --example video_streaming`

use pels_core::scenario::{pels_flows, Scenario, ScenarioConfig};
use pels_netsim::time::SimTime;

fn main() {
    // Two flows at t = 0, two more at each of t = 50, 100, 150 s.
    let starts = [0.0, 0.0, 50.0, 50.0, 100.0, 100.0, 150.0, 150.0];
    let cfg = ScenarioConfig { flows: pels_flows(&starts), ..Default::default() };
    let mut scenario = Scenario::build(cfg);

    println!("=== PELS streaming session: flows join every 50 s ===\n");
    println!(
        "{:>5} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "t(s)", "active", "p", "gamma0", "rate0", "util"
    );
    for checkpoint in [25.0, 75.0, 125.0, 175.0, 200.0] {
        scenario.run_until(SimTime::from_secs_f64(checkpoint));
        let active = starts.iter().filter(|&&s| s < checkpoint).count();
        let u = scenario.total_utility();
        println!(
            "{:>5.0} {:>8} {:>9.3} {:>9.3} {:>8.0} {:>8.3}",
            checkpoint,
            active,
            scenario.router().estimator().loss(),
            scenario.source(0).gamma(),
            scenario.source(0).rate_bps() / 1e3,
            u.utility(),
        );
    }

    println!("\nper-flow summary after 200 s:");
    let report = scenario.report();
    for f in &report.flows {
        println!(
            "  flow {} (joined {:>3.0} s): rate {:>6.0} kb/s  utility {:.3}  \
             mean delay G/Y/R = {:>4.0}/{:>4.0}/{:>5.0} ms",
            f.flow,
            starts[f.flow as usize],
            f.final_rate_kbps,
            f.utility,
            f.mean_delay_s[0] * 1e3,
            f.mean_delay_s[1] * 1e3,
            f.mean_delay_s[2] * 1e3,
        );
    }

    // Key qualitative properties of the framework:
    // late joiners converge to the same fair share as early flows...
    let early = report.flows[0].final_rate_kbps;
    let late = report.flows[7].final_rate_kbps;
    assert!(
        (early - late).abs() < 0.2 * early,
        "late joiners should reach the fair share ({early} vs {late})"
    );
    // ...green/yellow delays stay an order of magnitude below red...
    for f in &report.flows {
        assert!(f.mean_delay_s[0] < 0.05, "green delay must stay small");
    }
    // ...and utility stays near 1 throughout.
    assert!(scenario.total_utility().utility() > 0.9);
    println!("\nall invariants held: fair shares, small green delay, utility ~ 1");
}
