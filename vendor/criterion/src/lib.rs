//! Offline stand-in for `criterion`.
//!
//! Implements enough of the criterion 0.x API for the workspace's benches to
//! compile and produce useful wall-clock numbers: `Criterion::bench_function`,
//! benchmark groups with throughput annotations, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. There is no statistical
//! analysis — each benchmark is warmed up briefly, then timed over a fixed
//! budget and reported as mean ns/iter.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a group (reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by `iter`.
    ns_per_iter: f64,
    measure_for: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & calibration: find an iteration count that fills the budget.
        let start = Instant::now();
        let mut calib_iters: u64 = 0;
        while start.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(f());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per = start.elapsed().as_nanos() as f64 / calib_iters.max(1) as f64;
        let budget_ns = self.measure_for.as_nanos() as f64;
        let iters = ((budget_ns / per.max(1.0)) as u64).clamp(1, 10_000_000);

        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.ns_per_iter = t0.elapsed().as_nanos() as f64 / iters as f64;
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let iters = 32u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            total += t0.elapsed();
        }
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// Batch sizing hint (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("{name:<50} {ns:>14.1} ns/iter{rate}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measure_for: Duration::from_millis(200) }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0, measure_for: self.measure_for };
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure_for = d.min(Duration::from_secs(1));
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0, measure_for: self.criterion.measure_for };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), b.ns_per_iter, self.throughput);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0, measure_for: self.criterion.measure_for };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), b.ns_per_iter, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Re-export matching criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
