//! Offline stand-in for `proptest`.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors the slice of proptest it uses: the [`Strategy`] trait with
//! `prop_map`/`prop_filter`, range and tuple strategies, `collection::vec`,
//! `any::<T>()`, `Just`, [`ProptestConfig`], and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Failing cases are NOT shrunk — the failure panics with the usual assert
//! message. Case generation is fully deterministic: the RNG seed is derived
//! from the test function's name and the case index, so a failure reproduces
//! on every run.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as _;

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37)))
    }

    pub fn next_f64(&mut self) -> f64 {
        rand::Rng::gen(&mut self.0)
    }
}

/// Mirrors `proptest::test_runner::Config` for the fields the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, reason }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_filter` adapter: rejection-samples, panicking after too many misses.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.reason);
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Uniform over the full domain of `T`.
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen(&mut rng.0)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy { AnyStrategy(core::marker::PhantomData) }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

macro_rules! impl_arbitrary_float {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Finite, sign-symmetric, spanning several orders of magnitude.
                let u: f64 = rng.next_f64();
                let mag: f64 = rng.next_f64();
                let v = (u - 0.5) * 2.0 * (10f64).powf(mag * 9.0 - 3.0);
                v as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy { AnyStrategy(core::marker::PhantomData) }
        }
    )*};
}
impl_arbitrary_float!(f32, f64);

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed size or a range of sizes.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(&mut rng.0, self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
    /// Mirror of `proptest::prelude::prop` (the module alias).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption fails. Expands to `continue`
/// inside the per-case loop generated by [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in -1.0f64..=2.5, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..=2.5).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_and_map_compose(v in collection::vec((0u8..4, 10u32..20).prop_map(|(a, b)| a as u32 + b), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for x in v {
                prop_assert!((10..24).contains(&x));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
