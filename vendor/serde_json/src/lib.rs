//! Offline stand-in for `serde_json`, backed by the vendored `serde` stub's
//! [`Value`] tree, parser, and printers.

pub use serde::{Error, Number, Value};

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_json(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_json_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serialize `value` as a compact JSON byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::parse_json(s)?;
    T::from_value(&v)
}

/// Deserialize a value of type `T` from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = core::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Convert a `Serialize` type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}
