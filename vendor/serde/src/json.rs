//! JSON text <-> [`Value`] conversion for the serde/serde_json stubs:
//! a recursive-descent parser and compact/pretty printers.

use crate::value::{Number, Value};
use crate::Error;

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(n: &Number, out: &mut String) {
    match n {
        Number::UInt(u) => out.push_str(&u.to_string()),
        Number::Int(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest string that round-trips.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no inf/NaN; serde_json emits null here too.
                out.push_str("null");
            }
        }
    }
}

/// Write `v` as compact JSON.
pub fn write_json(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => number_into(n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

/// Write `v` as pretty-printed JSON (two-space indent, serde_json style).
pub fn write_json_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_json_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_json_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_json(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(self.err(&format!("unexpected byte `{}`", other as char))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = core::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.eat_literal("\\u") {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let hex2 = core::str::from_utf8(hex2)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    let lo = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    self.pos += 4;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let s = core::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::Int(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let text = r#"{"a": [1, -2, 3.5, true, null, "x\ny"], "b": {"c": 18446744073709551615}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v["b"]["c"].as_u64(), Some(u64::MAX));
        let mut out = String::new();
        write_json(&v, &mut out);
        let v2 = parse(&out).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_parses_back() {
        let v = parse(r#"{"k": [1, 2], "empty": [], "o": {}}"#).unwrap();
        let mut out = String::new();
        write_json_pretty(&v, 0, &mut out);
        assert_eq!(parse(&out).unwrap(), v);
    }
}
