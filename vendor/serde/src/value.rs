//! The JSON value tree shared by the `serde` and `serde_json` stubs.

/// A JSON number. Integers are kept exact (no f64 round-trip) because sim
/// times are u64 nanoseconds and must survive config round-trips bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    UInt(u64),
    Int(i64),
    Float(f64),
}

/// A JSON document. Objects preserve insertion order (like serde_json's
/// `preserve_order` feature) so emitted configs stay human-diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::UInt(n)) => Some(*n),
            Value::Number(Number::Int(n)) if *n >= 0 => Some(*n as u64),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(n)) => Some(*n),
            Value::Number(Number::UInt(n)) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Float(f)) => Some(*f),
            Value::Number(Number::UInt(n)) => Some(*n as f64),
            Value::Number(Number::Int(n)) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL: Value = Value::Null;

impl core::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl core::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl core::fmt::Display for Value {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut out = String::new();
        crate::json::write_json(self, &mut out);
        write!(f, "{out}")
    }
}
