//! Offline stand-in for `serde` (+ the value model shared with the
//! `serde_json` stub).
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal serde: a JSON-shaped [`Value`] tree, [`Serialize`]/[`Deserialize`]
//! traits converting to/from that tree, and derive macros (re-exported from
//! the `serde_derive` stub) for plain structs, newtype structs, and enums
//! with unit or tuple variants — exactly the shapes the workspace derives.
//! Unsupported serde features (borrowed data, custom Serializers, field
//! attributes) are intentionally absent; the derive errors loudly if a type
//! needs them.

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{Number, Value};

mod json;
pub use json::{parse as parse_json, write_json, write_json_pretty};

/// Serialization error (also used by the `serde_json` stub).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into a JSON [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// What to produce when a struct field is missing entirely.
    /// `None` means "missing field" is an error; `Option<T>` overrides this
    /// to default to `None`, matching serde's behaviour.
    fn absent() -> Option<Self> {
        None
    }
}

/// Helper used by derived code: look up `key` in an object's entry list and
/// deserialize it, honouring [`Deserialize::absent`] for missing keys.
pub fn field<T: Deserialize>(entries: &[(String, Value)], key: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => T::absent().ok_or_else(|| Error::new(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for primitives and std containers
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::UInt(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::new(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::Int(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::new(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::Float(*self as f64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::new(format!("expected number, got {v:?}")))
            }
        }
    )*};
}
impl_ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!("expected single-char string, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|got| Error::new(format!("expected array of {N}, got {}", got.len())))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            {
                                let _ = $idx;
                                $name::from_value(
                                    it.next().ok_or_else(|| Error::new("tuple too short"))?,
                                )?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(Error::new("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(Error::new(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_ser_de_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::new(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::new(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
