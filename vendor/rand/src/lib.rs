//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`. The generator behind `StdRng` is
//! xoshiro256++ (public domain, Blackman & Vigna) seeded through SplitMix64 —
//! statistically solid for simulation workloads and fully deterministic per
//! seed, which is all the PELS reproduction requires. Numeric streams differ
//! from upstream `rand`'s ChaCha-based `StdRng`; nothing in the workspace
//! depends on upstream's exact stream.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirrors `rand::SeedableRng` for the subset the workspace uses.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; perturb it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }
}
