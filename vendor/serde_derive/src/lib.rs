//! Offline stand-in for `serde_derive`.
//!
//! crates.io (and therefore syn/quote) is unreachable in this build
//! environment, so the derive parses the item's token stream by hand. It
//! supports exactly the shapes the workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype `T(U)` serializes transparently; wider tuples
//!   serialize as arrays),
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde: `"Variant"` / `{"Variant": ...}`).
//!
//! Generic types and `#[serde(...)]` attributes are rejected with a
//! compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip one attribute (`#` then `[...]`), returning whether one was present.
fn skip_attr(iter: &mut core::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        iter.next(); // the [...] group
        true
    } else {
        false
    }
}

/// Skip a `pub` / `pub(crate)` visibility marker if present.
fn skip_vis(iter: &mut core::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = group.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        while skip_attr(&mut iter) {}
        skip_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        names.push(name);
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    Ok(names)
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut saw_tokens = false;
    for tok in group {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while skip_attr(&mut iter) {}
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional discriminant and the trailing comma.
        for tok in iter.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    let kind = loop {
        while skip_attr(&mut iter) {}
        skip_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // e.g. `union` or unexpected modifiers: keep scanning.
            }
            Some(_) => {}
            None => return Err("no struct/enum found".into()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde stub derive does not support generic type `{name}`"));
    }
    let shape = if kind == "struct" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        }
    };
    Ok(Item { name, shape })
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!("let mut entries = Vec::new(); {pushes} ::serde::Value::Object(entries)")
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "inner.push(({f:?}.to_string(), ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{ let mut inner = Vec::new(); {pushes} ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(inner))]) }},"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::field(entries, {f:?})?")).collect();
            format!(
                "let entries = v.as_object().ok_or_else(|| ::serde::Error::new(\
                     format!(\"expected object for {name}, got {{v:?}}\")))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::new(\"array too short for {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::new(\
                     format!(\"expected array for {name}, got {{v:?}}\")))?;\n\
                 Ok({name}({}))",
                gets.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("let _ = v; Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::new(\"variant payload too short\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let items = inner.as_array().ok_or_else(|| ::serde::Error::new(\"expected array payload\"))?; Ok({name}::{vn}({})) }},",
                                gets.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(entries, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let entries = inner.as_object().ok_or_else(|| ::serde::Error::new(\"expected object payload\"))?; Ok({name}::{vn} {{ {} }}) }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::Error::new(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => Err(::serde::Error::new(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }},\n\
                     other => Err(::serde::Error::new(format!(\"expected {name}, got {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}
