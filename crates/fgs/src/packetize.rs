//! Packetization: splitting a scaled frame into wire packets.
//!
//! The paper transmits 500-byte packets; each frame's base layer goes first,
//! then the yellow (lower-enhancement) bytes, then the red
//! (upper-enhancement) bytes — the order matters because the receiver can
//! only use a *consecutive prefix* of the enhancement layer.

use crate::scaling::ScaledFrame;
use serde::{Deserialize, Serialize};

/// Which layer segment a packet belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Base layer — required for decoding, highest priority (green).
    Base,
    /// Lower part of the enhancement layer (yellow).
    Yellow,
    /// Upper, expendable part of the enhancement layer (red).
    Red,
}

/// One packet of a packetized frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketPlan {
    /// Index of the packet within its frame (0-based, transmission order).
    pub index: u16,
    /// Payload bytes.
    pub bytes: u32,
    /// Layer segment.
    pub segment: Segment,
}

/// Packetizes a frame: base bytes, then `yellow_bytes` of enhancement, then
/// `red_bytes`, each cut into `packet_bytes`-sized packets (the final packet
/// of each segment may be short).
///
/// # Examples
///
/// ```
/// use pels_fgs::packetize::{packetize, Segment};
/// use pels_fgs::scaling::ScaledFrame;
///
/// let frame = ScaledFrame { base_bytes: 1_000, enhancement_bytes: 1_200 };
/// let pkts = packetize(&frame, 900, 300, 500);
/// let segs: Vec<Segment> = pkts.iter().map(|p| p.segment).collect();
/// assert_eq!(segs, vec![
///     Segment::Base, Segment::Base,
///     Segment::Yellow, Segment::Yellow,
///     Segment::Red,
/// ]);
/// let total: u32 = pkts.iter().map(|p| p.bytes).sum();
/// assert_eq!(total, 2_200);
/// ```
///
/// # Panics
///
/// Panics if `packet_bytes == 0` or `yellow_bytes + red_bytes` does not
/// equal the frame's enhancement bytes.
pub fn packetize(
    frame: &ScaledFrame,
    yellow_bytes: u32,
    red_bytes: u32,
    packet_bytes: u32,
) -> Vec<PacketPlan> {
    assert!(packet_bytes > 0, "packet size must be positive");
    assert_eq!(
        yellow_bytes + red_bytes,
        frame.enhancement_bytes,
        "partition must cover the enhancement layer exactly"
    );
    let mut out =
        Vec::with_capacity(usize::from(packet_count(frame, yellow_bytes, red_bytes, packet_bytes)));
    let mut index: u16 = 0;
    let mut push_segment = |seg: Segment, mut remaining: u32, out: &mut Vec<PacketPlan>| {
        while remaining > 0 {
            let bytes = remaining.min(packet_bytes);
            out.push(PacketPlan { index, bytes, segment: seg });
            index += 1;
            remaining -= bytes;
        }
    };
    push_segment(Segment::Base, frame.base_bytes, &mut out);
    push_segment(Segment::Yellow, yellow_bytes, &mut out);
    push_segment(Segment::Red, red_bytes, &mut out);
    out
}

/// Count of packets a frame would produce without materializing the plan.
pub fn packet_count(
    frame: &ScaledFrame,
    yellow_bytes: u32,
    red_bytes: u32,
    packet_bytes: u32,
) -> u16 {
    let ceil = |b: u32| b.div_ceil(packet_bytes) as u16;
    debug_assert_eq!(yellow_bytes + red_bytes, frame.enhancement_bytes);
    ceil(frame.base_bytes) + ceil(yellow_bytes) + ceil(red_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frame_is_126_packets() {
        // Full-rate frame, no red partition: 21 base + 105 yellow.
        let frame = ScaledFrame { base_bytes: 10_500, enhancement_bytes: 52_500 };
        let pkts = packetize(&frame, 52_500, 0, 500);
        assert_eq!(pkts.len(), 126);
        assert_eq!(pkts.iter().filter(|p| p.segment == Segment::Base).count(), 21);
        assert!(pkts.iter().all(|p| p.bytes == 500));
    }

    #[test]
    fn indices_are_contiguous_transmission_order() {
        let frame = ScaledFrame { base_bytes: 1_500, enhancement_bytes: 2_000 };
        let pkts = packetize(&frame, 1_500, 500, 500);
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.index as usize, i);
        }
        // Base before yellow before red.
        let first_yellow = pkts.iter().position(|p| p.segment == Segment::Yellow).unwrap();
        let first_red = pkts.iter().position(|p| p.segment == Segment::Red).unwrap();
        let last_base = pkts.iter().rposition(|p| p.segment == Segment::Base).unwrap();
        assert!(last_base < first_yellow && first_yellow < first_red);
    }

    #[test]
    fn short_tail_packets() {
        let frame = ScaledFrame { base_bytes: 750, enhancement_bytes: 600 };
        let pkts = packetize(&frame, 450, 150, 500);
        // Base: 500 + 250; yellow: 450; red: 150.
        let sizes: Vec<u32> = pkts.iter().map(|p| p.bytes).collect();
        assert_eq!(sizes, vec![500, 250, 450, 150]);
    }

    #[test]
    fn zero_enhancement_is_base_only() {
        let frame = ScaledFrame { base_bytes: 1_000, enhancement_bytes: 0 };
        let pkts = packetize(&frame, 0, 0, 500);
        assert_eq!(pkts.len(), 2);
        assert!(pkts.iter().all(|p| p.segment == Segment::Base));
    }

    #[test]
    fn packet_count_matches_plan() {
        for (base, y, r) in [(10_500u32, 40_000u32, 12_500u32), (750, 450, 150), (1_000, 0, 0)] {
            let frame = ScaledFrame { base_bytes: base, enhancement_bytes: y + r };
            assert_eq!(
                packet_count(&frame, y, r, 500) as usize,
                packetize(&frame, y, r, 500).len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn rejects_inconsistent_partition() {
        let frame = ScaledFrame { base_bytes: 100, enhancement_bytes: 1_000 };
        let _ = packetize(&frame, 100, 100, 500);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::scaling::partition_enhancement;
    use proptest::prelude::*;

    proptest! {
        /// Packetization conserves bytes and keeps segments in order for any
        /// frame and gamma.
        #[test]
        fn conserves_bytes(base in 0u32..20_000, enh in 0u32..60_000, gamma in 0.0f64..=1.0) {
            let frame = ScaledFrame { base_bytes: base, enhancement_bytes: enh };
            let (y, r) = partition_enhancement(enh, gamma);
            let pkts = packetize(&frame, y, r, 500);
            let total: u64 = pkts.iter().map(|p| p.bytes as u64).sum();
            prop_assert_eq!(total, base as u64 + enh as u64);
            // Segment order is monotone: Base(0) <= Yellow(1) <= Red(2).
            let rank = |s: Segment| match s { Segment::Base => 0, Segment::Yellow => 1, Segment::Red => 2 };
            prop_assert!(pkts.windows(2).all(|w| rank(w[0].segment) <= rank(w[1].segment)));
            // Every packet is non-empty and within the MTU.
            prop_assert!(pkts.iter().all(|p| p.bytes > 0 && p.bytes <= 500));
        }
    }
}
