//! GOP (Group of Pictures) loss propagation in the base layer.
//!
//! The paper's Section 6.5 explains why its best-effort comparator must
//! "magically" protect the base layer: with motion compensation, "if packet
//! loss is allowed in the base layer and retransmission is suppressed,
//! best-effort streaming simply becomes impossible due to propagation of
//! losses throughout each GOP". This module models exactly that: base
//! layers are coded as one I-frame followed by P-frames that reference
//! their predecessor, so a broken base corrupts every later frame of its
//! GOP (until the next I-frame resynchronizes the decoder).

use crate::decoder::DecodedFrame;
use serde::{Deserialize, Serialize};

/// GOP structure parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GopConfig {
    /// Frames per GOP (the paper's CIF Foreman codings typically use 10–30;
    /// an I-frame starts each group).
    pub gop_size: u32,
}

impl Default for GopConfig {
    fn default() -> Self {
        GopConfig { gop_size: 15 }
    }
}

/// Applies motion-compensation loss propagation to a sequence of decoded
/// frames (sorted by frame index): once a frame's base layer is broken,
/// every following frame in the same GOP is undecodable too — its base is
/// marked broken and its enhancement bytes are useless.
///
/// Frames missing from the input (never received at all) are *not*
/// inserted; callers who need gap awareness should pre-fill them as broken.
///
/// # Examples
///
/// ```
/// use pels_fgs::decoder::DecodedFrame;
/// use pels_fgs::gop::{propagate_base_loss, GopConfig};
///
/// let mk = |frame, base_ok| DecodedFrame {
///     frame, base_ok,
///     enh_sent_packets: 10, enh_received_packets: 10, enh_received_bytes: 5_000,
///     enh_useful_packets: 10, enh_useful_bytes: 5_000,
/// };
/// // Frame 1's base is lost: frames 1..15 are corrupt, frame 15 (next I) recovers.
/// let frames: Vec<_> = (0..16).map(|f| mk(f, f != 1)).collect();
/// let fixed = propagate_base_loss(&frames, GopConfig { gop_size: 15 });
/// assert!(fixed[0].base_ok);
/// assert!(!fixed[7].base_ok, "P-frame after the loss is corrupt");
/// assert!(fixed[15].base_ok, "next I-frame resynchronizes");
/// ```
pub fn propagate_base_loss(frames: &[DecodedFrame], cfg: GopConfig) -> Vec<DecodedFrame> {
    assert!(cfg.gop_size >= 1, "gop size must be at least 1");
    let mut out = Vec::with_capacity(frames.len());
    let mut corrupt_gop: Option<u64> = None;
    for d in frames {
        let gop = d.frame / cfg.gop_size as u64;
        let mut d = *d;
        match corrupt_gop {
            Some(g) if g == gop => {
                d.base_ok = false;
                d.enh_useful_bytes = 0;
                d.enh_useful_packets = 0;
            }
            _ => {
                corrupt_gop = None;
                if !d.base_ok {
                    corrupt_gop = Some(gop);
                    d.enh_useful_bytes = 0;
                    d.enh_useful_packets = 0;
                }
            }
        }
        out.push(d);
    }
    out
}

/// Fraction of frames decodable (base intact) after GOP propagation.
pub fn decodable_fraction(frames: &[DecodedFrame], cfg: GopConfig) -> f64 {
    if frames.is_empty() {
        return 0.0;
    }
    let fixed = propagate_base_loss(frames, cfg);
    fixed.iter().filter(|d| d.base_ok).count() as f64 / fixed.len() as f64
}

/// Expected decodable fraction under i.i.d. per-frame base-loss probability
/// `q` (closed form): a frame at position `k` within its GOP survives iff
/// positions `0..=k` all survive, so the mean over a GOP of size `G` is
/// `(1/G) * Σ_{k=1}^{G} (1-q)^k`.
pub fn expected_decodable_fraction(q: f64, gop_size: u32) -> f64 {
    assert!((0.0..=1.0).contains(&q), "loss must be in [0,1]: {q}");
    assert!(gop_size >= 1, "gop size must be at least 1");
    let s = 1.0 - q;
    if q == 0.0 {
        return 1.0;
    }
    // Σ_{k=1}^{G} s^k = s (1 - s^G) / (1 - s)
    s * (1.0 - s.powi(gop_size as i32)) / (1.0 - s) / gop_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(frame: u64, base_ok: bool) -> DecodedFrame {
        DecodedFrame {
            frame,
            base_ok,
            enh_sent_packets: 10,
            enh_received_packets: 8,
            enh_received_bytes: 4_000,
            enh_useful_packets: 6,
            enh_useful_bytes: 3_000,
        }
    }

    #[test]
    fn no_loss_no_change() {
        let frames: Vec<_> = (0..30).map(|f| mk(f, true)).collect();
        let fixed = propagate_base_loss(&frames, GopConfig::default());
        assert!(fixed.iter().all(|d| d.base_ok && d.enh_useful_bytes == 3_000));
    }

    #[test]
    fn loss_corrupts_rest_of_gop_only() {
        // GOP size 10; base lost at frame 13 -> frames 13..19 corrupt,
        // frame 20 (new GOP) fine.
        let frames: Vec<_> = (0..30).map(|f| mk(f, f != 13)).collect();
        let fixed = propagate_base_loss(&frames, GopConfig { gop_size: 10 });
        for d in &fixed {
            let expect = !(13..20).contains(&d.frame);
            assert_eq!(d.base_ok, expect, "frame {}", d.frame);
            if !expect {
                assert_eq!(d.enh_useful_bytes, 0);
            }
        }
    }

    #[test]
    fn loss_at_i_frame_kills_whole_gop() {
        let frames: Vec<_> = (0..20).map(|f| mk(f, f != 10)).collect();
        let fixed = propagate_base_loss(&frames, GopConfig { gop_size: 10 });
        assert!(fixed[..10].iter().all(|d| d.base_ok));
        assert!(fixed[10..].iter().all(|d| !d.base_ok));
    }

    #[test]
    fn multiple_losses_across_gops() {
        let frames: Vec<_> = (0..30).map(|f| mk(f, f != 2 && f != 25)).collect();
        let fixed = propagate_base_loss(&frames, GopConfig { gop_size: 10 });
        let broken: Vec<u64> = fixed.iter().filter(|d| !d.base_ok).map(|d| d.frame).collect();
        assert_eq!(broken, (2..10).chain(25..30).collect::<Vec<u64>>());
    }

    #[test]
    fn closed_form_matches_monte_carlo() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let q = 0.05;
        let gop = 15;
        let mut rng = StdRng::seed_from_u64(3);
        let frames: Vec<_> = (0..60_000u64).map(|f| mk(f, rng.gen::<f64>() >= q)).collect();
        let measured = decodable_fraction(&frames, GopConfig { gop_size: gop });
        let expect = expected_decodable_fraction(q, gop);
        assert!((measured - expect).abs() < 0.01, "measured {measured} vs closed form {expect}");
    }

    #[test]
    fn closed_form_limits() {
        assert_eq!(expected_decodable_fraction(0.0, 15), 1.0);
        assert!(expected_decodable_fraction(1.0, 15) < 1e-12);
        // GOP of 1 (all-I): no propagation, fraction = 1 - q.
        assert!((expected_decodable_fraction(0.1, 1) - 0.9).abs() < 1e-12);
        // Large GOPs amplify small losses: 2% loss, GOP 15 -> ~85%.
        let f = expected_decodable_fraction(0.02, 15);
        assert!((0.8..0.9).contains(&f), "{f}");
    }
}
