//! The receiver-side FGS decoder model.
//!
//! FGS enhancement data is only decodable as a *consecutive prefix*: a
//! single gap renders everything above it useless (paper Section 3, Fig. 3).
//! The base layer requires *all* of its packets — motion compensation and
//! VLC coding propagate any base-layer loss across the GOP.

use crate::packetize::{PacketPlan, Segment};
use serde::{Deserialize, Serialize};

/// Reception record of one transmitted frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameReception {
    /// Frame index.
    pub frame: u64,
    /// Number of packets the frame was transmitted with.
    pub total: u16,
    /// Number of those that were base-layer packets.
    pub base_count: u16,
    /// Per-packet receive flag, indexed by packet index within the frame.
    received: Vec<bool>,
    /// Per-packet payload sizes, indexed by packet index (0 if unknown).
    sizes: Vec<u32>,
}

impl FrameReception {
    /// Creates an empty record for a frame transmitted as `plan`.
    pub fn from_plan(frame: u64, plan: &[PacketPlan]) -> Self {
        FrameReception {
            frame,
            total: plan.len() as u16,
            base_count: plan.iter().filter(|p| p.segment == Segment::Base).count() as u16,
            received: vec![false; plan.len()],
            sizes: plan.iter().map(|p| p.bytes).collect(),
        }
    }

    /// Creates a record when only counts are known (packet sizes assumed
    /// uniform `packet_bytes`).
    pub fn with_counts(frame: u64, total: u16, base_count: u16, packet_bytes: u32) -> Self {
        FrameReception {
            frame,
            total,
            base_count,
            received: vec![false; total as usize],
            sizes: vec![packet_bytes; total as usize],
        }
    }

    /// Marks packet `index` as received. Out-of-range indices are ignored
    /// (they belong to a stale generation of the frame).
    pub fn mark_received(&mut self, index: u16) {
        if let Some(slot) = self.received.get_mut(index as usize) {
            *slot = true;
        }
    }

    /// Marks packet `index` as received and records its actual payload size
    /// (used by receivers that learn sizes from the wire, where tail packets
    /// of a segment may be shorter than the MTU).
    pub fn mark_received_sized(&mut self, index: u16, bytes: u32) {
        if let Some(slot) = self.received.get_mut(index as usize) {
            *slot = true;
            self.sizes[index as usize] = bytes;
        }
    }

    /// Whether packet `index` was received.
    pub fn is_received(&self, index: u16) -> bool {
        self.received.get(index as usize).copied().unwrap_or(false)
    }

    /// Decodes the frame (see [`DecodedFrame`]).
    pub fn decode(&self) -> DecodedFrame {
        let base = self.base_count as usize;
        let base_ok = self.received[..base].iter().all(|&r| r);
        let mut useful_packets = 0u32;
        let mut useful_bytes = 0u64;
        let mut counting = true;
        let mut received_packets = 0u32;
        let mut received_bytes = 0u64;
        for i in base..self.total as usize {
            if self.received[i] {
                received_packets += 1;
                received_bytes += self.sizes[i] as u64;
                if counting {
                    useful_packets += 1;
                    useful_bytes += self.sizes[i] as u64;
                }
            } else {
                counting = false;
            }
        }
        DecodedFrame {
            frame: self.frame,
            base_ok,
            enh_sent_packets: self.total as u32 - self.base_count as u32,
            enh_received_packets: received_packets,
            enh_received_bytes: received_bytes,
            enh_useful_packets: useful_packets,
            enh_useful_bytes: if base_ok { useful_bytes } else { 0 },
        }
    }
}

/// Result of decoding one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedFrame {
    /// Frame index.
    pub frame: u64,
    /// Whether the base layer arrived intact (all base packets received).
    pub base_ok: bool,
    /// Enhancement packets transmitted.
    pub enh_sent_packets: u32,
    /// Enhancement packets received (any position).
    pub enh_received_packets: u32,
    /// Enhancement bytes received (any position).
    pub enh_received_bytes: u64,
    /// Enhancement packets in the decodable consecutive prefix
    /// (`Y_j` in the paper's Lemma 1).
    pub enh_useful_packets: u32,
    /// Bytes in the decodable prefix; zero when the base layer is broken
    /// (enhancement is useless without its base).
    pub enh_useful_bytes: u64,
}

impl DecodedFrame {
    /// Per-frame utility: useful / received enhancement packets
    /// (paper Eq. 3's numerator/denominator for one frame). `None` when no
    /// enhancement packets were received.
    pub fn utility(&self) -> Option<f64> {
        if self.enh_received_packets == 0 {
            None
        } else {
            Some(self.enh_useful_packets as f64 / self.enh_received_packets as f64)
        }
    }
}

/// Aggregate utility over many decoded frames.
///
/// # Examples
///
/// ```
/// use pels_fgs::decoder::{FrameReception, UtilityStats};
/// use pels_fgs::packetize::packetize;
/// use pels_fgs::scaling::ScaledFrame;
///
/// let frame = ScaledFrame { base_bytes: 500, enhancement_bytes: 1_500 };
/// let plan = packetize(&frame, 1_500, 0, 500);
/// let mut rx = FrameReception::from_plan(0, &plan);
/// for i in [0u16, 1, 2] { rx.mark_received(i); } // lose the last packet
/// let mut stats = UtilityStats::new();
/// stats.add(&rx.decode());
/// assert_eq!(stats.utility(), 1.0); // the received prefix is consecutive
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UtilityStats {
    /// Frames accumulated.
    pub frames: u64,
    /// Frames whose base layer survived.
    pub base_ok_frames: u64,
    /// Total enhancement packets sent.
    pub enh_sent: u64,
    /// Total enhancement packets received.
    pub enh_received: u64,
    /// Total useful enhancement packets.
    pub enh_useful: u64,
    /// Total useful enhancement bytes.
    pub enh_useful_bytes: u64,
}

impl UtilityStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one decoded frame.
    pub fn add(&mut self, d: &DecodedFrame) {
        self.frames += 1;
        self.base_ok_frames += d.base_ok as u64;
        self.enh_sent += d.enh_sent_packets as u64;
        self.enh_received += d.enh_received_packets as u64;
        self.enh_useful += d.enh_useful_packets as u64;
        self.enh_useful_bytes += d.enh_useful_bytes;
    }

    /// Aggregate utility `U` = useful / received enhancement packets
    /// (paper Eq. 3). Zero when nothing was received.
    pub fn utility(&self) -> f64 {
        if self.enh_received == 0 {
            0.0
        } else {
            self.enh_useful as f64 / self.enh_received as f64
        }
    }

    /// Mean useful enhancement packets per frame (`E[Y_j]`).
    pub fn mean_useful_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.enh_useful as f64 / self.frames as f64
        }
    }

    /// Observed enhancement-layer packet loss.
    pub fn loss_rate(&self) -> f64 {
        if self.enh_sent == 0 {
            0.0
        } else {
            1.0 - self.enh_received as f64 / self.enh_sent as f64
        }
    }

    /// Merges another accumulator into this one (e.g. across flows).
    pub fn merge(&mut self, other: &UtilityStats) {
        self.frames += other.frames;
        self.base_ok_frames += other.base_ok_frames;
        self.enh_sent += other.enh_sent;
        self.enh_received += other.enh_received;
        self.enh_useful += other.enh_useful;
        self.enh_useful_bytes += other.enh_useful_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packetize::packetize;
    use crate::scaling::ScaledFrame;

    fn reception(base: u32, enh: u32) -> FrameReception {
        let frame = ScaledFrame { base_bytes: base, enhancement_bytes: enh };
        let plan = packetize(&frame, enh, 0, 500);
        FrameReception::from_plan(0, &plan)
    }

    #[test]
    fn all_received_is_fully_useful() {
        let mut rx = reception(1_000, 5_000);
        for i in 0..rx.total {
            rx.mark_received(i);
        }
        let d = rx.decode();
        assert!(d.base_ok);
        assert_eq!(d.enh_useful_packets, 10);
        assert_eq!(d.enh_useful_bytes, 5_000);
        assert_eq!(d.utility(), Some(1.0));
    }

    #[test]
    fn gap_truncates_useful_prefix() {
        let mut rx = reception(500, 5_000); // 1 base + 10 enhancement
        rx.mark_received(0); // base
        for i in [1u16, 2, 3, /* gap at 4 */ 5, 6, 7, 8, 9, 10] {
            rx.mark_received(i);
        }
        let d = rx.decode();
        assert!(d.base_ok);
        assert_eq!(d.enh_received_packets, 9);
        assert_eq!(d.enh_useful_packets, 3);
        assert_eq!(d.enh_useful_bytes, 1_500);
        assert!((d.utility().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn broken_base_zeroes_useful_bytes() {
        let mut rx = reception(1_000, 2_000); // 2 base + 4 enhancement
        rx.mark_received(0); // only half the base
        for i in 2..6u16 {
            rx.mark_received(i);
        }
        let d = rx.decode();
        assert!(!d.base_ok);
        assert_eq!(d.enh_useful_bytes, 0);
        // Packet-level prefix accounting is still reported for diagnostics.
        assert_eq!(d.enh_useful_packets, 4);
    }

    #[test]
    fn first_enhancement_lost_means_nothing_useful() {
        let mut rx = reception(500, 2_000);
        rx.mark_received(0);
        for i in 2..5u16 {
            rx.mark_received(i); // index 1 (first enhancement) missing
        }
        let d = rx.decode();
        assert_eq!(d.enh_useful_packets, 0);
        assert_eq!(d.utility(), Some(0.0));
    }

    #[test]
    fn out_of_range_marks_are_ignored() {
        let mut rx = reception(500, 500);
        rx.mark_received(200);
        assert!(!rx.is_received(200));
        assert_eq!(rx.decode().enh_received_packets, 0);
    }

    #[test]
    fn utility_stats_merge_equals_single_stream() {
        let d1 = DecodedFrame {
            frame: 0,
            base_ok: true,
            enh_sent_packets: 10,
            enh_received_packets: 9,
            enh_received_bytes: 4_500,
            enh_useful_packets: 7,
            enh_useful_bytes: 3_500,
        };
        let d2 = DecodedFrame { frame: 1, enh_useful_packets: 2, ..d1 };
        let mut whole = UtilityStats::new();
        whole.add(&d1);
        whole.add(&d2);
        let mut a = UtilityStats::new();
        a.add(&d1);
        let mut b = UtilityStats::new();
        b.add(&d2);
        a.merge(&b);
        assert_eq!(a.frames, whole.frames);
        assert_eq!(a.enh_useful, whole.enh_useful);
        assert!((a.utility() - whole.utility()).abs() < 1e-12);
    }

    #[test]
    fn utility_stats_aggregate() {
        let mut stats = UtilityStats::new();
        // Frame 1: everything received.
        let mut rx = reception(500, 2_500);
        for i in 0..rx.total {
            rx.mark_received(i);
        }
        stats.add(&rx.decode());
        // Frame 2: half the enhancement received, prefix of 1.
        let mut rx = reception(500, 2_500);
        rx.mark_received(0);
        rx.mark_received(1);
        rx.mark_received(3);
        rx.mark_received(5);
        stats.add(&rx.decode());
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.enh_sent, 10);
        assert_eq!(stats.enh_received, 8);
        assert_eq!(stats.enh_useful, 6);
        assert!((stats.utility() - 0.75).abs() < 1e-12);
        assert!((stats.loss_rate() - 0.2).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::packetize::packetize;
    use crate::scaling::ScaledFrame;
    use proptest::prelude::*;

    proptest! {
        /// Useful packets are always a prefix: useful <= received, and if a
        /// packet at enhancement position k is useful then all positions
        /// before k were received.
        #[test]
        fn useful_is_prefix(
            enh_packets in 1usize..60,
            lost in proptest::collection::vec(any::<bool>(), 61),
        ) {
            let frame = ScaledFrame { base_bytes: 500, enhancement_bytes: (enh_packets as u32) * 500 };
            let plan = packetize(&frame, frame.enhancement_bytes, 0, 500);
            let mut rx = FrameReception::from_plan(0, &plan);
            rx.mark_received(0); // keep base intact
            let mut first_gap = enh_packets;
            for (k, &was_lost) in lost.iter().enumerate().take(enh_packets) {
                if !was_lost {
                    rx.mark_received((k + 1) as u16);
                } else if first_gap == enh_packets {
                    first_gap = k;
                }
            }
            let d = rx.decode();
            prop_assert!(d.enh_useful_packets <= d.enh_received_packets);
            prop_assert_eq!(d.enh_useful_packets as usize, first_gap);
        }
    }
}
