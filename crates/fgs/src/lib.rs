//! # pels-fgs — the MPEG-4 FGS scalable-video substrate
//!
//! Everything the PELS reproduction needs from the video side of the system:
//!
//! * frame and trace models with the paper's CIF Foreman packetization
//!   constants ([`frame`], [`trace_gen`]),
//! * rate scaling of the FGS enhancement layer and its partition into
//!   yellow/red segments ([`scaling`]),
//! * packetization into 500-byte wire packets ([`packetize`]),
//! * the receiver-side prefix decoder and utility accounting ([`decoder`]),
//! * GOP/motion-compensation loss propagation in the base layer ([`gop`]),
//! * calibrated synthetic quality models replacing the offline codec — a
//!   smooth R-D map ([`psnr`]) and a bitplane-structured one
//!   ([`bitplane`]),
//! * and R-D-aware budget allocation across frames ([`rd_scaling`], the
//!   paper's cited-but-unused refinement).
//!
//! ## Example: how much of a frame survives 10% random loss?
//!
//! ```
//! use pels_fgs::decoder::FrameReception;
//! use pels_fgs::packetize::packetize;
//! use pels_fgs::scaling::{scale_to_rate, partition_enhancement};
//! use pels_fgs::frame::foreman;
//!
//! let trace = foreman::trace();
//! let scaled = scale_to_rate(trace.frame(0), 1_500_000.0, trace.fps);
//! let (yellow, red) = partition_enhancement(scaled.enhancement_bytes, 0.2);
//! let plan = packetize(&scaled, yellow, red, foreman::PACKET_BYTES);
//!
//! let mut rx = FrameReception::from_plan(0, &plan);
//! for p in &plan {
//!     if p.index % 10 != 9 { rx.mark_received(p.index); } // drop every 10th
//! }
//! let decoded = rx.decode();
//! assert!(decoded.enh_useful_packets <= decoded.enh_received_packets);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitplane;
pub mod decoder;
pub mod frame;
pub mod gop;
pub mod packetize;
pub mod psnr;
pub mod rd_scaling;
pub mod scaling;
pub mod trace_gen;

pub use bitplane::{BitplaneConfig, BitplaneModel, QualityModel};
pub use decoder::{DecodedFrame, FrameReception, UtilityStats};
pub use frame::{FrameSpec, VideoTrace};
pub use gop::{propagate_base_loss, GopConfig};
pub use packetize::{packetize, PacketPlan, Segment};
pub use psnr::{RdConfig, RdModel};
pub use scaling::{partition_enhancement, scale_to_rate, ScaledFrame};
