//! Synthetic variable-size frame traces.
//!
//! The paper's analysis (Lemma 1) covers arbitrary i.i.d. frame-size
//! distributions; its simulations use constant sizes. For experiments beyond
//! the paper's constant-size setup, this module generates seeded synthetic
//! traces whose enhancement-layer sizes follow a smooth "scene complexity"
//! process (an AR(1) random walk with reflective clamping), which is the
//! standard first-order model of coded-video size variation.

use crate::frame::{FrameSpec, VideoTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceGenConfig {
    /// Number of frames.
    pub n_frames: usize,
    /// Frames per second.
    pub fps: f64,
    /// Base-layer bytes per frame (constant — base layers are CBR-coded).
    pub base_bytes: u32,
    /// Mean enhancement bytes per frame.
    pub mean_enhancement_bytes: u32,
    /// Coefficient of variation of enhancement sizes (0 = constant).
    pub cv: f64,
    /// AR(1) smoothing factor in `[0, 1)`: 0 = i.i.d., near 1 = slow drift.
    pub smoothness: f64,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        TraceGenConfig {
            n_frames: 300,
            fps: 10.0,
            base_bytes: 10_500,
            mean_enhancement_bytes: 52_500,
            cv: 0.15,
            smoothness: 0.9,
        }
    }
}

/// Generates a seeded synthetic trace.
///
/// # Examples
///
/// ```
/// use pels_fgs::trace_gen::{generate, TraceGenConfig};
///
/// let t = generate(&TraceGenConfig::default(), 7);
/// assert_eq!(t.len(), 300);
/// // Same seed, same trace.
/// assert_eq!(t, generate(&TraceGenConfig::default(), 7));
/// ```
///
/// # Panics
///
/// Panics if the configuration is invalid (`cv < 0`, `smoothness` outside
/// `[0, 1)`, zero frames, or non-positive fps).
pub fn generate(cfg: &TraceGenConfig, seed: u64) -> VideoTrace {
    assert!(cfg.cv >= 0.0 && cfg.cv.is_finite(), "invalid cv: {}", cfg.cv);
    assert!(
        (0.0..1.0).contains(&cfg.smoothness),
        "smoothness must be in [0,1): {}",
        cfg.smoothness
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mean = cfg.mean_enhancement_bytes as f64;
    let sigma = mean * cfg.cv;
    // AR(1): x_k = a*x_{k-1} + sqrt(1-a^2)*eps_k keeps stationary variance
    // equal to the innovation variance.
    let a = cfg.smoothness;
    let innov = (1.0 - a * a).sqrt();
    let mut state = 0.0f64;
    let frames = (0..cfg.n_frames as u64)
        .map(|index| {
            // Approximate a standard normal via the sum of 12 uniforms
            // (Irwin-Hall), which is deterministic and dependency-free.
            let eps: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            state = a * state + innov * eps;
            let enh = (mean + sigma * state).clamp(mean * 0.2, mean * 3.0);
            FrameSpec { index, base_bytes: cfg.base_bytes, enhancement_bytes: enh.round() as u32 }
        })
        .collect();
    VideoTrace::new(cfg.fps, frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_close_to_target() {
        let cfg = TraceGenConfig { n_frames: 5_000, ..Default::default() };
        let t = generate(&cfg, 3);
        let mean: f64 = t.iter().map(|f| f.enhancement_bytes as f64).sum::<f64>() / 5_000.0;
        let target = cfg.mean_enhancement_bytes as f64;
        assert!((mean - target).abs() / target < 0.05, "mean {mean} too far from {target}");
    }

    #[test]
    fn zero_cv_is_constant() {
        let cfg = TraceGenConfig { cv: 0.0, n_frames: 50, ..Default::default() };
        let t = generate(&cfg, 1);
        assert!(t.iter().all(|f| f.enhancement_bytes == cfg.mean_enhancement_bytes));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = TraceGenConfig::default();
        assert_ne!(generate(&cfg, 1), generate(&cfg, 2));
    }

    #[test]
    fn smoothness_reduces_frame_to_frame_jumps() {
        let jitter = |smoothness: f64| {
            let cfg = TraceGenConfig { smoothness, n_frames: 2_000, ..Default::default() };
            let t = generate(&cfg, 5);
            let sizes: Vec<f64> = t.iter().map(|f| f.enhancement_bytes as f64).collect();
            sizes.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (sizes.len() - 1) as f64
        };
        assert!(jitter(0.95) < jitter(0.1));
    }

    #[test]
    #[should_panic(expected = "smoothness")]
    fn rejects_bad_smoothness() {
        let cfg = TraceGenConfig { smoothness: 1.0, ..Default::default() };
        let _ = generate(&cfg, 0);
    }
}
