//! Rate-distortion–aware budget allocation across frames.
//!
//! The paper streams a *fixed fraction* of every frame (Fig. 1 left) and
//! notes that quality fluctuation "can be further reduced using
//! sophisticated R-D scaling methods [5] (not used in this work)". This
//! module implements that future-work item: given per-frame R-D curves
//! (PSNR as a function of enhancement bytes) and a total byte budget for a
//! window of frames, allocate bytes to *equalize quality* across the
//! window (the classic reverse-waterfilling objective for concave R-D
//! curves).
//!
//! With the linear-to-cap R-D model of [`crate::psnr`], equalizing quality
//! has a closed form per water level; we binary-search the level.

use crate::psnr::RdModel;

/// Per-frame allocation limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameBudget {
    /// Frame index (into the R-D model).
    pub frame: u64,
    /// Maximum enhancement bytes available for this frame.
    pub max_bytes: u64,
}

/// Allocates `total_bytes` across `frames` to maximize the *minimum* frame
/// PSNR (equivalently: equalize PSNR, given concave per-frame curves),
/// respecting per-frame maxima.
///
/// Returns one allocation per input frame, in order; the allocations sum to
/// at most `total_bytes` (exactly, unless every frame hits its cap or its
/// PSNR ceiling first).
///
/// # Examples
///
/// ```
/// use pels_fgs::psnr::RdModel;
/// use pels_fgs::rd_scaling::{allocate_equal_quality, FrameBudget};
///
/// let model = RdModel::foreman_like(10, 1);
/// let frames: Vec<FrameBudget> =
///     (0..10).map(|frame| FrameBudget { frame, max_bytes: 20_000 }).collect();
/// let alloc = allocate_equal_quality(&model, &frames, 50_000);
/// assert_eq!(alloc.len(), 10);
/// assert!(alloc.iter().sum::<u64>() <= 50_000);
/// ```
///
/// # Panics
///
/// Panics if `frames` is empty.
pub fn allocate_equal_quality(
    model: &RdModel,
    frames: &[FrameBudget],
    total_bytes: u64,
) -> Vec<u64> {
    assert!(!frames.is_empty(), "need at least one frame");

    // Bytes frame `i` needs to reach PSNR level `q` (clamped to its cap).
    let need = |fb: &FrameBudget, q: f64| -> u64 {
        let base = model.base_psnr(fb.frame);
        if q <= base {
            return 0;
        }
        // Invert the monotone R-D curve by binary search on bytes (robust
        // to any concave model, not just the linear-to-cap default).
        let (mut lo, mut hi) = (0u64, fb.max_bytes);
        if model.psnr(fb.frame, hi, true) < q {
            return hi;
        }
        while hi - lo > 8 {
            let mid = (lo + hi) / 2;
            if model.psnr(fb.frame, mid, true) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    };
    let spend = |q: f64| -> u64 { frames.iter().map(|fb| need(fb, q)).sum() };

    // Binary search the water level q.
    let mut q_lo = frames.iter().map(|fb| model.base_psnr(fb.frame)).fold(f64::INFINITY, f64::min);
    let mut q_hi = frames
        .iter()
        .map(|fb| model.psnr(fb.frame, fb.max_bytes, true))
        .fold(f64::NEG_INFINITY, f64::max);
    for _ in 0..64 {
        let q = 0.5 * (q_lo + q_hi);
        if spend(q) > total_bytes {
            q_hi = q;
        } else {
            q_lo = q;
        }
    }
    frames.iter().map(|fb| need(fb, q_lo)).collect()
}

/// The fixed-fraction baseline the paper uses: every frame gets the same
/// byte budget (clamped to its maximum).
pub fn allocate_fixed(frames: &[FrameBudget], total_bytes: u64) -> Vec<u64> {
    assert!(!frames.is_empty(), "need at least one frame");
    let per = total_bytes / frames.len() as u64;
    frames.iter().map(|fb| per.min(fb.max_bytes)).collect()
}

/// PSNR standard deviation across frames for an allocation (the
/// "fluctuation" metric of the paper's Fig. 10 discussion).
pub fn psnr_std_dev(model: &RdModel, frames: &[FrameBudget], alloc: &[u64]) -> f64 {
    assert_eq!(frames.len(), alloc.len(), "allocation length mismatch");
    let vals: Vec<f64> =
        frames.iter().zip(alloc).map(|(fb, &b)| model.psnr(fb.frame, b, true)).collect();
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psnr::RdConfig;

    fn frames(n: u64, cap: u64) -> Vec<FrameBudget> {
        (0..n).map(|frame| FrameBudget { frame, max_bytes: cap }).collect()
    }

    #[test]
    fn respects_total_budget_and_caps() {
        let model = RdModel::foreman_like(20, 3);
        let fs = frames(20, 5_000);
        let alloc = allocate_equal_quality(&model, &fs, 40_000);
        assert!(alloc.iter().sum::<u64>() <= 40_000 + 20 * 8); // search slack
        assert!(alloc.iter().all(|&b| b <= 5_000));
    }

    #[test]
    fn reduces_psnr_variance_vs_fixed() {
        // High per-frame R-D variability: waterfilling should equalize.
        let cfg = RdConfig { slope_variation: 0.4, base_psnr_sd: 2.5, ..Default::default() };
        let model = RdModel::new(50, cfg, 7);
        let fs = frames(50, 8_000);
        let budget = 200_000;
        let fixed = allocate_fixed(&fs, budget);
        let rd = allocate_equal_quality(&model, &fs, budget);
        let sd_fixed = psnr_std_dev(&model, &fs, &fixed);
        let sd_rd = psnr_std_dev(&model, &fs, &rd);
        assert!(
            sd_rd < 0.5 * sd_fixed,
            "waterfilling should halve fluctuation: {sd_rd} vs {sd_fixed}"
        );
    }

    #[test]
    fn ample_budget_hits_caps() {
        let model = RdModel::foreman_like(5, 1);
        let fs = frames(5, 1_000);
        let alloc = allocate_equal_quality(&model, &fs, 1_000_000);
        assert!(alloc.iter().all(|&b| b >= 992), "{alloc:?}");
    }

    #[test]
    fn zero_budget_allocates_nothing() {
        let model = RdModel::foreman_like(5, 1);
        let fs = frames(5, 1_000);
        let alloc = allocate_equal_quality(&model, &fs, 0);
        assert!(alloc.iter().all(|&b| b == 0), "{alloc:?}");
    }

    #[test]
    fn poor_frames_get_more_bytes() {
        // A frame with a low base PSNR should receive more budget than a
        // high-quality one under equal-quality allocation.
        let cfg = RdConfig { base_psnr_sd: 3.0, slope_variation: 0.0, ..Default::default() };
        let model = RdModel::new(30, cfg, 11);
        let fs = frames(30, 10_000);
        let alloc = allocate_equal_quality(&model, &fs, 100_000);
        // Correlation between base PSNR and allocation must be negative.
        let bases: Vec<f64> = fs.iter().map(|f| model.base_psnr(f.frame)).collect();
        let mean_b = bases.iter().sum::<f64>() / 30.0;
        let mean_a = alloc.iter().sum::<u64>() as f64 / 30.0;
        let cov: f64 =
            bases.iter().zip(&alloc).map(|(b, &a)| (b - mean_b) * (a as f64 - mean_a)).sum();
        assert!(cov < 0.0, "covariance {cov} should be negative");
    }

    #[test]
    fn fixed_allocation_is_uniform() {
        let fs = frames(10, 3_000);
        let alloc = allocate_fixed(&fs, 25_000);
        assert!(alloc.iter().all(|&b| b == 2_500));
        let capped = allocate_fixed(&fs, 100_000);
        assert!(capped.iter().all(|&b| b == 3_000));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The allocation never exceeds the budget (plus search slack) or
        /// any per-frame cap, for arbitrary budgets and caps.
        #[test]
        fn allocation_is_feasible(
            n in 1u64..40,
            cap in 100u64..20_000,
            budget in 0u64..500_000,
            seed in 0u64..100,
        ) {
            let model = RdModel::foreman_like(n as usize, seed);
            let fs: Vec<FrameBudget> =
                (0..n).map(|frame| FrameBudget { frame, max_bytes: cap }).collect();
            let alloc = allocate_equal_quality(&model, &fs, budget);
            prop_assert_eq!(alloc.len(), fs.len());
            prop_assert!(alloc.iter().all(|&b| b <= cap));
            let slack = 8 * n; // binary-search quantization
            prop_assert!(alloc.iter().sum::<u64>() <= budget + slack);
        }
    }
}
