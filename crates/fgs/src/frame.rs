//! Video frames and traces.
//!
//! An FGS-coded video consists of a *base layer* (must be received intact to
//! display anything) and a single *enhancement layer* per frame that can be
//! truncated at any byte boundary (Fine Granular Scalability, the streaming
//! profile of MPEG-4; paper Section 2.3).

use serde::{Deserialize, Serialize};

/// Sizes of one coded video frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameSpec {
    /// Frame index in display order.
    pub index: u64,
    /// Bytes in the base layer of this frame.
    pub base_bytes: u32,
    /// Bytes in the full (R_max-coded) FGS enhancement layer of this frame.
    pub enhancement_bytes: u32,
}

impl FrameSpec {
    /// Total coded size at `R_max` (base + full enhancement).
    pub fn total_bytes(&self) -> u32 {
        self.base_bytes + self.enhancement_bytes
    }
}

/// A sequence of frames with a fixed frame rate.
///
/// # Examples
///
/// ```
/// use pels_fgs::frame::VideoTrace;
///
/// let trace = VideoTrace::constant(300, 10.0, 10_500, 52_500);
/// assert_eq!(trace.len(), 300);
/// assert_eq!(trace.frame(0).total_bytes(), 63_000);
/// assert!((trace.frame_interval_secs() - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoTrace {
    /// Frames per second.
    pub fps: f64,
    frames: Vec<FrameSpec>,
}

impl VideoTrace {
    /// Creates a trace from explicit frames.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not positive/finite or `frames` is empty.
    pub fn new(fps: f64, frames: Vec<FrameSpec>) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "invalid fps: {fps}");
        assert!(!frames.is_empty(), "a trace needs at least one frame");
        VideoTrace { fps, frames }
    }

    /// Creates a trace in which every frame has identical layer sizes —
    /// the paper's evaluation setup (Section 6.1: 63,000-byte frames,
    /// 126 packets of 500 bytes, 21 of them base-layer).
    pub fn constant(n_frames: usize, fps: f64, base_bytes: u32, enhancement_bytes: u32) -> Self {
        let frames = (0..n_frames as u64)
            .map(|index| FrameSpec { index, base_bytes, enhancement_bytes })
            .collect();
        Self::new(fps, frames)
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the trace has no frames (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The `i`-th frame, wrapping around for looped playout.
    pub fn frame(&self, i: u64) -> &FrameSpec {
        &self.frames[(i % self.frames.len() as u64) as usize]
    }

    /// Seconds between successive frames.
    pub fn frame_interval_secs(&self) -> f64 {
        1.0 / self.fps
    }

    /// Iterates over the frames.
    pub fn iter(&self) -> impl Iterator<Item = &FrameSpec> {
        self.frames.iter()
    }

    /// Mean full-rate (R_max) bitrate of the trace in bits per second.
    pub fn mean_full_bitrate_bps(&self) -> f64 {
        let total: u64 = self.frames.iter().map(|f| f.total_bytes() as u64).sum();
        total as f64 * 8.0 * self.fps / self.frames.len() as f64
    }

    /// Mean base-layer bitrate in bits per second.
    pub fn base_bitrate_bps(&self) -> f64 {
        let total: u64 = self.frames.iter().map(|f| f.base_bytes as u64).sum();
        total as f64 * 8.0 * self.fps / self.frames.len() as f64
    }
}

/// The paper's evaluation profile: CIF Foreman packetization constants.
///
/// One frame is 63,000 bytes = 126 packets x 500 bytes, 21 packets of which
/// carry the base layer (Section 6.1). The frame rate is 10 fps (standard
/// for CIF Foreman in FGS experiments; the paper does not state it
/// explicitly — see EXPERIMENTS.md).
pub mod foreman {
    use super::VideoTrace;

    /// Packet payload size on the wire, bytes.
    pub const PACKET_BYTES: u32 = 500;
    /// Packets per full frame.
    pub const PACKETS_PER_FRAME: u32 = 126;
    /// Base-layer (green) packets per frame.
    pub const BASE_PACKETS: u32 = 21;
    /// Base-layer bytes per frame.
    pub const BASE_BYTES: u32 = BASE_PACKETS * PACKET_BYTES;
    /// Full enhancement-layer bytes per frame.
    pub const ENHANCEMENT_BYTES: u32 = (PACKETS_PER_FRAME - BASE_PACKETS) * PACKET_BYTES;
    /// Frame rate used in this reproduction.
    pub const FPS: f64 = 10.0;
    /// Frames in the CIF Foreman sequence.
    pub const NUM_FRAMES: usize = 300;

    /// The constant-size Foreman trace used by the paper's simulations.
    pub fn trace() -> VideoTrace {
        VideoTrace::constant(NUM_FRAMES, FPS, BASE_BYTES, ENHANCEMENT_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let t = foreman::trace();
        assert_eq!(t.frame(0).total_bytes(), 63_000);
        assert_eq!(t.frame(0).base_bytes, 10_500);
        assert_eq!(t.frame(0).enhancement_bytes, 52_500);
        assert_eq!(foreman::PACKETS_PER_FRAME, 126);
        assert_eq!(foreman::BASE_PACKETS, 21);
    }

    #[test]
    fn wraps_for_looped_playout() {
        let t = VideoTrace::constant(3, 10.0, 100, 200);
        assert_eq!(t.frame(0).index, 0);
        assert_eq!(t.frame(3).index, 0);
        assert_eq!(t.frame(7).index, 1);
    }

    #[test]
    fn bitrates() {
        let t = VideoTrace::constant(10, 10.0, 1_000, 9_000);
        // 10,000 B/frame * 8 * 10 fps = 800 kb/s.
        assert!((t.mean_full_bitrate_bps() - 800_000.0).abs() < 1e-6);
        assert!((t.base_bitrate_bps() - 80_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid fps")]
    fn rejects_bad_fps() {
        let _ = VideoTrace::constant(10, 0.0, 100, 100);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn rejects_empty() {
        let _ = VideoTrace::new(10.0, vec![]);
    }
}

/// Errors produced when parsing a trace from CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending row (0 = header/structure).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

impl VideoTrace {
    /// Serializes the trace as CSV: a header `fps,<fps>` line followed by
    /// `index,base_bytes,enhancement_bytes` rows. Round-trips through
    /// [`VideoTrace::from_csv`].
    pub fn to_csv(&self) -> String {
        let mut out = format!("fps,{}\nindex,base_bytes,enhancement_bytes\n", self.fps);
        for f in &self.frames {
            out.push_str(&format!("{},{},{}\n", f.index, f.base_bytes, f.enhancement_bytes));
        }
        out
    }

    /// Parses a trace from the CSV format written by [`VideoTrace::to_csv`]
    /// (also accepts real coded-video frame-size tables exported in that
    /// shape). Frame indices are re-assigned sequentially.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] for a malformed header, row, or an
    /// empty trace.
    pub fn from_csv(text: &str) -> Result<VideoTrace, ParseTraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) =
            lines.next().ok_or(ParseTraceError { line: 0, message: "empty input".into() })?;
        let fps: f64 = header
            .strip_prefix("fps,")
            .and_then(|v| v.trim().parse().ok())
            .filter(|v: &f64| v.is_finite() && *v > 0.0)
            .ok_or(ParseTraceError { line: 1, message: "expected `fps,<value>` header".into() })?;
        let mut frames = Vec::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with("index,") {
                continue;
            }
            let mut cols = line.split(',');
            let parse = |v: Option<&str>| -> Option<u64> { v?.trim().parse().ok() };
            let _index = parse(cols.next());
            let base = parse(cols.next());
            let enh = parse(cols.next());
            match (base, enh) {
                (Some(b), Some(e)) if b <= u32::MAX as u64 && e <= u32::MAX as u64 => {
                    frames.push(FrameSpec {
                        index: frames.len() as u64,
                        base_bytes: b as u32,
                        enhancement_bytes: e as u32,
                    });
                }
                _ => {
                    return Err(ParseTraceError {
                        line: i + 1,
                        message: format!("malformed row `{line}`"),
                    })
                }
            }
        }
        if frames.is_empty() {
            return Err(ParseTraceError { line: 0, message: "no frames in trace".into() });
        }
        Ok(VideoTrace::new(fps, frames))
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = VideoTrace::constant(5, 10.0, 1_600, 61_400);
        let parsed = VideoTrace::from_csv(&t.to_csv()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn tolerates_column_header_and_blank_lines() {
        let text = "fps,25\nindex,base_bytes,enhancement_bytes\n\n0,100,200\n1,100,300\n";
        let t = VideoTrace::from_csv(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.fps, 25.0);
        assert_eq!(t.frame(1).enhancement_bytes, 300);
    }

    #[test]
    fn reports_offending_line() {
        let text = "fps,25\n0,100,200\n1,oops,300\n";
        let err = VideoTrace::from_csv(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("oops"));
    }

    #[test]
    fn rejects_bad_header_and_empty() {
        assert!(VideoTrace::from_csv("").is_err());
        assert!(VideoTrace::from_csv("frames,10\n0,1,2\n").is_err());
        assert!(VideoTrace::from_csv("fps,30\n").is_err());
    }
}
