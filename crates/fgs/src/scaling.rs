//! Rate scaling: how many enhancement bytes of each frame to transmit.
//!
//! The FGS layer is coded once at a very large bitrate `R_max` and re-scaled
//! at streaming time by truncating each frame (paper Section 2.3, Fig. 1).
//! Given the sending rate allowed by congestion control, the scaler decides
//! `x_i` — the enhancement bytes of frame `i` that go on the wire.

use crate::frame::FrameSpec;

/// Truncation plan for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaledFrame {
    /// Base-layer bytes (always transmitted in full).
    pub base_bytes: u32,
    /// Enhancement bytes selected for transmission (`x_i` in the paper).
    pub enhancement_bytes: u32,
}

impl ScaledFrame {
    /// Total bytes on the wire for this frame.
    pub fn total_bytes(&self) -> u32 {
        self.base_bytes + self.enhancement_bytes
    }
}

/// Scales frames to a target rate by giving every frame the same byte budget
/// (the "fixed fraction" policy of Fig. 1 left, which is what the paper's
/// simulations use: `x_i` is derived from the congestion-control rate).
///
/// The budget per frame is `rate / fps` bytes; the base layer is always
/// included in full (its loss makes the frame undecodable), and the
/// remainder goes to the enhancement layer, truncated to what exists.
///
/// # Examples
///
/// ```
/// use pels_fgs::frame::FrameSpec;
/// use pels_fgs::scaling::scale_to_rate;
///
/// let f = FrameSpec { index: 0, base_bytes: 10_500, enhancement_bytes: 52_500 };
/// // 1 Mb/s at 10 fps = 12,500 B/frame; 2,000 B left for enhancement.
/// let s = scale_to_rate(&f, 1_000_000.0, 10.0);
/// assert_eq!(s.enhancement_bytes, 2_000);
/// assert_eq!(s.total_bytes(), 12_500);
/// ```
///
/// # Panics
///
/// Panics if `rate_bps` is negative or `fps` is not positive.
pub fn scale_to_rate(frame: &FrameSpec, rate_bps: f64, fps: f64) -> ScaledFrame {
    assert!(rate_bps.is_finite() && rate_bps >= 0.0, "invalid rate: {rate_bps}");
    assert!(fps.is_finite() && fps > 0.0, "invalid fps: {fps}");
    let budget_bytes = (rate_bps / 8.0 / fps).floor() as u64;
    let enh = budget_bytes
        .saturating_sub(frame.base_bytes as u64)
        .min(frame.enhancement_bytes as u64) as u32;
    ScaledFrame { base_bytes: frame.base_bytes, enhancement_bytes: enh }
}

/// Splits `x` enhancement bytes into a yellow prefix and red suffix using
/// partition fraction `gamma` (paper Fig. 4 right): the lower
/// `(1 - gamma) * x` bytes are yellow, the upper `gamma * x` bytes are red.
///
/// Returns `(yellow_bytes, red_bytes)` with `yellow + red == x` exactly
/// (rounding goes to red, the expendable class).
///
/// # Examples
///
/// ```
/// use pels_fgs::scaling::partition_enhancement;
///
/// assert_eq!(partition_enhancement(1000, 0.25), (750, 250));
/// assert_eq!(partition_enhancement(1000, 0.0), (1000, 0));
/// assert_eq!(partition_enhancement(1000, 1.0), (0, 1000));
/// ```
///
/// # Panics
///
/// Panics if `gamma` is outside `[0, 1]`.
pub fn partition_enhancement(x_bytes: u32, gamma: f64) -> (u32, u32) {
    assert!(gamma.is_finite() && (0.0..=1.0).contains(&gamma), "gamma must be in [0,1]: {gamma}");
    let yellow = ((1.0 - gamma) * x_bytes as f64).floor() as u32;
    (yellow, x_bytes - yellow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> FrameSpec {
        FrameSpec { index: 0, base_bytes: 10_500, enhancement_bytes: 52_500 }
    }

    #[test]
    fn rate_below_base_sends_base_only() {
        // 128 kb/s at 10 fps = 1,600 B/frame < 10,500 B base.
        let s = scale_to_rate(&frame(), 128_000.0, 10.0);
        assert_eq!(s.enhancement_bytes, 0);
        assert_eq!(s.base_bytes, 10_500);
    }

    #[test]
    fn rate_above_full_caps_at_rmax() {
        // 100 Mb/s at 10 fps = 1.25 MB/frame >> 63 kB frame.
        let s = scale_to_rate(&frame(), 100_000_000.0, 10.0);
        assert_eq!(s.enhancement_bytes, 52_500);
    }

    #[test]
    fn budget_is_monotone_in_rate() {
        let mut last = 0;
        for rate in (0..50).map(|i| i as f64 * 100_000.0) {
            let s = scale_to_rate(&frame(), rate, 10.0);
            assert!(s.enhancement_bytes >= last);
            last = s.enhancement_bytes;
        }
    }

    #[test]
    fn partition_is_exact() {
        for x in [0u32, 1, 2, 999, 1000, 52_500] {
            for gamma in [0.0, 0.05, 0.33, 0.5, 0.75, 1.0] {
                let (y, r) = partition_enhancement(x, gamma);
                assert_eq!(y + r, x, "x={x} gamma={gamma}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gamma must be in")]
    fn partition_rejects_bad_gamma() {
        let _ = partition_enhancement(100, 1.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// partition never loses or invents bytes and respects the gamma
        /// proportion within one byte of rounding.
        #[test]
        fn partition_conserves(x in 0u32..100_000, gamma in 0.0f64..=1.0) {
            let (y, r) = partition_enhancement(x, gamma);
            prop_assert_eq!(y + r, x);
            let expect_yellow = (1.0 - gamma) * x as f64;
            prop_assert!((y as f64 - expect_yellow).abs() <= 1.0);
        }

        /// scale_to_rate never exceeds the frame or the rate budget.
        #[test]
        fn scale_bounds(rate in 0.0f64..20_000_000.0, fps in 1.0f64..60.0) {
            let f = FrameSpec { index: 0, base_bytes: 10_500, enhancement_bytes: 52_500 };
            let s = scale_to_rate(&f, rate, fps);
            prop_assert!(s.enhancement_bytes <= f.enhancement_bytes);
            let budget = rate / 8.0 / fps;
            // base always included; enhancement fits in the leftover budget.
            if s.enhancement_bytes > 0 {
                prop_assert!(s.total_bytes() as f64 <= budget + 1.0);
            }
        }
    }
}
