//! Synthetic rate-distortion (PSNR) model.
//!
//! The paper evaluates quality by decoding the actual CIF Foreman sequence
//! offline and plotting PSNR (Fig. 10). We do not have the video or an
//! MPEG-4 FGS codec, so this module substitutes a calibrated synthetic R-D
//! model (see DESIGN.md, substitutions table):
//!
//! * each frame has a base-layer PSNR drawn from a smooth per-frame process
//!   (scene complexity makes quality drift a few dB across a sequence);
//! * decodable enhancement bytes add PSNR linearly up to a saturation cap —
//!   over the sub-megabit operating range of the paper's experiments,
//!   measured FGS R-D curves are close to linear in rate (see e.g. the
//!   paper's own reference [5]).
//!
//! What *differs* between streaming schemes is only the number of
//! consecutively decodable enhancement bytes per frame, which the
//! [`crate::decoder`] computes exactly; the R-D map is shared. Relative
//! comparisons (PELS vs best-effort) therefore do not hinge on the map's
//! fine shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic R-D model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RdConfig {
    /// Mean base-layer PSNR, dB.
    pub base_psnr_mean: f64,
    /// Standard deviation of the per-frame base PSNR process, dB.
    pub base_psnr_sd: f64,
    /// AR(1) smoothness of the base PSNR process in `[0, 1)`.
    pub smoothness: f64,
    /// PSNR gained per decodable enhancement kilobyte, dB.
    pub slope_db_per_kbyte: f64,
    /// Saturation cap on enhancement PSNR gain, dB.
    pub delta_max_db: f64,
    /// Relative per-frame variation of the slope (scene complexity).
    pub slope_variation: f64,
    /// PSNR penalty when the base layer is undecodable (error concealment).
    pub concealment_penalty_db: f64,
}

impl Default for RdConfig {
    fn default() -> Self {
        RdConfig {
            base_psnr_mean: 29.0,
            base_psnr_sd: 1.2,
            smoothness: 0.85,
            slope_db_per_kbyte: 1.93,
            delta_max_db: 17.5,
            slope_variation: 0.15,
            concealment_penalty_db: 12.0,
        }
    }
}

/// A per-frame R-D map: frame index + decodable enhancement bytes → PSNR.
///
/// # Examples
///
/// ```
/// use pels_fgs::psnr::RdModel;
///
/// let model = RdModel::foreman_like(300, 42);
/// let base_only = model.psnr(0, 0, true);
/// let enhanced = model.psnr(0, 9_000, true);
/// assert!(enhanced > base_only + 10.0); // ~17 dB gain at 9 kB
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RdModel {
    cfg: RdConfig,
    base_psnr: Vec<f64>,
    slope: Vec<f64>,
}

impl RdModel {
    /// Builds a model with explicit configuration and a seed for the
    /// per-frame processes.
    ///
    /// # Panics
    ///
    /// Panics if `n_frames == 0` or the configuration is out of range.
    pub fn new(n_frames: usize, cfg: RdConfig, seed: u64) -> Self {
        assert!(n_frames > 0, "need at least one frame");
        assert!((0.0..1.0).contains(&cfg.smoothness), "smoothness out of range");
        assert!(cfg.slope_db_per_kbyte > 0.0, "slope must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = cfg.smoothness;
        let innov = (1.0 - a * a).sqrt();
        let mut state = 0.0f64;
        let mut base_psnr = Vec::with_capacity(n_frames);
        let mut slope = Vec::with_capacity(n_frames);
        for _ in 0..n_frames {
            let eps: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            state = a * state + innov * eps;
            base_psnr.push(cfg.base_psnr_mean + cfg.base_psnr_sd * state);
            let wiggle = 1.0 + cfg.slope_variation * (rng.gen::<f64>() * 2.0 - 1.0);
            slope.push(cfg.slope_db_per_kbyte * wiggle);
        }
        RdModel { cfg, base_psnr, slope }
    }

    /// The Foreman-like default model used throughout this reproduction.
    pub fn foreman_like(n_frames: usize, seed: u64) -> Self {
        Self::new(n_frames, RdConfig::default(), seed)
    }

    /// Number of frames in the model.
    pub fn len(&self) -> usize {
        self.base_psnr.len()
    }

    /// Whether the model is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.base_psnr.is_empty()
    }

    /// PSNR of frame `frame` reconstructed with `useful_enh_bytes` of
    /// consecutively decodable enhancement data. Frames beyond the model
    /// length wrap (looped playout).
    pub fn psnr(&self, frame: u64, useful_enh_bytes: u64, base_ok: bool) -> f64 {
        let i = (frame % self.base_psnr.len() as u64) as usize;
        let base = self.base_psnr[i];
        if !base_ok {
            return (base - self.cfg.concealment_penalty_db).max(10.0);
        }
        let delta = (self.slope[i] * useful_enh_bytes as f64 / 1000.0).min(self.cfg.delta_max_db);
        base + delta
    }

    /// Base-layer PSNR of frame `frame` (no enhancement).
    pub fn base_psnr(&self, frame: u64) -> f64 {
        self.psnr(frame, 0, true)
    }

    /// Mean PSNR over a whole sequence given per-frame useful bytes.
    pub fn mean_psnr<'a>(&self, per_frame: impl Iterator<Item = &'a (u64, u64, bool)>) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(frame, bytes, base_ok) in per_frame {
            sum += self.psnr(frame, bytes, base_ok);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_useful_bytes() {
        let m = RdModel::foreman_like(10, 1);
        let mut last = 0.0;
        for kb in 0..20u64 {
            let p = m.psnr(3, kb * 1000, true);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn saturates_at_delta_max() {
        let m = RdModel::foreman_like(10, 1);
        let hi = m.psnr(0, 1_000_000, true);
        let base = m.base_psnr(0);
        assert!((hi - base - 17.5).abs() < 1e-9);
    }

    #[test]
    fn calibration_sixty_percent_gain_near_nine_kilobytes() {
        // DESIGN.md calibration: ~9 kB of decodable enhancement gives about
        // a 60% PSNR improvement over the ~29 dB base (paper Fig. 10 left).
        let m = RdModel::new(1000, RdConfig { slope_variation: 0.0, ..Default::default() }, 3);
        let mut ratio = 0.0;
        for f in 0..1000u64 {
            ratio += (m.psnr(f, 9_000, true) - m.base_psnr(f)) / m.base_psnr(f);
        }
        ratio /= 1000.0;
        assert!((0.5..0.7).contains(&ratio), "gain ratio {ratio} not near 60%");
    }

    #[test]
    fn broken_base_is_heavily_penalized() {
        let m = RdModel::foreman_like(10, 1);
        assert!(m.psnr(0, 50_000, false) < m.base_psnr(0) - 5.0);
        assert!(m.psnr(0, 0, false) >= 10.0);
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_frames() {
        let a = RdModel::foreman_like(300, 9);
        let b = RdModel::foreman_like(300, 9);
        assert_eq!(a, b);
        let psnrs: Vec<f64> = (0..300).map(|f| a.base_psnr(f)).collect();
        let min = psnrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = psnrs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1.0, "base PSNR should vary across the sequence");
    }

    #[test]
    fn wraps_frame_index() {
        let m = RdModel::foreman_like(5, 2);
        assert_eq!(m.base_psnr(2), m.base_psnr(7));
    }
}
