//! A bitplane-structured quality model of the FGS enhancement layer.
//!
//! MPEG-4 FGS codes the DCT residual as *bitplanes*, most-significant
//! first: each fully received plane roughly halves the residual error
//! (≈ +6.02 dB), and planes grow in size toward the least-significant end
//! (more coefficients become non-zero). This module models that structure
//! explicitly — an alternative to the smooth R-D map in [`crate::psnr`]
//! that reproduces the step-wise quality growth of a real FGS decoder.
//!
//! Both models implement [`QualityModel`], so experiments can swap them and
//! check that conclusions do not hinge on the quality map's fine shape.

use crate::psnr::RdModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Anything that maps `(frame, decodable enhancement bytes, base intact)`
/// to a PSNR value.
pub trait QualityModel {
    /// PSNR of `frame` reconstructed with `useful_enh_bytes` of consecutive
    /// enhancement data.
    fn psnr(&self, frame: u64, useful_enh_bytes: u64, base_ok: bool) -> f64;

    /// PSNR with no enhancement data.
    fn base_psnr(&self, frame: u64) -> f64 {
        self.psnr(frame, 0, true)
    }
}

impl QualityModel for RdModel {
    fn psnr(&self, frame: u64, useful_enh_bytes: u64, base_ok: bool) -> f64 {
        RdModel::psnr(self, frame, useful_enh_bytes, base_ok)
    }
}

/// Configuration of [`BitplaneModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitplaneConfig {
    /// Mean base-layer PSNR, dB.
    pub base_psnr_mean: f64,
    /// Std dev of per-frame base PSNR, dB.
    pub base_psnr_sd: f64,
    /// Number of enhancement bitplanes.
    pub planes: usize,
    /// Size of the first (most-significant) plane, bytes.
    pub first_plane_bytes: f64,
    /// Geometric growth factor of plane sizes toward the LSB end.
    pub growth: f64,
    /// PSNR gained by each complete plane (6.02 dB = one binary digit).
    pub db_per_plane: f64,
    /// Relative per-frame variation of plane sizes (scene complexity).
    pub size_variation: f64,
    /// PSNR penalty when the base layer is undecodable.
    pub concealment_penalty_db: f64,
}

impl Default for BitplaneConfig {
    fn default() -> Self {
        BitplaneConfig {
            base_psnr_mean: 29.0,
            base_psnr_sd: 1.2,
            planes: 5,
            // Sizes 1.6k, 3.2k, 6.4k, 12.8k, 25.6k ~ 49.6 kB total — close
            // to the paper's 52.5 kB full enhancement layer.
            first_plane_bytes: 1_600.0,
            growth: 2.0,
            db_per_plane: 6.02,
            size_variation: 0.2,
            concealment_penalty_db: 12.0,
        }
    }
}

/// The bitplane quality model.
///
/// # Examples
///
/// ```
/// use pels_fgs::bitplane::{BitplaneModel, QualityModel};
///
/// let m = BitplaneModel::foreman_like(300, 42);
/// // One full plane (~1.6 kB) adds ~6 dB; half a plane adds ~3 dB.
/// let base = m.base_psnr(0);
/// assert!(m.psnr(0, 60_000, true) > base + 25.0); // all planes
/// assert!(m.psnr(0, 0, true) == base);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitplaneModel {
    cfg: BitplaneConfig,
    base_psnr: Vec<f64>,
    /// Per-frame plane sizes in bytes, MSB plane first.
    plane_sizes: Vec<Vec<f64>>,
}

impl BitplaneModel {
    /// Builds a model with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n_frames == 0`, `planes == 0`, or sizes are non-positive.
    pub fn new(n_frames: usize, cfg: BitplaneConfig, seed: u64) -> Self {
        assert!(n_frames > 0, "need at least one frame");
        assert!(cfg.planes > 0, "need at least one plane");
        assert!(cfg.first_plane_bytes > 0.0 && cfg.growth > 0.0, "sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut base_psnr = Vec::with_capacity(n_frames);
        let mut plane_sizes = Vec::with_capacity(n_frames);
        for _ in 0..n_frames {
            let eps: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            base_psnr.push(cfg.base_psnr_mean + cfg.base_psnr_sd * eps * 0.5);
            let wiggle = 1.0 + cfg.size_variation * (rng.gen::<f64>() * 2.0 - 1.0);
            let sizes = (0..cfg.planes)
                .map(|k| cfg.first_plane_bytes * cfg.growth.powi(k as i32) * wiggle)
                .collect();
            plane_sizes.push(sizes);
        }
        BitplaneModel { cfg, base_psnr, plane_sizes }
    }

    /// The Foreman-like default.
    pub fn foreman_like(n_frames: usize, seed: u64) -> Self {
        Self::new(n_frames, BitplaneConfig::default(), seed)
    }

    /// Total enhancement bytes of frame `frame` (all planes).
    pub fn full_enhancement_bytes(&self, frame: u64) -> u64 {
        let i = (frame % self.plane_sizes.len() as u64) as usize;
        self.plane_sizes[i].iter().sum::<f64>() as u64
    }

    /// Number of configured bitplanes.
    pub fn planes(&self) -> usize {
        self.cfg.planes
    }
}

impl QualityModel for BitplaneModel {
    fn psnr(&self, frame: u64, useful_enh_bytes: u64, base_ok: bool) -> f64 {
        let i = (frame % self.base_psnr.len() as u64) as usize;
        let base = self.base_psnr[i];
        if !base_ok {
            return (base - self.cfg.concealment_penalty_db).max(10.0);
        }
        let mut remaining = useful_enh_bytes as f64;
        let mut delta = 0.0;
        for &size in &self.plane_sizes[i] {
            if remaining <= 0.0 {
                break;
            }
            let fraction = (remaining / size).min(1.0);
            // A partial plane refines a fraction of the coefficients:
            // linear interpolation of the plane's dB contribution.
            delta += self.cfg.db_per_plane * fraction;
            remaining -= size;
        }
        base + delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_stepwise() {
        let m = BitplaneModel::foreman_like(10, 1);
        let mut last = 0.0;
        for kb in 0..60u64 {
            let v = m.psnr(2, kb * 1000, true);
            assert!(v >= last - 1e-12, "monotone at {kb} kB");
            last = v;
        }
        // Saturates once all planes are in.
        let full = m.full_enhancement_bytes(2);
        assert_eq!(m.psnr(2, full + 1, true), m.psnr(2, full + 100_000, true));
    }

    #[test]
    fn complete_plane_adds_six_db() {
        let cfg = BitplaneConfig { size_variation: 0.0, base_psnr_sd: 0.0, ..Default::default() };
        let m = BitplaneModel::new(5, cfg, 1);
        let base = m.base_psnr(0);
        let one_plane = m.psnr(0, 1_600, true);
        assert!((one_plane - base - 6.02).abs() < 1e-9);
        let half_plane = m.psnr(0, 800, true);
        assert!((half_plane - base - 3.01).abs() < 1e-9);
    }

    #[test]
    fn early_bytes_are_worth_more() {
        // Diminishing returns: the first 2 kB gains more than the 2 kB
        // after 20 kB (MSB planes are smaller and each worth 6 dB).
        let cfg = BitplaneConfig { size_variation: 0.0, ..Default::default() };
        let m = BitplaneModel::new(5, cfg, 1);
        let early = m.psnr(0, 2_000, true) - m.psnr(0, 0, true);
        let late = m.psnr(0, 22_000, true) - m.psnr(0, 20_000, true);
        assert!(early > 3.0 * late, "early {early} vs late {late}");
    }

    #[test]
    fn total_size_near_paper_enhancement_layer() {
        let m = BitplaneModel::foreman_like(300, 3);
        let mean: f64 = (0..300).map(|f| m.full_enhancement_bytes(f) as f64).sum::<f64>() / 300.0;
        assert!(
            (mean - 49_600.0).abs() < 5_000.0,
            "mean full enhancement {mean} should approximate 52.5 kB"
        );
    }

    #[test]
    fn broken_base_penalized() {
        let m = BitplaneModel::foreman_like(10, 1);
        assert!(m.psnr(0, 50_000, false) < m.base_psnr(0));
    }

    #[test]
    fn trait_object_usable() {
        // Both models behind the same trait.
        let models: Vec<Box<dyn QualityModel>> = vec![
            Box::new(BitplaneModel::foreman_like(10, 1)),
            Box::new(crate::psnr::RdModel::foreman_like(10, 1)),
        ];
        for m in &models {
            assert!(m.psnr(0, 9_000, true) > m.base_psnr(0) + 5.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(BitplaneModel::foreman_like(50, 9), BitplaneModel::foreman_like(50, 9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The model is monotone in useful bytes and bounded by
        /// base + planes * db_per_plane, for any frame and byte count.
        #[test]
        fn bounded_and_monotone(frame in 0u64..500, bytes in 0u64..100_000, seed in 0u64..50) {
            let m = BitplaneModel::foreman_like(100, seed);
            let v = m.psnr(frame, bytes, true);
            let base = m.base_psnr(frame);
            prop_assert!(v >= base);
            prop_assert!(v <= base + 5.0 * 6.02 + 1e-9);
            prop_assert!(m.psnr(frame, bytes + 500, true) >= v - 1e-12);
        }
    }
}
