//! Unified telemetry for the PELS simulation and wire stacks.
//!
//! One lightweight handle, [`Telemetry`], is threaded through the hot paths
//! of the simulator, the controllers, and the live UDP agents. It is
//! **zero-cost when disabled**: the default handle holds no allocation and
//! every recording call is a single `Option` check. When enabled, metrics
//! accumulate in a registry of:
//!
//! - **counters** — monotone event counts (`counter_add`),
//! - **gauges** — last-value metrics with update counts (`gauge_set`),
//! - **stats** — streaming distributions: Welford moments + log-bucket
//!   histogram (`observe`),
//! - **series** — named `(t, v)` sample scopes (`sample`).
//!
//! Metric names are dotted scopes: `flow0.rate_kbps`, `router.p_red`,
//! `wire.rx.decode_errors`. See DESIGN.md §10 for the full naming scheme.
//!
//! Snapshots of the registry ([`Snapshot`]) merge associatively and
//! order-insensitively, so parallel runs can be folded in any order.
//! Pluggable sinks ([`Sink`]) receive cumulative snapshots on
//! [`Telemetry::flush`]: JSON-lines for `--telemetry <path>`, CSV via the
//! shared `stats::to_csv`, or in-memory for tests.
//!
//! # Examples
//!
//! ```
//! use pels_telemetry::Telemetry;
//!
//! let tel = Telemetry::new();
//! tel.counter_add("router.drops.red", 1);
//! tel.gauge_set("flow0.gamma", 0.8);
//! tel.observe("flow0.rate_kbps", 1040.0);
//! tel.sample("router.p", 1.0, 0.02);
//!
//! let snap = tel.snapshot();
//! assert_eq!(snap.counters["router.drops.red"], 1);
//!
//! // Disabled handles record nothing and cost one branch per call.
//! let off = Telemetry::disabled();
//! off.counter_add("router.drops.red", 1);
//! assert!(off.snapshot().is_empty());
//! ```

pub mod sink;
pub mod snapshot;

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use pels_netsim::stats::TimeSeries;

pub use sink::{parse_snapshot_lines, CsvSink, JsonLinesSink, MemorySink, Sink, SnapshotLine};
pub use snapshot::{Gauge, Snapshot, Stat};

/// Live metric state behind an enabled handle.
#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    stats: BTreeMap<String, Stat>,
    series: BTreeMap<String, Vec<(f64, f64)>>,
}

struct Inner {
    registry: Mutex<Registry>,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
}

/// A cloneable telemetry handle. Clones share one registry.
///
/// The default handle is disabled: it holds no allocation and every
/// recording method returns after one branch, so instrumented hot paths pay
/// nothing when telemetry is off.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

/// Recovers the guard even if a panic poisoned the lock — telemetry must
/// never be the thing that takes a run down.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Telemetry {
    /// Creates an enabled handle with an empty registry and no sinks.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Mutex::new(Registry::default()),
                sinks: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Creates a disabled handle (same as `Telemetry::default()`).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut reg = lock(&inner.registry);
        match reg.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                reg.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        let mut reg = lock(&inner.registry);
        match reg.gauges.get_mut(name) {
            Some(g) => {
                g.updates += 1;
                g.value = v;
            }
            None => {
                reg.gauges.insert(name.to_owned(), Gauge { updates: 1, value: v });
            }
        }
    }

    /// Records `v` into the streaming distribution `name`.
    pub fn observe(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        let mut reg = lock(&inner.registry);
        match reg.stats.get_mut(name) {
            Some(s) => s.record(v),
            None => {
                let mut s = Stat::default();
                s.record(v);
                reg.stats.insert(name.to_owned(), s);
            }
        }
    }

    /// Appends `(t, v)` to the time-series scope `scope`.
    pub fn sample(&self, scope: &str, t: f64, v: f64) {
        let Some(inner) = &self.inner else { return };
        let mut reg = lock(&inner.registry);
        match reg.series.get_mut(scope) {
            Some(pts) => pts.push((t, v)),
            None => {
                reg.series.insert(scope.to_owned(), vec![(t, v)]);
            }
        }
    }

    /// Current value of counter `name` (0 if absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        lock(&inner.registry).counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        lock(&inner.registry).gauges.get(name).map(|g| g.value)
    }

    /// A copy of the series scope `name`, as a plottable [`TimeSeries`].
    pub fn series(&self, name: &str) -> Option<TimeSeries> {
        let inner = self.inner.as_ref()?;
        lock(&inner.registry)
            .series
            .get(name)
            .map(|pts| TimeSeries { name: name.to_owned(), points: pts.clone() })
    }

    /// A point-in-time copy of every metric (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else { return Snapshot::default() };
        let reg = lock(&inner.registry);
        Snapshot {
            counters: reg.counters.clone(),
            gauges: reg.gauges.clone(),
            stats: reg.stats.clone(),
            series: reg.series.clone(),
        }
    }

    /// Attaches a sink; it receives every subsequent [`Telemetry::flush`].
    /// No-op on a disabled handle.
    pub fn attach_sink(&self, sink: Box<dyn Sink>) {
        let Some(inner) = &self.inner else { return };
        lock(&inner.sinks).push(sink);
    }

    /// Emits the cumulative snapshot (stamped with time `t`, in seconds) to
    /// every attached sink.
    pub fn flush(&self, t: f64) {
        let Some(inner) = &self.inner else { return };
        let snap = self.snapshot();
        for sink in lock(&inner.sinks).iter_mut() {
            sink.emit(t, &snap);
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.is_enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        tel.counter_add("c", 5);
        tel.gauge_set("g", 1.0);
        tel.observe("s", 2.0);
        tel.sample("ts", 0.0, 3.0);
        tel.flush(1.0);
        assert!(!tel.is_enabled());
        assert!(tel.snapshot().is_empty());
        assert_eq!(tel.counter("c"), 0);
        assert_eq!(tel.gauge("g"), None);
        assert!(tel.series("ts").is_none());
    }

    #[test]
    fn clones_share_one_registry() {
        let tel = Telemetry::new();
        let other = tel.clone();
        tel.counter_add("c", 2);
        other.counter_add("c", 3);
        assert_eq!(tel.counter("c"), 5);
    }

    #[test]
    fn registry_round_trip() {
        let tel = Telemetry::new();
        tel.counter_add("wire.rx.decode_errors", 2);
        tel.gauge_set("flow0.gamma", 0.7);
        tel.gauge_set("flow0.gamma", 0.9);
        for v in [1.0, 2.0, 3.0] {
            tel.observe("flow0.rate_kbps", v * 100.0);
        }
        tel.sample("router.p", 0.5, 0.01);
        tel.sample("router.p", 1.0, 0.02);

        let snap = tel.snapshot();
        assert_eq!(snap.counters["wire.rx.decode_errors"], 2);
        assert_eq!(snap.gauges["flow0.gamma"], Gauge { updates: 2, value: 0.9 });
        assert_eq!(snap.stats["flow0.rate_kbps"].summary.count(), 3);
        assert_eq!(snap.series["router.p"].len(), 2);
        let series = tel.series("router.p").unwrap();
        assert_eq!(series.name, "router.p");
        assert_eq!(series.last_value(), Some(0.02));
    }

    #[test]
    fn memory_sink_sees_cumulative_snapshots() {
        let tel = Telemetry::new();
        let mem = MemorySink::new();
        tel.attach_sink(Box::new(mem.clone()));
        tel.counter_add("c", 1);
        tel.flush(1.0);
        tel.counter_add("c", 1);
        tel.flush(2.0);
        let snaps = mem.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].1.counters["c"], 1);
        assert_eq!(snaps[1].1.counters["c"], 2);
        assert_eq!(mem.last().unwrap().0, 2.0);
    }

    #[test]
    fn snapshot_serializes_to_json_lines_and_back() {
        let tel = Telemetry::new();
        tel.counter_add("c", 7);
        tel.gauge_set("g", 2.5);
        tel.observe("o", 0.125);
        tel.sample("ts", 0.0, 1.0);
        let line = SnapshotLine { t: 3.0, snapshot: tel.snapshot() };
        let json = serde_json::to_string(&line).unwrap();
        let parsed = parse_snapshot_lines(&format!("{json}\n{json}\n")).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].t, 3.0);
        assert_eq!(parsed[1].snapshot.counters["c"], 7);
        assert_eq!(parsed[1].snapshot.gauges["g"].value, 2.5);
        assert_eq!(parsed[1].snapshot.stats["o"].summary.count(), 1);
        assert_eq!(parsed[1].snapshot.series["ts"], vec![(0.0, 1.0)]);
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("pels-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let tel = Telemetry::new();
        tel.attach_sink(Box::new(JsonLinesSink::create(&path).unwrap()));
        tel.counter_add("c", 1);
        tel.flush(0.5);
        tel.counter_add("c", 1);
        tel.flush(1.5);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines = parse_snapshot_lines(&text).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].snapshot.counters["c"], 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_sink_rewrites_series_csv() {
        let dir = std::env::temp_dir().join("pels-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.csv");
        let tel = Telemetry::new();
        tel.attach_sink(Box::new(CsvSink::new(&path)));
        tel.sample("a", 0.0, 1.0);
        tel.sample("b", 0.5, 2.0);
        tel.flush(1.0);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "t,a,b");
        assert_eq!(lines.len(), 3);
        std::fs::remove_file(&path).ok();
    }
}
