//! Point-in-time snapshots of a telemetry registry, and their merge law.
//!
//! A [`Snapshot`] is a plain value: it can be serialized to JSON, shipped
//! between processes, and combined with [`Snapshot::merge`]. Merging is
//! designed to be associative and order-insensitive (up to floating-point
//! rounding in the Welford summary combine), so snapshots taken from
//! parallel runs — or flushed incrementally — can be folded in any order.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use pels_netsim::hist::Histogram;
use pels_netsim::stats::Summary;
use serde::{Deserialize, Serialize};

/// Last-written value of a gauge, with a monotone update counter.
///
/// The counter makes gauge merging well defined: combining two snapshots
/// keeps the gauge that has seen more updates (ties broken by the larger
/// value), which is associative and commutative — unlike "last writer wins",
/// which depends on merge order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gauge {
    /// How many times the gauge has been set.
    pub updates: u64,
    /// Most recently set value.
    pub value: f64,
}

impl Gauge {
    /// The gauge that survives a merge: more updates wins, ties broken by
    /// the larger value under IEEE total order.
    pub fn merged(self, other: Gauge) -> Gauge {
        match self.updates.cmp(&other.updates).then_with(|| self.value.total_cmp(&other.value)) {
            Ordering::Less => other,
            _ => self,
        }
    }
}

/// Streaming distribution of an observed metric: Welford moments plus a
/// log-bucket histogram for quantiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stat {
    /// Count / mean / variance / extrema.
    pub summary: Summary,
    /// Log-bucket histogram (shared parameters across the whole layer, so
    /// snapshots always merge cleanly).
    pub hist: Histogram,
}

/// Histogram floor for observed metrics. Wide enough to cover sub-nanosecond
/// delays up to multi-megabit rates with ~15% bucket resolution.
pub(crate) const OBSERVE_V_MIN: f64 = 1e-9;
/// Histogram bucket growth factor for observed metrics.
pub(crate) const OBSERVE_GROWTH: f64 = 1.15;

impl Default for Stat {
    fn default() -> Self {
        Stat { summary: Summary::new(), hist: Histogram::new(OBSERVE_V_MIN, OBSERVE_GROWTH) }
    }
}

impl Stat {
    /// Records one observation into both the summary and the histogram.
    pub fn record(&mut self, v: f64) {
        self.summary.record(v);
        self.hist.record(v);
    }
}

/// A point-in-time copy of every metric in a telemetry registry.
///
/// Snapshots are cumulative: each one holds the full state since the start
/// of the run, so a JSON-lines stream of snapshots can be truncated at any
/// line and the last surviving line still summarizes the run so far.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotone event counts, merged by summation.
    pub counters: BTreeMap<String, u64>,
    /// Last-value metrics, merged by [`Gauge::merged`].
    pub gauges: BTreeMap<String, Gauge>,
    /// Observed distributions, merged by parallel Welford + histogram add.
    pub stats: BTreeMap<String, Stat>,
    /// Named `(t, v)` sample streams, merged by union + sort on `(t, v)`.
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
}

impl Snapshot {
    /// Folds `other` into `self`.
    ///
    /// Counters add, gauges keep the most-updated writer, stats combine
    /// exactly (histograms) or to within floating-point rounding (Welford
    /// moments), and series take the sorted union of samples. The operation
    /// is associative and commutative up to float rounding, so any merge
    /// tree over the same set of snapshots yields the same result.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, g) in &other.gauges {
            self.gauges.entry(k.clone()).and_modify(|mine| *mine = mine.merged(*g)).or_insert(*g);
        }
        for (k, s) in &other.stats {
            match self.stats.get_mut(k) {
                Some(mine) => {
                    mine.summary.merge(&s.summary);
                    // All stats in this layer share histogram parameters;
                    // a foreign snapshot with different ones keeps ours.
                    let _ = mine.hist.try_merge(&s.hist);
                }
                None => {
                    self.stats.insert(k.clone(), s.clone());
                }
            }
        }
        for (k, pts) in &other.series {
            let mine = self.series.entry(k.clone()).or_default();
            mine.extend_from_slice(pts);
            mine.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        }
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.stats.is_empty()
            && self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_gauges_keep_most_updated() {
        let mut a = Snapshot::default();
        a.counters.insert("c".into(), 3);
        a.gauges.insert("g".into(), Gauge { updates: 5, value: 1.0 });
        let mut b = Snapshot::default();
        b.counters.insert("c".into(), 4);
        b.gauges.insert("g".into(), Gauge { updates: 2, value: 9.0 });
        a.merge(&b);
        assert_eq!(a.counters["c"], 7);
        assert_eq!(a.gauges["g"], Gauge { updates: 5, value: 1.0 });
    }

    #[test]
    fn merge_unions_series_sorted_by_time() {
        let mut a = Snapshot::default();
        a.series.insert("s".into(), vec![(2.0, 1.0), (0.0, 0.0)]);
        let mut b = Snapshot::default();
        b.series.insert("s".into(), vec![(1.0, 0.5)]);
        a.merge(&b);
        assert_eq!(a.series["s"], vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]);
    }

    #[test]
    fn merge_combines_stats_exactly_on_counts() {
        let mut a = Snapshot::default();
        let mut sa = Stat::default();
        sa.record(1.0);
        sa.record(3.0);
        a.stats.insert("d".into(), sa);
        let mut b = Snapshot::default();
        let mut sb = Stat::default();
        sb.record(2.0);
        b.stats.insert("d".into(), sb);
        a.merge(&b);
        let s = &a.stats["d"];
        assert_eq!(s.summary.count(), 3);
        assert!((s.summary.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.hist.count(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const KEYS: [&str; 4] = ["a", "b", "c", "d"];

    /// Builds a snapshot the way a registry would: replaying randomly keyed
    /// events, so duplicate keys genuinely collide during merges.
    #[allow(clippy::type_complexity)]
    fn build(
        counters: Vec<(u8, u64)>,
        gauges: Vec<(u8, f64)>,
        stats: Vec<(u8, Vec<f64>)>,
        series: Vec<(u8, f64, f64)>,
    ) -> Snapshot {
        let mut snap = Snapshot::default();
        for (k, v) in counters {
            *snap.counters.entry(KEYS[k as usize].into()).or_insert(0) += v;
        }
        for (k, v) in gauges {
            let g = snap
                .gauges
                .entry(KEYS[k as usize].into())
                .or_insert(Gauge { updates: 0, value: 0.0 });
            g.updates += 1;
            g.value = v;
        }
        for (k, vals) in stats {
            let s = snap.stats.entry(KEYS[k as usize].into()).or_default();
            for v in vals {
                s.record(v);
            }
        }
        for (k, t, v) in series {
            snap.series.entry(KEYS[k as usize].into()).or_default().push((t, v));
        }
        snap
    }

    fn snapshot_strategy() -> impl Strategy<Value = Snapshot> {
        (
            collection::vec((0u8..4, 0u64..50), 0..6),
            collection::vec((0u8..4, -1e3f64..1e3), 0..6),
            collection::vec((0u8..4, collection::vec(1e-3f64..1e3, 1..8)), 0..4),
            collection::vec((0u8..4, 0.0f64..100.0, -10.0f64..10.0), 0..8),
        )
            .prop_map(|(c, g, s, ts)| build(c, g, s, ts))
    }

    /// Everything but Welford means/variances must agree exactly; the
    /// moments agree to floating-point rounding.
    /// Series are multisets of samples: merge order may leave untouched
    /// keys in push order, so compare them sorted.
    fn sorted_series(s: &Snapshot) -> Vec<(&String, Vec<(f64, f64)>)> {
        s.series
            .iter()
            .map(|(k, pts)| {
                let mut pts = pts.clone();
                pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
                (k, pts)
            })
            .collect()
    }

    fn assert_equivalent(a: &Snapshot, b: &Snapshot) {
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.gauges, b.gauges);
        assert_eq!(sorted_series(a), sorted_series(b));
        let a_keys: Vec<&String> = a.stats.keys().collect();
        let b_keys: Vec<&String> = b.stats.keys().collect();
        assert_eq!(a_keys, b_keys);
        for (k, sa) in &a.stats {
            let sb = &b.stats[k];
            assert_eq!(sa.summary.count(), sb.summary.count(), "stat {k} count");
            assert_eq!(sa.summary.min(), sb.summary.min(), "stat {k} min");
            assert_eq!(sa.summary.max(), sb.summary.max(), "stat {k} max");
            let (ma, mb) = (sa.summary.mean(), sb.summary.mean());
            assert!((ma - mb).abs() <= 1e-9 * (1.0 + ma.abs()), "stat {k} mean {ma} vs {mb}");
            let (va, vb) = (sa.summary.variance(), sb.summary.variance());
            assert!((va - vb).abs() <= 1e-6 * (1.0 + va.abs()), "stat {k} var {va} vs {vb}");
            assert_eq!(sa.hist, sb.hist, "stat {k} histogram");
        }
    }

    proptest! {
        /// a ⊕ b == b ⊕ a: merging is order-insensitive.
        #[test]
        fn merge_is_commutative(a in snapshot_strategy(), b in snapshot_strategy()) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_equivalent(&ab, &ba);
        }

        /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): any merge tree yields one result.
        #[test]
        fn merge_is_associative(
            a in snapshot_strategy(),
            b in snapshot_strategy(),
            c in snapshot_strategy(),
        ) {
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_equivalent(&left, &right);
        }

        /// The empty snapshot is the merge identity.
        #[test]
        fn empty_is_identity(a in snapshot_strategy()) {
            let mut with_empty = a.clone();
            with_empty.merge(&Snapshot::default());
            assert_equivalent(&with_empty, &a);
            let mut from_empty = Snapshot::default();
            from_empty.merge(&a);
            assert_equivalent(&from_empty, &a);
        }
    }
}
