//! Snapshot sinks: where flushed telemetry goes.
//!
//! Sinks receive the *cumulative* snapshot at every flush. File sinks are
//! best-effort: I/O errors after a successful open are counted, not raised,
//! so a full disk can never take down a live streaming session.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use pels_netsim::stats::{to_csv, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::snapshot::Snapshot;

/// A destination for flushed snapshots.
pub trait Sink: Send {
    /// Receives the cumulative snapshot as of time `t` (seconds).
    fn emit(&mut self, t: f64, snap: &Snapshot);
}

/// One line of a JSON-lines telemetry stream: the flush time plus the
/// cumulative snapshot at that time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotLine {
    /// Flush time in seconds (sim time or wall-clock run time).
    pub t: f64,
    /// Cumulative snapshot at `t`.
    pub snapshot: Snapshot,
}

/// Parses a JSON-lines telemetry stream (blank lines ignored).
pub fn parse_snapshot_lines(text: &str) -> Result<Vec<SnapshotLine>, serde::Error> {
    text.lines().map(str::trim).filter(|l| !l.is_empty()).map(serde_json::from_str).collect()
}

/// Appends one JSON object per flush to a file — the `--telemetry <path>`
/// format. Each line is a self-contained [`SnapshotLine`].
pub struct JsonLinesSink {
    w: BufWriter<File>,
    /// Flushes that failed to serialize or write.
    errors: u64,
}

impl JsonLinesSink {
    /// Creates (truncates) the output file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonLinesSink { w: BufWriter::new(File::create(path)?), errors: 0 })
    }

    /// Flushes that failed to serialize or write.
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

impl Sink for JsonLinesSink {
    fn emit(&mut self, t: f64, snap: &Snapshot) {
        let line = SnapshotLine { t, snapshot: snap.clone() };
        match serde_json::to_string(&line) {
            Ok(json) => {
                let ok = writeln!(self.w, "{json}").is_ok() && self.w.flush().is_ok();
                if !ok {
                    self.errors += 1;
                }
            }
            Err(_) => self.errors += 1,
        }
    }
}

/// Rewrites a CSV file from the snapshot's time series on every flush,
/// reusing [`pels_netsim::stats::to_csv`] so rows merge on sample time.
/// Because snapshots are cumulative, the last write always holds the whole
/// run.
pub struct CsvSink {
    path: std::path::PathBuf,
    /// Flushes that failed to write.
    errors: u64,
}

impl CsvSink {
    /// Creates a sink writing to `path` (file is created on first flush).
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        CsvSink { path: path.into(), errors: 0 }
    }

    /// Flushes that failed to write.
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

impl Sink for CsvSink {
    fn emit(&mut self, _t: f64, snap: &Snapshot) {
        let series: Vec<TimeSeries> = snap
            .series
            .iter()
            .map(|(name, pts)| TimeSeries { name: name.clone(), points: pts.clone() })
            .collect();
        let refs: Vec<&TimeSeries> = series.iter().collect();
        if std::fs::write(&self.path, to_csv(&refs)).is_err() {
            self.errors += 1;
        }
    }
}

/// Retains every flushed snapshot in memory; clone the sink to keep a
/// reading handle after attaching it.
#[derive(Clone, Default)]
pub struct MemorySink {
    store: Arc<Mutex<Vec<(f64, Snapshot)>>>,
}

impl MemorySink {
    /// Creates an empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All `(t, snapshot)` pairs flushed so far.
    pub fn snapshots(&self) -> Vec<(f64, Snapshot)> {
        self.store.lock().map(|g| g.clone()).unwrap_or_default()
    }

    /// The most recent flushed snapshot, if any.
    pub fn last(&self) -> Option<(f64, Snapshot)> {
        self.store.lock().ok().and_then(|g| g.last().cloned())
    }
}

impl Sink for MemorySink {
    fn emit(&mut self, t: f64, snap: &Snapshot) {
        if let Ok(mut g) = self.store.lock() {
            g.push((t, snap.clone()));
        }
    }
}
