//! Measurement helpers: time series, running summaries, and delay recorders.

use crate::hist::Histogram;
use serde::{Deserialize, Serialize};

/// A `(time, value)` series sampled during a simulation run.
///
/// # Examples
///
/// ```
/// use pels_netsim::stats::TimeSeries;
///
/// let mut s = TimeSeries::new("rate");
/// s.push(0.0, 128.0);
/// s.push(1.0, 256.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.last_value(), Some(256.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Series name (used as a CSV column header).
    pub name: String,
    /// `(time seconds, value)` samples in push order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries { name: name.into(), points: Vec::new() }
    }

    /// Appends a sample.
    pub fn push(&mut self, t: f64, v: f64) {
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last sampled value.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of the values sampled at `t >= from`.
    pub fn mean_after(&self, from: f64) -> Option<f64> {
        let vals: Vec<f64> =
            self.points.iter().filter(|&&(t, _)| t >= from).map(|&(_, v)| v).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Minimum and maximum value over samples at `t >= from`.
    pub fn min_max_after(&self, from: f64) -> Option<(f64, f64)> {
        let mut it = self.points.iter().filter(|&&(t, _)| t >= from).map(|&(_, v)| v);
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))))
    }

    /// Iterates over the `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, f64)> {
        self.points.iter()
    }
}

/// Streaming summary statistics (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use pels_netsim::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] { s.record(v); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// assert_eq!(Summary::new().min(), None);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty (the internal `+inf`
    /// sentinel must never leak into reports or CSV output).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-class delay statistics (classes 0..=3), plus a time series of
/// individual delays for plotting.
#[derive(Debug, Clone, Default)]
pub struct DelayRecorder {
    /// Aggregate per class.
    pub by_class: [Summary; 4],
    /// Log-bucket histograms per class (for quantiles).
    pub hist_by_class: [Option<Histogram>; 4],
    /// Raw `(arrival time s, delay s)` samples per class, for figures.
    pub series: [TimeSeries; 4],
    /// Whether raw samples are kept (aggregates always are).
    pub keep_series: bool,
}

impl DelayRecorder {
    /// Creates a recorder; `keep_series` retains raw samples for plotting.
    pub fn new(keep_series: bool) -> Self {
        DelayRecorder {
            by_class: Default::default(),
            hist_by_class: [
                Some(Histogram::for_delays()),
                Some(Histogram::for_delays()),
                Some(Histogram::for_delays()),
                Some(Histogram::for_delays()),
            ],
            series: [
                TimeSeries::new("class0"),
                TimeSeries::new("class1"),
                TimeSeries::new("class2"),
                TimeSeries::new("class3"),
            ],
            keep_series,
        }
    }

    /// Records a one-way delay observation for `class` at time `now_s`.
    pub fn record(&mut self, class: u8, now_s: f64, delay_s: f64) {
        let c = class.min(3) as usize;
        self.by_class[c].record(delay_s);
        if let Some(h) = &mut self.hist_by_class[c] {
            h.record(delay_s);
        }
        if self.keep_series {
            self.series[c].push(now_s, delay_s);
        }
    }

    /// Delay quantile `q` for `class`, when any samples exist.
    pub fn quantile(&self, class: u8, q: f64) -> Option<f64> {
        self.hist_by_class[class.min(3) as usize].as_ref().and_then(|h| h.quantile(q))
    }
}

/// Writes series as CSV text: `t,<name1>,<name2>,...` with rows merged on
/// sample time, so series sampled at different cadences stay aligned on a
/// single shared time column. Cells are blank where a series has no sample
/// at that time. Duplicate timestamps within one series are preserved: each
/// row consumes at most one sample per series, so a time recorded twice
/// yields two rows (pairing with other series' duplicates in push order).
pub fn to_csv(series: &[&TimeSeries]) -> String {
    let mut out = String::new();
    out.push('t');
    for s in series {
        out.push(',');
        out.push_str(&s.name);
    }
    out.push('\n');
    // Sort each series by time (stable, so same-time samples keep push
    // order), then k-way merge: every row takes the smallest pending time
    // and the head sample of each series stamped with exactly that time.
    let streams: Vec<Vec<(f64, f64)>> = series
        .iter()
        .map(|s| {
            let mut pts = s.points.clone();
            pts.sort_by(|a, b| a.0.total_cmp(&b.0));
            pts
        })
        .collect();
    let mut cursors = vec![0usize; streams.len()];
    loop {
        let next = streams
            .iter()
            .zip(&cursors)
            .filter_map(|(pts, &i)| pts.get(i).map(|&(t, _)| t))
            .min_by(f64::total_cmp);
        let Some(row_t) = next else { break };
        out.push_str(&format!("{row_t:.6}"));
        for (pts, cur) in streams.iter().zip(cursors.iter_mut()) {
            match pts.get(*cur) {
                Some(&(t, v)) if t.total_cmp(&row_t).is_eq() => {
                    out.push_str(&format!(",{v:.6}"));
                    *cur += 1;
                }
                _ => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_has_no_extrema() {
        let s = Summary::new();
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_equals_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &v in &data {
            whole.record(v);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &v in &data[..37] {
            a.record(v);
        }
        for &v in &data[37..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn timeseries_queries() {
        let mut s = TimeSeries::new("x");
        for i in 0..10 {
            s.push(i as f64, (i * i) as f64);
        }
        assert_eq!(s.mean_after(8.0), Some((64.0 + 81.0) / 2.0));
        assert_eq!(s.min_max_after(5.0), Some((25.0, 81.0)));
        assert_eq!(s.mean_after(100.0), None);
    }

    #[test]
    fn delay_recorder_aggregates_and_series() {
        let mut r = DelayRecorder::new(true);
        r.record(0, 1.0, 0.016);
        r.record(0, 2.0, 0.018);
        r.record(2, 1.5, 0.4);
        assert_eq!(r.by_class[0].count(), 2);
        assert!((r.by_class[0].mean() - 0.017).abs() < 1e-12);
        assert_eq!(r.series[2].len(), 1);
        // Class out of range folds into 3.
        r.record(200, 0.0, 0.1);
        assert_eq!(r.by_class[3].count(), 1);
    }

    #[test]
    fn csv_output_shape() {
        let mut a = TimeSeries::new("a");
        a.push(0.0, 1.0);
        a.push(1.0, 2.0);
        let mut b = TimeSeries::new("b");
        b.push(0.5, 9.0);
        let csv = to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + one row per distinct time
        assert_eq!(lines[0], "t,a,b");
        assert_eq!(lines[1], "0.000000,1.000000,");
        assert_eq!(lines[2], "0.500000,,9.000000");
        assert_eq!(lines[3], "1.000000,2.000000,");
    }

    #[test]
    fn csv_merges_unequal_cadences_on_time() {
        // One series every second, one every 0.4 s: every row's time column
        // must be the actual sample time of each value on that row.
        let mut slow = TimeSeries::new("slow");
        let mut fast = TimeSeries::new("fast");
        for i in 0..3 {
            slow.push(i as f64, 10.0 + i as f64);
        }
        for i in 0..5 {
            fast.push(i as f64 * 0.4, i as f64);
        }
        let csv = to_csv(&[&slow, &fast]);
        let lines: Vec<&str> = csv.lines().collect();
        // Times: 0 (both), 0.4, 0.8, 1.2, 1.6 (fast), 1, 2 (slow) = 7 rows.
        assert_eq!(lines.len(), 8);
        let mut prev_t = f64::NEG_INFINITY;
        for line in &lines[1..] {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells.len(), 3);
            let t: f64 = cells[0].parse().unwrap();
            assert!(t >= prev_t, "time column must be non-decreasing");
            prev_t = t;
        }
        assert_eq!(lines[1], "0.000000,10.000000,0.000000");
        assert_eq!(lines[2], "0.400000,,1.000000");
        assert_eq!(lines[4], "1.000000,11.000000,");
    }

    #[test]
    fn csv_preserves_duplicate_timestamps() {
        let mut s = TimeSeries::new("d");
        s.push(1.0, 5.0);
        s.push(1.0, 6.0);
        let csv = to_csv(&[&s]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "same-time samples must each get a row");
        assert_eq!(lines[1], "1.000000,5.000000");
        assert_eq!(lines[2], "1.000000,6.000000");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Merging summaries in any split is equivalent to one stream.
        #[test]
        fn merge_invariance(data in proptest::collection::vec(-1e6f64..1e6, 2..200), split in 0usize..200) {
            let split = split % data.len();
            let mut whole = Summary::new();
            for &v in &data { whole.record(v); }
            let mut a = Summary::new();
            let mut b = Summary::new();
            for &v in &data[..split] { a.record(v); }
            for &v in &data[split..] { b.record(v); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!((a.min().unwrap() - whole.min().unwrap()).abs() < 1e-12);
            prop_assert!((a.max().unwrap() - whole.max().unwrap()).abs() < 1e-12);
        }
    }
}
