//! Measurement helpers: time series, running summaries, and delay recorders.

use crate::hist::Histogram;
use serde::{Deserialize, Serialize};

/// A `(time, value)` series sampled during a simulation run.
///
/// # Examples
///
/// ```
/// use pels_netsim::stats::TimeSeries;
///
/// let mut s = TimeSeries::new("rate");
/// s.push(0.0, 128.0);
/// s.push(1.0, 256.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.last_value(), Some(256.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Series name (used as a CSV column header).
    pub name: String,
    /// `(time seconds, value)` samples in push order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries { name: name.into(), points: Vec::new() }
    }

    /// Appends a sample.
    pub fn push(&mut self, t: f64, v: f64) {
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last sampled value.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of the values sampled at `t >= from`.
    pub fn mean_after(&self, from: f64) -> Option<f64> {
        let vals: Vec<f64> =
            self.points.iter().filter(|&&(t, _)| t >= from).map(|&(_, v)| v).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Minimum and maximum value over samples at `t >= from`.
    pub fn min_max_after(&self, from: f64) -> Option<(f64, f64)> {
        let mut it = self.points.iter().filter(|&&(t, _)| t >= from).map(|&(_, v)| v);
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))))
    }

    /// Iterates over the `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, f64)> {
        self.points.iter()
    }
}

/// Streaming summary statistics (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use pels_netsim::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] { s.record(v); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-class delay statistics (classes 0..=3), plus a time series of
/// individual delays for plotting.
#[derive(Debug, Clone, Default)]
pub struct DelayRecorder {
    /// Aggregate per class.
    pub by_class: [Summary; 4],
    /// Log-bucket histograms per class (for quantiles).
    pub hist_by_class: [Option<Histogram>; 4],
    /// Raw `(arrival time s, delay s)` samples per class, for figures.
    pub series: [TimeSeries; 4],
    /// Whether raw samples are kept (aggregates always are).
    pub keep_series: bool,
}

impl DelayRecorder {
    /// Creates a recorder; `keep_series` retains raw samples for plotting.
    pub fn new(keep_series: bool) -> Self {
        DelayRecorder {
            by_class: Default::default(),
            hist_by_class: [
                Some(Histogram::for_delays()),
                Some(Histogram::for_delays()),
                Some(Histogram::for_delays()),
                Some(Histogram::for_delays()),
            ],
            series: [
                TimeSeries::new("class0"),
                TimeSeries::new("class1"),
                TimeSeries::new("class2"),
                TimeSeries::new("class3"),
            ],
            keep_series,
        }
    }

    /// Records a one-way delay observation for `class` at time `now_s`.
    pub fn record(&mut self, class: u8, now_s: f64, delay_s: f64) {
        let c = class.min(3) as usize;
        self.by_class[c].record(delay_s);
        if let Some(h) = &mut self.hist_by_class[c] {
            h.record(delay_s);
        }
        if self.keep_series {
            self.series[c].push(now_s, delay_s);
        }
    }

    /// Delay quantile `q` for `class`, when any samples exist.
    pub fn quantile(&self, class: u8, q: f64) -> Option<f64> {
        self.hist_by_class[class.min(3) as usize].as_ref().and_then(|h| h.quantile(q))
    }
}

/// Writes series as CSV text: `time,<name1>,<name2>,...` with one row per
/// sample index (series are written column-aligned by index, padding short
/// series with blanks).
pub fn to_csv(series: &[&TimeSeries]) -> String {
    let mut out = String::new();
    out.push_str("idx");
    for s in series {
        out.push_str(&format!(",{}_t,{}_v", s.name, s.name));
    }
    out.push('\n');
    let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        out.push_str(&i.to_string());
        for s in series {
            match s.points.get(i) {
                Some((t, v)) => out.push_str(&format!(",{t:.6},{v:.6}")),
                None => out.push_str(",,"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &v in &data {
            whole.record(v);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &v in &data[..37] {
            a.record(v);
        }
        for &v in &data[37..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn timeseries_queries() {
        let mut s = TimeSeries::new("x");
        for i in 0..10 {
            s.push(i as f64, (i * i) as f64);
        }
        assert_eq!(s.mean_after(8.0), Some((64.0 + 81.0) / 2.0));
        assert_eq!(s.min_max_after(5.0), Some((25.0, 81.0)));
        assert_eq!(s.mean_after(100.0), None);
    }

    #[test]
    fn delay_recorder_aggregates_and_series() {
        let mut r = DelayRecorder::new(true);
        r.record(0, 1.0, 0.016);
        r.record(0, 2.0, 0.018);
        r.record(2, 1.5, 0.4);
        assert_eq!(r.by_class[0].count(), 2);
        assert!((r.by_class[0].mean() - 0.017).abs() < 1e-12);
        assert_eq!(r.series[2].len(), 1);
        // Class out of range folds into 3.
        r.record(200, 0.0, 0.1);
        assert_eq!(r.by_class[3].count(), 1);
    }

    #[test]
    fn csv_output_shape() {
        let mut a = TimeSeries::new("a");
        a.push(0.0, 1.0);
        a.push(1.0, 2.0);
        let mut b = TimeSeries::new("b");
        b.push(0.5, 9.0);
        let csv = to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 rows
        assert!(lines[0].starts_with("idx,a_t,a_v,b_t,b_v"));
        assert!(lines[2].ends_with(",,"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Merging summaries in any split is equivalent to one stream.
        #[test]
        fn merge_invariance(data in proptest::collection::vec(-1e6f64..1e6, 2..200), split in 0usize..200) {
            let split = split % data.len();
            let mut whole = Summary::new();
            for &v in &data { whole.record(v); }
            let mut a = Summary::new();
            let mut b = Summary::new();
            for &v in &data[..split] { a.record(v); }
            for &v in &data[split..] { b.record(v); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!((a.min() - whole.min()).abs() < 1e-12);
            prop_assert!((a.max() - whole.max()).abs() < 1e-12);
        }
    }
}
