//! A deterministic multiplicative hasher for small integer keys.
//!
//! The per-packet maps on the hot path (route tables, TCP `sent_times`,
//! retransmission buffers) key on `u32`/`u64` ids. `std`'s default SipHash
//! showed up at ~8% of event-loop CPU in profiles, and its per-process
//! random seed buys nothing here: none of these maps is ever iterated, so
//! bucket order cannot leak into simulation results.
//!
//! [`FastHasher`] is a fixed-seed Fibonacci-style mixer: one `wrapping_mul`
//! by an odd 64-bit constant plus an xor-fold so both the low bucket bits
//! and the high control bits of hashbrown get avalanche. It is NOT
//! collision-resistant against adversarial keys — use it only for maps
//! whose keys the simulation itself allocates (agent ids, sequence
//! numbers), never for external input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / φ, the usual Fibonacci hashing multiplier (odd, high entropy).
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fixed-seed hasher for simulation-allocated integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Multiply pushes entropy toward the high bits; fold it back down
        // so hashbrown's low-bit bucket index sees it too.
        let h = self.0.wrapping_mul(K);
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Derive-generated Hash impls for integer newtypes call the typed
        // writers below; this byte path only runs for compound keys.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(K);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(K).rotate_left(26);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]; zero-sized, fixed seed.
pub type BuildFastHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by simulation-allocated integers.
pub type FastMap<K, V> = HashMap<K, V, BuildFastHasher>;

/// A `HashSet` of simulation-allocated integers.
pub type FastSet<T> = HashSet<T, BuildFastHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_spread_across_buckets() {
        // Sequential u32 ids must not collide in the low bits hashbrown
        // uses for bucket selection.
        let mut low_bits = FastSet::default();
        for id in 0u32..4096 {
            let mut h = FastHasher::default();
            h.write_u32(id);
            low_bits.insert(h.finish() & 0xFFF);
        }
        // Perfect spread would be 4096; anything above ~2500 means no
        // pathological clustering for dense id ranges.
        assert!(low_bits.len() > 2500, "low-bit spread {}", low_bits.len());
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        let h = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(7, "seven");
        m.insert(1 << 40, "big");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&(1 << 40)), Some(&"big"));
        assert_eq!(m.remove(&7), Some("seven"));
        assert!(!m.contains_key(&7));
    }
}
