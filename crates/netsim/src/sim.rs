//! The simulation engine: the [`Agent`] trait, the dispatch [`Context`], and
//! the [`Simulator`] event loop.
//!
//! Agents (hosts, routers, sinks) are owned by the simulator in a slab and
//! addressed by [`AgentId`]. The event loop pops the earliest event, moves
//! the target agent out of the slab, and invokes its handler with a
//! [`Context`] that can schedule further events — no interior mutability, no
//! unsafe, fully deterministic.

use crate::event::{Event, EventQueue};
use crate::journal::Journal;
use crate::packet::{AgentId, Packet, PacketId};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;

/// A simulation participant.
///
/// Implementors also provide `as_any`/`as_any_mut` so that scenario code can
/// recover the concrete type (and its collected statistics) after a run via
/// [`Simulator::agent`] / [`Simulator::agent_mut`].
pub trait Agent: Any {
    /// Called once at simulation start (time zero), in registration order.
    fn start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called when a packet arrives at this agent.
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>);

    /// Called when a timer scheduled with [`Context::schedule_timer`] fires.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_>) {}

    /// Called when output port `port` finishes serializing a packet.
    fn on_tx_complete(&mut self, _port: usize, _ctx: &mut Context<'_>) {}

    /// Upcast for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Upcast for post-run inspection (mutable).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Handle given to agent callbacks for interacting with the simulator.
#[derive(Debug)]
pub struct Context<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Id of the agent being dispatched.
    pub self_id: AgentId,
    queue: &'a mut EventQueue,
    rng: &'a mut StdRng,
    next_packet_id: &'a mut u64,
}

impl Context<'_> {
    /// Schedules a timer for the current agent, `delay` from now.
    pub fn schedule_timer(&mut self, delay: SimDuration, token: u64) {
        self.queue.schedule(
            self.now + delay,
            Event::Timer { agent: self.self_id, token },
        );
    }

    /// Delivers `packet` to `dst` after `delay` (propagation is modelled by
    /// the caller; ports use this internally).
    pub fn deliver(&mut self, dst: AgentId, delay: SimDuration, packet: Packet) {
        self.queue
            .schedule(self.now + delay, Event::PacketArrival { dst, packet });
    }

    /// Schedules a transmit-complete callback for port `port` of the current
    /// agent, `delay` from now. Used by [`crate::port::Port`].
    pub fn schedule_tx_complete(&mut self, port: usize, delay: SimDuration) {
        self.queue.schedule(
            self.now + delay,
            Event::TxComplete { agent: self.self_id, port },
        );
    }

    /// Allocates a fresh globally-unique packet id.
    pub fn alloc_packet_id(&mut self) -> PacketId {
        *self.next_packet_id += 1;
        PacketId(*self.next_packet_id)
    }

    /// The simulation-wide deterministic random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// The discrete-event simulator.
///
/// # Examples
///
/// ```
/// use pels_netsim::sim::{Agent, Context, Simulator};
/// use pels_netsim::packet::Packet;
/// use pels_netsim::time::{SimDuration, SimTime};
/// use std::any::Any;
///
/// struct Ticker { ticks: u32 }
/// impl Agent for Ticker {
///     fn start(&mut self, ctx: &mut Context<'_>) {
///         ctx.schedule_timer(SimDuration::from_millis(10), 0);
///     }
///     fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
///     fn on_timer(&mut self, _tok: u64, ctx: &mut Context<'_>) {
///         self.ticks += 1;
///         ctx.schedule_timer(SimDuration::from_millis(10), 0);
///     }
///     fn as_any(&self) -> &dyn Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn Any { self }
/// }
///
/// let mut sim = Simulator::new(42);
/// let id = sim.add_agent(Box::new(Ticker { ticks: 0 }));
/// sim.run_until(SimTime::from_secs_f64(0.1));
/// assert_eq!(sim.agent::<Ticker>(id).ticks, 10);
/// ```
#[derive(Debug)]
pub struct Simulator {
    now: SimTime,
    queue: EventQueue,
    agents: Vec<Option<Box<dyn Agent>>>,
    rng: StdRng,
    next_packet_id: u64,
    started: bool,
    events_processed: u64,
    journal: Option<Journal>,
}

impl std::fmt::Debug for dyn Agent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<agent>")
    }
}

impl Simulator {
    /// Creates a simulator with a deterministic RNG seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            agents: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            next_packet_id: 0,
            started: false,
            events_processed: 0,
            journal: None,
        }
    }

    /// Enables the event journal, keeping the most recent `capacity`
    /// dispatches. Call before (or during) a run; recording starts
    /// immediately.
    pub fn enable_journal(&mut self, capacity: usize) {
        self.journal = Some(Journal::new(capacity));
    }

    /// The event journal, if enabled.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Registers an agent and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        assert!(!self.started, "cannot add agents after the simulation started");
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(Some(agent));
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to a registered agent, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the agent is not a `T`.
    pub fn agent<T: Agent>(&self, id: AgentId) -> &T {
        self.agents[id.0 as usize]
            .as_ref()
            .expect("agent is currently being dispatched")
            .as_any()
            .downcast_ref::<T>()
            .expect("agent type mismatch")
    }

    /// Mutable access to a registered agent, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the agent is not a `T`.
    pub fn agent_mut<T: Agent>(&mut self, id: AgentId) -> &mut T {
        self.agents[id.0 as usize]
            .as_mut()
            .expect("agent is currently being dispatched")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("agent type mismatch")
    }

    fn start_agents(&mut self) {
        self.started = true;
        for i in 0..self.agents.len() {
            let mut agent = self.agents[i].take().expect("agent present at start");
            let mut ctx = Context {
                now: self.now,
                self_id: AgentId(i as u32),
                queue: &mut self.queue,
                rng: &mut self.rng,
                next_packet_id: &mut self.next_packet_id,
            };
            agent.start(&mut ctx);
            self.agents[i] = Some(agent);
        }
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        if !self.started {
            self.start_agents();
        }
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "time must be monotone");
        self.now = time;
        self.events_processed += 1;
        if let Some(journal) = &mut self.journal {
            journal.record(time, &event);
        }
        let target = event.target();
        let idx = target.0 as usize;
        let mut agent = self.agents[idx]
            .take()
            .unwrap_or_else(|| panic!("event addressed to unknown or re-entrant {target}"));
        let mut ctx = Context {
            now: self.now,
            self_id: target,
            queue: &mut self.queue,
            rng: &mut self.rng,
            next_packet_id: &mut self.next_packet_id,
        };
        match event {
            Event::PacketArrival { packet, .. } => agent.on_packet(packet, &mut ctx),
            Event::TxComplete { port, .. } => agent.on_tx_complete(port, &mut ctx),
            Event::Timer { token, .. } => agent.on_timer(token, &mut ctx),
        }
        self.agents[idx] = Some(agent);
        true
    }

    /// Runs until simulated time reaches `deadline` (events at exactly
    /// `deadline` are processed) or the event queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        if !self.started {
            self.start_agents();
        }
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of simulated time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketKind};

    /// Sends one packet to a peer at start; the peer echoes it back.
    struct Echo {
        peer: Option<AgentId>,
        got: Vec<(SimTime, PacketKind)>,
    }

    impl Agent for Echo {
        fn start(&mut self, ctx: &mut Context<'_>) {
            if let Some(peer) = self.peer {
                let id = ctx.alloc_packet_id();
                let pkt =
                    Packet::data(FlowId(0), ctx.self_id, peer, 500).with_id(id);
                ctx.deliver(peer, SimDuration::from_millis(5), pkt);
            }
        }
        fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
            self.got.push((ctx.now, packet.kind));
            if packet.kind == PacketKind::Data {
                let ack = Packet::ack_for(&packet, 40).with_id(ctx.alloc_packet_id());
                ctx.deliver(ack.dst, SimDuration::from_millis(5), ack);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn round_trip_delivery() {
        let mut sim = Simulator::new(1);
        let b_id = AgentId(1);
        let a = sim.add_agent(Box::new(Echo { peer: Some(b_id), got: vec![] }));
        let b = sim.add_agent(Box::new(Echo { peer: None, got: vec![] }));
        assert_eq!(b, b_id);
        sim.run_until(SimTime::from_secs_f64(1.0));

        let bv = &sim.agent::<Echo>(b).got;
        assert_eq!(bv.len(), 1);
        assert_eq!(bv[0].0, SimTime::from_secs_f64(0.005));
        assert_eq!(bv[0].1, PacketKind::Data);

        let av = &sim.agent::<Echo>(a).got;
        assert_eq!(av.len(), 1);
        assert_eq!(av[0].0, SimTime::from_secs_f64(0.010));
        assert_eq!(av[0].1, PacketKind::Ack);
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut sim = Simulator::new(1);
        sim.run_until(SimTime::from_secs_f64(2.0));
        assert_eq!(sim.now(), SimTime::from_secs_f64(2.0));
    }

    #[test]
    fn packet_ids_are_unique_and_monotone() {
        let mut sim = Simulator::new(1);
        let b = AgentId(1);
        sim.add_agent(Box::new(Echo { peer: Some(b), got: vec![] }));
        sim.add_agent(Box::new(Echo { peer: Some(AgentId(0)), got: vec![] }));
        sim.run_until(SimTime::from_secs_f64(1.0));
        // 2 data + 2 acks = 4 ids allocated.
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    #[should_panic(expected = "after the simulation started")]
    fn adding_agents_after_start_panics() {
        let mut sim = Simulator::new(1);
        sim.add_agent(Box::new(Echo { peer: None, got: vec![] }));
        sim.step();
        sim.add_agent(Box::new(Echo { peer: None, got: vec![] }));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        fn run() -> Vec<(SimTime, PacketKind)> {
            let mut sim = Simulator::new(99);
            let b = AgentId(1);
            let a = sim.add_agent(Box::new(Echo { peer: Some(b), got: vec![] }));
            sim.add_agent(Box::new(Echo { peer: Some(AgentId(0)), got: vec![] }));
            sim.run_until(SimTime::from_secs_f64(1.0));
            sim.agent::<Echo>(a).got.clone()
        }
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod journal_tests {
    use super::*;
    use crate::journal::EntryKind;
    use crate::packet::{FlowId, PacketKind};
    use crate::time::SimDuration;
    use std::any::Any;

    struct Ping {
        peer: Option<AgentId>,
    }
    impl Agent for Ping {
        fn start(&mut self, ctx: &mut Context<'_>) {
            if let Some(peer) = self.peer {
                let pkt = Packet::data(FlowId(3), ctx.self_id, peer, 500)
                    .with_id(ctx.alloc_packet_id());
                ctx.deliver(peer, SimDuration::from_millis(1), pkt);
                ctx.schedule_timer(SimDuration::from_millis(2), 9);
            }
        }
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            if p.kind == PacketKind::Data {
                let ack = Packet::ack_for(&p, 40).with_id(ctx.alloc_packet_id());
                ctx.deliver(ack.dst, SimDuration::from_millis(1), ack);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn journal_records_all_dispatches() {
        let mut sim = Simulator::new(1);
        sim.enable_journal(100);
        let b = AgentId(1);
        sim.add_agent(Box::new(Ping { peer: Some(b) }));
        sim.add_agent(Box::new(Ping { peer: None }));
        sim.run_until(SimTime::from_secs_f64(1.0));

        let j = sim.journal().expect("enabled");
        // data arrival + ack arrival + timer = 3 events.
        assert_eq!(j.total_recorded, sim.events_processed());
        assert_eq!(j.len(), 3);
        let kinds: Vec<bool> = j
            .iter()
            .map(|e| matches!(e.kind, EntryKind::PacketArrival { .. }))
            .collect();
        assert_eq!(kinds.iter().filter(|&&k| k).count(), 2);
        assert_eq!(j.for_flow(FlowId(3)).len(), 2);
    }

    #[test]
    fn journal_disabled_by_default() {
        let sim = Simulator::new(1);
        assert!(sim.journal().is_none());
    }
}
