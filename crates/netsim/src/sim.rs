//! The simulation engine: the [`Agent`] trait, the dispatch [`Context`], and
//! the [`Simulator`] event loop.
//!
//! Agents (hosts, routers, sinks) are owned by the simulator in a slab and
//! addressed by [`AgentId`]. The event loop pops the earliest event, moves
//! the target agent out of the slab, and invokes its handler with a
//! [`Context`] that can schedule further events — no interior mutability, no
//! unsafe, fully deterministic.

use crate::error::SimError;
use crate::event::{Ev, Event, EventQueue, PacketSlot};
use crate::faults::{ControlFaultPolicy, FaultAction, FaultSchedule, FaultStats};
use crate::journal::Journal;
use crate::packet::{AgentId, Packet, PacketId, PacketKind};
use crate::shard::{CrossEvent, ShardMap};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::sync::Arc;

/// A simulation participant.
///
/// Implementors also provide `as_any`/`as_any_mut` so that scenario code can
/// recover the concrete type (and its collected statistics) after a run via
/// [`Simulator::agent`] / [`Simulator::agent_mut`]. Agents are `Send` so a
/// [`crate::shard::ShardedSimulator`] can drive shards on worker threads;
/// every agent is plain owned data, so this costs nothing.
pub trait Agent: Any + Send {
    /// Called once at simulation start (time zero), in registration order.
    fn start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called when a packet arrives at this agent.
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>);

    /// Called when a timer scheduled with [`Context::schedule_timer`] fires.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_>) {}

    /// Called when output port `port` finishes serializing a packet.
    fn on_tx_complete(&mut self, _port: usize, _ctx: &mut Context<'_>) {}

    /// Called when a scripted fault targets this agent (see
    /// [`crate::faults`]). Port-owning agents typically forward to
    /// [`crate::faults::apply_port_fault`]; the default ignores faults, so
    /// agents without ports are unaffected.
    fn on_fault(&mut self, _action: &FaultAction, _ctx: &mut Context<'_>) {}

    /// Upcast for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Upcast for post-run inspection (mutable).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Per-shard routing state of a simulator running as one shard of a
/// [`crate::shard::ShardedSimulator`]. `None` (the default) keeps the
/// serial single-queue behavior bit-for-bit.
#[derive(Debug)]
pub(crate) struct ShardState {
    /// This shard's index.
    shard: u32,
    /// Global agent → (shard, local slot) map, shared read-only.
    map: Arc<ShardMap>,
    /// Global id of each local slab slot.
    globals: Vec<AgentId>,
    /// Cross-shard deliveries buffered until the next window barrier.
    outbox: Vec<CrossEvent>,
    /// Emission counter: part of the deterministic barrier merge key.
    out_seq: u64,
}

/// Handle given to agent callbacks for interacting with the simulator.
#[derive(Debug)]
pub struct Context<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Id of the agent being dispatched.
    pub self_id: AgentId,
    queue: &'a mut EventQueue,
    rng: &'a mut StdRng,
    next_packet_id: &'a mut u64,
    shard: Option<&'a mut ShardState>,
}

impl Context<'_> {
    /// Schedules a timer for the current agent, `delay` from now.
    pub fn schedule_timer(&mut self, delay: SimDuration, token: u64) {
        self.queue.schedule_ev(self.now + delay, Ev::Timer { agent: self.self_id, token });
    }

    /// Delivers `packet` to `dst` after `delay` (propagation is modelled by
    /// the caller; ports use this internally). In a sharded run a delivery
    /// to an agent owned by another shard is buffered in the outbox and
    /// exchanged at the next window barrier.
    pub fn deliver(&mut self, dst: AgentId, delay: SimDuration, packet: Packet) {
        let at = self.now + delay;
        if let Some(s) = &mut self.shard {
            let dst_shard = s.map.shard_of[dst.0 as usize];
            if dst_shard != s.shard {
                let seq = s.out_seq;
                s.out_seq += 1;
                s.outbox.push(CrossEvent {
                    time: at,
                    dst_shard,
                    src_shard: s.shard,
                    seq,
                    event: Event::PacketArrival { dst, packet },
                });
                return;
            }
        }
        let slot = self.queue.stash_packet(packet);
        self.queue.schedule_ev(at, Ev::Arrival { dst, slot });
    }

    /// Parks a packet payload in the event queue's arena, returning its
    /// slot. Ports use this so queue disciplines handle 16-byte
    /// [`crate::disc::QEntry`] descriptors instead of whole packets.
    pub fn stash(&mut self, packet: Packet) -> PacketSlot {
        self.queue.stash_packet(packet)
    }

    /// Drops the packet parked at `slot`, freeing the slot (a discipline
    /// drop or a queue flush).
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn release(&mut self, slot: PacketSlot) {
        let _ = self.queue.take_packet(slot);
    }

    /// The packet parked at `slot`, for inspection.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn packet(&self, slot: PacketSlot) -> &Packet {
        self.queue.packet(slot)
    }

    /// Delivers the packet parked at `slot` to `dst` after `delay`, without
    /// copying the payload: locally the slot rides through the event queue
    /// as-is; a cross-shard delivery takes the packet out of the arena into
    /// the outbox.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn deliver_slot(&mut self, dst: AgentId, delay: SimDuration, slot: PacketSlot) {
        let at = self.now + delay;
        if let Some(s) = &mut self.shard {
            let dst_shard = s.map.shard_of[dst.0 as usize];
            if dst_shard != s.shard {
                let packet = self.queue.take_packet(slot);
                let seq = s.out_seq;
                s.out_seq += 1;
                s.outbox.push(CrossEvent {
                    time: at,
                    dst_shard,
                    src_shard: s.shard,
                    seq,
                    event: Event::PacketArrival { dst, packet },
                });
                return;
            }
        }
        self.queue.schedule_ev(at, Ev::Arrival { dst, slot });
    }

    /// Schedules a transmit-complete callback for port `port` of the current
    /// agent, `delay` from now. Used by [`crate::port::Port`].
    pub fn schedule_tx_complete(&mut self, port: usize, delay: SimDuration) {
        let port = u32::try_from(port).expect("port index overflow");
        self.queue.schedule_ev(self.now + delay, Ev::Tx { agent: self.self_id, port });
    }

    /// Allocates a fresh globally-unique packet id.
    pub fn alloc_packet_id(&mut self) -> PacketId {
        *self.next_packet_id += 1;
        PacketId(*self.next_packet_id)
    }

    /// The simulation-wide deterministic random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// The discrete-event simulator.
///
/// # Examples
///
/// ```
/// use pels_netsim::sim::{Agent, Context, Simulator};
/// use pels_netsim::packet::Packet;
/// use pels_netsim::time::{SimDuration, SimTime};
/// use std::any::Any;
///
/// struct Ticker { ticks: u32 }
/// impl Agent for Ticker {
///     fn start(&mut self, ctx: &mut Context<'_>) {
///         ctx.schedule_timer(SimDuration::from_millis(10), 0);
///     }
///     fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
///     fn on_timer(&mut self, _tok: u64, ctx: &mut Context<'_>) {
///         self.ticks += 1;
///         ctx.schedule_timer(SimDuration::from_millis(10), 0);
///     }
///     fn as_any(&self) -> &dyn Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn Any { self }
/// }
///
/// let mut sim = Simulator::new(42);
/// let id = sim.add_agent(Box::new(Ticker { ticks: 0 }));
/// sim.run_until(SimTime::from_secs_f64(0.1));
/// assert_eq!(sim.agent::<Ticker>(id).ticks, 10);
/// ```
#[derive(Debug)]
pub struct Simulator {
    now: SimTime,
    queue: EventQueue,
    agents: Vec<Option<Box<dyn Agent>>>,
    rng: StdRng,
    next_packet_id: u64,
    started: bool,
    events_processed: u64,
    peak_queue_depth: usize,
    journal: Option<Journal>,
    control_policy: Option<ControlFaultPolicy>,
    fault_stats: FaultStats,
    shard: Option<ShardState>,
}

impl std::fmt::Debug for dyn Agent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<agent>")
    }
}

impl Simulator {
    /// Creates a simulator with a deterministic RNG seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            agents: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            next_packet_id: 0,
            started: false,
            events_processed: 0,
            peak_queue_depth: 0,
            journal: None,
            control_policy: None,
            fault_stats: FaultStats::default(),
            shard: None,
        }
    }

    /// Creates a simulator that runs as shard `shard` of a
    /// [`crate::shard::ShardedSimulator`]: deliveries to agents owned by
    /// other shards are buffered in an outbox instead of the local queue,
    /// and packet ids are allocated from the disjoint base `shard << 40`.
    pub(crate) fn new_shard(seed: u64, shard: u32, map: Arc<ShardMap>) -> Self {
        let mut sim = Simulator::new(seed);
        sim.next_packet_id = u64::from(shard) << 40;
        sim.shard =
            Some(ShardState { shard, map, globals: Vec::new(), outbox: Vec::new(), out_seq: 0 });
        sim
    }

    /// Registers an agent under its *global* id in a shard simulator.
    /// Agents must be added in ascending global-id order so local slots
    /// match the shard map.
    pub(crate) fn add_shard_agent(&mut self, global: AgentId, agent: Box<dyn Agent>) {
        let s = self.shard.as_mut().expect("add_shard_agent on a non-shard simulator");
        debug_assert_eq!(
            s.map.local_of[global.0 as usize] as usize,
            self.agents.len(),
            "shard agents must be added in ascending global-id order"
        );
        s.globals.push(global);
        self.agents.push(Some(agent));
    }

    /// Enables the event journal, keeping the most recent `capacity`
    /// dispatches. Call before (or during) a run; recording starts
    /// immediately.
    pub fn enable_journal(&mut self, capacity: usize) {
        self.journal = Some(Journal::new(capacity));
    }

    /// The event journal, if enabled.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Registers an agent and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        self.try_add_agent(agent).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Registers an agent and returns its id, or
    /// [`SimError::SimulationStarted`] if the simulation already started.
    pub fn try_add_agent(&mut self, agent: Box<dyn Agent>) -> Result<AgentId, SimError> {
        if self.started {
            return Err(SimError::SimulationStarted);
        }
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(Some(agent));
        Ok(id)
    }

    /// Schedules every fault in `schedule` into the event queue. Faults are
    /// ordinary events: they interleave deterministically with traffic and
    /// appear in the journal. Install before simulated time reaches the
    /// earliest fault (normally before the run starts).
    ///
    /// # Panics
    ///
    /// Panics if the schedule contains an invalid action (e.g. a control
    /// fault policy whose fractions exceed 1). Use
    /// [`Simulator::try_install_faults`] for a `Result` instead.
    pub fn install_faults(&mut self, schedule: &FaultSchedule) {
        self.try_install_faults(schedule).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`Simulator::install_faults`]: validates every
    /// action up front and returns [`SimError::InvalidConfig`] instead of
    /// panicking. Nothing is scheduled unless the whole schedule is valid,
    /// so a malformed schedule can never half-install.
    pub fn try_install_faults(&mut self, schedule: &FaultSchedule) -> Result<(), SimError> {
        for ev in schedule.events() {
            validate_fault_action(&ev.action)?;
        }
        for ev in schedule.events() {
            self.queue.schedule(ev.at, Event::Fault { agent: ev.agent, action: ev.action });
        }
        Ok(())
    }

    /// Schedules a single fault at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if the action is invalid; see
    /// [`Simulator::try_schedule_fault`].
    pub fn schedule_fault(&mut self, at: SimTime, agent: AgentId, action: FaultAction) {
        self.try_schedule_fault(at, agent, action).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`Simulator::schedule_fault`]: returns
    /// [`SimError::InvalidConfig`] for an invalid action instead of
    /// panicking (previously the invalid policy detonated mid-run, deep in
    /// the event loop).
    pub fn try_schedule_fault(
        &mut self,
        at: SimTime,
        agent: AgentId,
        action: FaultAction,
    ) -> Result<(), SimError> {
        validate_fault_action(&action)?;
        self.queue.schedule(at, Event::Fault { agent, action });
        Ok(())
    }

    /// Counters for applied faults and control-plane packet mangling.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// The control-packet fault policy currently in force, if any.
    pub fn control_policy(&self) -> Option<ControlFaultPolicy> {
        self.control_policy
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// High-water mark of the event queue over the run so far. A proxy for
    /// the working-set size of the engine; the scaling benchmark reports it
    /// per flow count.
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue_depth
    }

    /// Immutable access to a registered agent, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the agent is not a `T`.
    pub fn agent<T: Agent>(&self, id: AgentId) -> &T {
        self.try_agent(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Immutable access to a registered agent, downcast to its concrete
    /// type, as a `Result` instead of panicking.
    pub fn try_agent<T: Agent>(&self, id: AgentId) -> Result<&T, SimError> {
        self.agent_dyn(id)?
            .as_any()
            .downcast_ref::<T>()
            .ok_or(SimError::AgentTypeMismatch { agent: id, expected: std::any::type_name::<T>() })
    }

    /// Translates a (possibly global) agent id to this simulator's slab
    /// slot. Serial simulators use ids as slots directly; shard simulators
    /// consult the shard map and reject ids owned by other shards.
    fn local_slot(&self, id: AgentId) -> Result<usize, SimError> {
        match &self.shard {
            None => Ok(id.0 as usize),
            Some(s) => {
                let g = id.0 as usize;
                if s.map.shard_of.get(g).copied() == Some(s.shard) {
                    Ok(s.map.local_of[g] as usize)
                } else {
                    Err(SimError::UnknownAgent(id))
                }
            }
        }
    }

    /// Mutable access to a registered agent, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the agent is not a `T`.
    pub fn agent_mut<T: Agent>(&mut self, id: AgentId) -> &mut T {
        self.try_agent_mut(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Mutable access to a registered agent, downcast to its concrete type,
    /// as a `Result` instead of panicking.
    pub fn try_agent_mut<T: Agent>(&mut self, id: AgentId) -> Result<&mut T, SimError> {
        let idx = self.local_slot(id)?;
        let slot = self.agents.get_mut(idx).ok_or(SimError::UnknownAgent(id))?;
        slot.as_mut()
            .ok_or(SimError::AgentBusy(id))?
            .as_any_mut()
            .downcast_mut::<T>()
            .ok_or(SimError::AgentTypeMismatch { agent: id, expected: std::any::type_name::<T>() })
    }

    fn start_agents(&mut self) {
        self.started = true;
        for i in 0..self.agents.len() {
            let mut agent = self.agents[i].take().expect("agent present at start");
            let self_id = match &self.shard {
                None => AgentId(i as u32),
                Some(s) => s.globals[i],
            };
            let mut ctx = Context {
                now: self.now,
                self_id,
                queue: &mut self.queue,
                rng: &mut self.rng,
                next_packet_id: &mut self.next_packet_id,
                shard: self.shard.as_mut(),
            };
            agent.start(&mut ctx);
            self.agents[i] = Some(agent);
        }
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.step_bounded(None)
    }

    /// Pops and dispatches one event, optionally bounded by `(end,
    /// inclusive)`: with a bound, events past the fence stay queued and the
    /// call returns `false`. The single code path behind [`Simulator::step`],
    /// [`Simulator::run_until`] and the windowed sharded executor.
    fn step_bounded(&mut self, bound: Option<(SimTime, bool)>) -> bool {
        if !self.started {
            self.start_agents();
        }
        let popped = match bound {
            None => self.queue.pop_entry(),
            Some((end, inclusive)) => self.queue.pop_entry_before(end, inclusive),
        };
        let Some((time, ev)) = popped else {
            return false;
        };
        debug_assert!(time >= self.now, "time must be monotone");
        self.now = time;
        self.events_processed += 1;
        // +1 counts the event just popped: the high-water mark is the depth
        // the queue reached before this dispatch drained it by one.
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue.len() + 1);
        match ev {
            Ev::Arrival { dst, slot } => {
                if let Some(journal) = self.journal.as_mut() {
                    let p = self.queue.packet(slot);
                    journal.record_kind(
                        time,
                        dst,
                        crate::journal::EntryKind::PacketArrival {
                            id: p.id,
                            flow: p.flow,
                            class: p.class,
                            bytes: p.size_bytes,
                        },
                    );
                }
                // Control-plane fault policy: arriving ACK/NACK packets may
                // be dropped, duplicated, or delayed. One uniform draw per
                // arrival keeps the run deterministic. Re-injected copies
                // pass through the policy again on their own arrival
                // (geometric, terminates almost surely while fractions stay
                // below 1).
                if let Some(policy) = self.control_policy {
                    let kind = self.queue.packet(slot).kind;
                    if matches!(kind, PacketKind::Ack | PacketKind::Nack) {
                        let u: f64 = self.rng.gen();
                        if u < policy.drop {
                            self.fault_stats.control_dropped += 1;
                            let _ = self.queue.take_packet(slot);
                            return true;
                        } else if u < policy.drop + policy.duplicate {
                            self.fault_stats.control_duplicated += 1;
                            let copy = self.queue.packet(slot).clone();
                            let copy_slot = self.queue.stash_packet(copy);
                            self.queue.schedule_ev(
                                self.now + policy.reorder_delay,
                                Ev::Arrival { dst, slot: copy_slot },
                            );
                            // The original still dispatches below.
                        } else if u < policy.drop + policy.duplicate + policy.reorder {
                            self.fault_stats.control_reordered += 1;
                            self.queue.schedule_ev(
                                self.now + policy.reorder_delay,
                                Ev::Arrival { dst, slot },
                            );
                            return true;
                        }
                    }
                }
                let packet = self.queue.take_packet(slot);
                self.dispatch(dst, |agent, ctx| agent.on_packet(packet, ctx));
            }
            Ev::Tx { agent, port } => {
                if let Some(journal) = self.journal.as_mut() {
                    journal.record_kind(
                        time,
                        agent,
                        crate::journal::EntryKind::TxComplete { port: port as usize },
                    );
                }
                self.dispatch(agent, |a, ctx| a.on_tx_complete(port as usize, ctx));
            }
            Ev::Timer { agent, token } => {
                if let Some(journal) = self.journal.as_mut() {
                    journal.record_kind(time, agent, crate::journal::EntryKind::Timer { token });
                }
                self.dispatch(agent, |a, ctx| a.on_timer(token, ctx));
            }
            Ev::Fault { agent, idx } => {
                let action = self.queue.take_fault(idx);
                if let Some(journal) = self.journal.as_mut() {
                    journal.record_kind(time, agent, crate::journal::EntryKind::Fault { action });
                }
                // Global fault actions are absorbed by the simulator itself;
                // agent-targeted ones fall through to normal dispatch.
                self.fault_stats.faults_applied += 1;
                match action {
                    FaultAction::SetControlPolicy(p) => {
                        // Both scheduling entry points validated this policy,
                        // so it cannot be malformed here.
                        debug_assert!(p.validate().is_ok(), "policy validated at scheduling time");
                        self.control_policy = Some(p);
                        return true;
                    }
                    FaultAction::ClearControlPolicy => {
                        self.control_policy = None;
                        return true;
                    }
                    _ => {}
                }
                self.dispatch(agent, |a, ctx| a.on_fault(&action, ctx));
            }
        }
        true
    }

    /// Moves the target agent out of the slab and invokes `f` with a fresh
    /// dispatch context.
    fn dispatch(&mut self, target: AgentId, f: impl FnOnce(&mut dyn Agent, &mut Context<'_>)) {
        let idx = self
            .local_slot(target)
            .unwrap_or_else(|e| panic!("event addressed to foreign agent: {e}"));
        let mut agent = self.agents[idx]
            .take()
            .unwrap_or_else(|| panic!("event addressed to unknown or re-entrant {target}"));
        let mut ctx = Context {
            now: self.now,
            self_id: target,
            queue: &mut self.queue,
            rng: &mut self.rng,
            next_packet_id: &mut self.next_packet_id,
            shard: self.shard.as_mut(),
        };
        f(agent.as_mut(), &mut ctx);
        self.agents[idx] = Some(agent);
    }

    /// Runs until simulated time reaches `deadline` (events at exactly
    /// `deadline` are processed) or the event queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.step_bounded(Some((deadline, true))) {}
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of simulated time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Processes every event strictly before `end` (or up to and including
    /// `end` when `inclusive`). Used by the windowed sharded executor:
    /// interior windows are exclusive because events at exactly the barrier
    /// time must be merged with cross-shard arrivals first.
    pub(crate) fn run_window(&mut self, end: SimTime, inclusive: bool) {
        while self.step_bounded(Some((end, inclusive))) {}
    }

    /// Moves the clock forward to `t` without processing events (never
    /// backward). The sharded executor calls this after the final window so
    /// every shard agrees on the committed horizon.
    pub(crate) fn advance_clock_to(&mut self, t: SimTime) {
        if self.now < t {
            self.now = t;
        }
    }

    /// Takes this shard's buffered cross-shard deliveries. Empty for
    /// serial simulators.
    pub(crate) fn drain_outbox(&mut self) -> Vec<CrossEvent> {
        match &mut self.shard {
            Some(s) => std::mem::take(&mut s.outbox),
            None => Vec::new(),
        }
    }

    /// Schedules an externally produced event (barrier merges, fault
    /// routing) into this simulator's queue.
    pub(crate) fn inject(&mut self, time: SimTime, event: Event) {
        self.queue.schedule(time, event);
    }
}

/// Read-only agent access shared by the serial [`Simulator`] and the
/// parallel [`crate::shard::ShardedSimulator`], so report/summary code can
/// be written once against either engine.
pub trait AgentLookup {
    /// Dynamic access to an agent by (global) id.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownAgent`] for an id outside the simulation,
    /// [`SimError::AgentBusy`] mid-dispatch.
    fn agent_dyn(&self, id: AgentId) -> Result<&dyn Agent, SimError>;

    /// Current simulation time.
    fn now(&self) -> SimTime;

    /// Typed access to an agent by id.
    ///
    /// # Errors
    ///
    /// As [`AgentLookup::agent_dyn`], plus
    /// [`SimError::AgentTypeMismatch`] when the agent is not a `T`.
    fn lookup<T: Agent>(&self, id: AgentId) -> Result<&T, SimError>
    where
        Self: Sized,
    {
        self.agent_dyn(id)?
            .as_any()
            .downcast_ref::<T>()
            .ok_or(SimError::AgentTypeMismatch { agent: id, expected: std::any::type_name::<T>() })
    }
}

impl AgentLookup for Simulator {
    fn agent_dyn(&self, id: AgentId) -> Result<&dyn Agent, SimError> {
        let idx = self.local_slot(id)?;
        let slot = self.agents.get(idx).ok_or(SimError::UnknownAgent(id))?;
        Ok(slot.as_ref().ok_or(SimError::AgentBusy(id))?.as_ref())
    }

    fn now(&self) -> SimTime {
        self.now
    }
}

/// Rejects fault actions that would be invalid to apply. Only control
/// policies carry tunable fractions today; everything else is valid by
/// construction.
pub(crate) fn validate_fault_action(action: &FaultAction) -> Result<(), SimError> {
    match action {
        FaultAction::SetControlPolicy(p) => p.validate(),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketKind};

    /// Sends one packet to a peer at start; the peer echoes it back.
    struct Echo {
        peer: Option<AgentId>,
        got: Vec<(SimTime, PacketKind)>,
    }

    impl Agent for Echo {
        fn start(&mut self, ctx: &mut Context<'_>) {
            if let Some(peer) = self.peer {
                let id = ctx.alloc_packet_id();
                let pkt = Packet::data(FlowId(0), ctx.self_id, peer, 500).with_id(id);
                ctx.deliver(peer, SimDuration::from_millis(5), pkt);
            }
        }
        fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
            self.got.push((ctx.now, packet.kind));
            if packet.kind == PacketKind::Data {
                let ack = Packet::ack_for(&packet, 40).with_id(ctx.alloc_packet_id());
                ctx.deliver(ack.dst, SimDuration::from_millis(5), ack);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn round_trip_delivery() {
        let mut sim = Simulator::new(1);
        let b_id = AgentId(1);
        let a = sim.add_agent(Box::new(Echo { peer: Some(b_id), got: vec![] }));
        let b = sim.add_agent(Box::new(Echo { peer: None, got: vec![] }));
        assert_eq!(b, b_id);
        sim.run_until(SimTime::from_secs_f64(1.0));

        let bv = &sim.agent::<Echo>(b).got;
        assert_eq!(bv.len(), 1);
        assert_eq!(bv[0].0, SimTime::from_secs_f64(0.005));
        assert_eq!(bv[0].1, PacketKind::Data);

        let av = &sim.agent::<Echo>(a).got;
        assert_eq!(av.len(), 1);
        assert_eq!(av[0].0, SimTime::from_secs_f64(0.010));
        assert_eq!(av[0].1, PacketKind::Ack);
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut sim = Simulator::new(1);
        sim.run_until(SimTime::from_secs_f64(2.0));
        assert_eq!(sim.now(), SimTime::from_secs_f64(2.0));
    }

    #[test]
    fn packet_ids_are_unique_and_monotone() {
        let mut sim = Simulator::new(1);
        let b = AgentId(1);
        sim.add_agent(Box::new(Echo { peer: Some(b), got: vec![] }));
        sim.add_agent(Box::new(Echo { peer: Some(AgentId(0)), got: vec![] }));
        sim.run_until(SimTime::from_secs_f64(1.0));
        // 2 data + 2 acks = 4 ids allocated.
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    #[should_panic(expected = "after the simulation started")]
    fn adding_agents_after_start_panics() {
        let mut sim = Simulator::new(1);
        sim.add_agent(Box::new(Echo { peer: None, got: vec![] }));
        sim.step();
        sim.add_agent(Box::new(Echo { peer: None, got: vec![] }));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        fn run() -> Vec<(SimTime, PacketKind)> {
            let mut sim = Simulator::new(99);
            let b = AgentId(1);
            let a = sim.add_agent(Box::new(Echo { peer: Some(b), got: vec![] }));
            sim.add_agent(Box::new(Echo { peer: Some(AgentId(0)), got: vec![] }));
            sim.run_until(SimTime::from_secs_f64(1.0));
            sim.agent::<Echo>(a).got.clone()
        }
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::disc::{DropTail, QueueLimit};
    use crate::faults::{apply_port_fault, GLOBAL};
    use crate::journal::EntryKind;
    use crate::packet::FlowId;
    use crate::port::Port;
    use crate::time::Rate;

    /// Blasts `n` packets into its port at start and honours fault events.
    struct PortHost {
        port: Port,
        n: usize,
    }
    impl Agent for PortHost {
        fn start(&mut self, ctx: &mut Context<'_>) {
            for seq in 0..self.n as u64 {
                let pkt = Packet::data(FlowId(0), ctx.self_id, self.port.peer, 500)
                    .with_seq(seq)
                    .with_id(ctx.alloc_packet_id());
                self.port.send(pkt, ctx);
            }
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
            self.port.on_tx_complete(ctx);
        }
        fn on_fault(&mut self, action: &FaultAction, ctx: &mut Context<'_>) {
            apply_port_fault(std::slice::from_mut(&mut self.port), action, ctx);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Sink {
        arrivals: Vec<SimTime>,
    }
    impl Agent for Sink {
        fn on_packet(&mut self, _p: Packet, ctx: &mut Context<'_>) {
            self.arrivals.push(ctx.now);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn host(n: usize) -> PortHost {
        // 4 Mb/s, zero delay: one 500-byte packet serializes in 1 ms.
        PortHost {
            port: Port::new(
                0,
                AgentId(1),
                Rate::from_mbps(4.0),
                SimDuration::ZERO,
                Box::new(DropTail::new(QueueLimit::Packets(100))),
            ),
            n,
        }
    }

    #[test]
    fn link_outage_pauses_then_drains_without_loss() {
        let mut sim = Simulator::new(1);
        let src = sim.add_agent(Box::new(host(10)));
        let sink = sim.add_agent(Box::new(Sink { arrivals: vec![] }));
        let mut faults = FaultSchedule::new();
        faults.link_outage(src, 0, SimTime::from_secs_f64(0.001), SimTime::from_secs_f64(0.050));
        sim.install_faults(&faults);
        sim.run_until(SimTime::from_secs_f64(1.0));

        let arrivals = &sim.agent::<Sink>(sink).arrivals;
        assert_eq!(arrivals.len(), 10, "nothing is lost across an outage");
        // First packet made it out before the cut; the rest drain after.
        assert_eq!(arrivals[0], SimTime::from_secs_f64(0.001));
        assert_eq!(arrivals[1], SimTime::from_secs_f64(0.051));
        assert_eq!(arrivals[9], SimTime::from_secs_f64(0.059));
        let stats = &sim.agent::<PortHost>(src).port.stats;
        assert_eq!(stats.dropped_packets, 0);
        assert_eq!(sim.fault_stats().faults_applied, 2);
    }

    #[test]
    fn flush_discards_backlog_and_counts_drops() {
        let mut sim = Simulator::new(1);
        let src = sim.add_agent(Box::new(host(10)));
        let sink = sim.add_agent(Box::new(Sink { arrivals: vec![] }));
        let mut faults = FaultSchedule::new();
        // At t = 4.5 ms, packets 0-3 have serialized, 4 is on the wire,
        // 5-9 are queued: the flush discards those five.
        faults.flush_at(src, SimTime::from_secs_f64(0.0045));
        sim.install_faults(&faults);
        sim.run_until(SimTime::from_secs_f64(1.0));

        assert_eq!(sim.agent::<Sink>(sink).arrivals.len(), 5);
        let stats = &sim.agent::<PortHost>(src).port.stats;
        assert_eq!(stats.dropped_packets, 5);
        assert_eq!(stats.tx_packets, 5);
    }

    #[test]
    fn degraded_link_slows_serialization() {
        let mut sim = Simulator::new(1);
        let src = sim.add_agent(Box::new(host(10)));
        let sink = sim.add_agent(Box::new(Sink { arrivals: vec![] }));
        let mut faults = FaultSchedule::new();
        // Half rate from the start: 2 ms per packet instead of 1 ms.
        faults.push(SimTime::ZERO, src, FaultAction::DegradeLink { port: 0, factor: 0.5 });
        sim.install_faults(&faults);
        sim.run_until(SimTime::from_secs_f64(1.0));

        let arrivals = &sim.agent::<Sink>(sink).arrivals;
        assert_eq!(arrivals.len(), 10);
        // Packet 0 started at full rate (before the fault fired); the rest
        // serialize at half rate.
        assert_eq!(*arrivals.last().unwrap(), SimTime::from_secs_f64(0.019));
    }

    #[test]
    fn control_policy_drops_acks_and_is_journaled() {
        // Echo pair: A sends data, B acks; a full-drop policy starves A.
        struct EchoPeer {
            peer: Option<AgentId>,
            acks: u32,
        }
        impl Agent for EchoPeer {
            fn start(&mut self, ctx: &mut Context<'_>) {
                if let Some(peer) = self.peer {
                    let pkt = Packet::data(FlowId(0), ctx.self_id, peer, 500)
                        .with_id(ctx.alloc_packet_id());
                    ctx.deliver(peer, SimDuration::from_millis(5), pkt);
                }
            }
            fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
                match p.kind {
                    PacketKind::Data => {
                        let ack = Packet::ack_for(&p, 40).with_id(ctx.alloc_packet_id());
                        ctx.deliver(ack.dst, SimDuration::from_millis(5), ack);
                    }
                    _ => self.acks += 1,
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim = Simulator::new(1);
        sim.enable_journal(64);
        let b = AgentId(1);
        let a = sim.add_agent(Box::new(EchoPeer { peer: Some(b), acks: 0 }));
        sim.add_agent(Box::new(EchoPeer { peer: None, acks: 0 }));
        let mut faults = FaultSchedule::new();
        faults.control_fault_window(
            ControlFaultPolicy::drop_fraction(1.0),
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
        );
        sim.install_faults(&faults);
        sim.run_until(SimTime::from_secs_f64(2.0));

        assert_eq!(sim.agent::<EchoPeer>(a).acks, 0, "every ACK dropped");
        assert_eq!(sim.fault_stats().control_dropped, 1);
        assert!(sim.control_policy().is_none(), "window cleared the policy");
        let journal = sim.journal().expect("enabled");
        let faults_recorded =
            journal.iter().filter(|e| matches!(e.kind, EntryKind::Fault { .. })).count();
        assert_eq!(faults_recorded, 2);
        assert_eq!(journal.iter().next().unwrap().target, GLOBAL);
    }

    #[test]
    fn faulted_run_is_deterministic() {
        fn run() -> (Vec<SimTime>, u64) {
            let mut sim = Simulator::new(33);
            let src = sim.add_agent(Box::new(host(10)));
            let sink = sim.add_agent(Box::new(Sink { arrivals: vec![] }));
            let mut rng = StdRng::seed_from_u64(5);
            let faults = FaultSchedule::random_link_flaps(
                &mut rng,
                src,
                0,
                (SimTime::ZERO, SimTime::from_secs_f64(0.5)),
                3,
                SimDuration::from_millis(40),
            );
            sim.install_faults(&faults);
            sim.run_until(SimTime::from_secs_f64(1.0));
            (sim.agent::<Sink>(sink).arrivals.clone(), sim.events_processed())
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn malformed_fault_schedule_yields_err_not_panic() {
        let mut sim = Simulator::new(1);
        sim.add_agent(Box::new(Sink { arrivals: vec![] }));
        let mut faults = FaultSchedule::new();
        // A valid outage before the bad policy: all-or-nothing means even
        // the valid prefix must not be scheduled.
        faults.link_outage(AgentId(0), 0, SimTime::ZERO, SimTime::from_secs_f64(0.1));
        faults.control_fault_window(
            ControlFaultPolicy::drop_fraction(1.5),
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
        );
        let err = sim.try_install_faults(&faults);
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.fault_stats().faults_applied, 0, "nothing half-installed");

        let err = sim.try_schedule_fault(
            SimTime::ZERO,
            GLOBAL,
            FaultAction::SetControlPolicy(ControlFaultPolicy::drop_fraction(f64::NAN)),
        );
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn peak_queue_depth_tracks_high_water_mark() {
        let mut sim = Simulator::new(1);
        assert_eq!(sim.peak_queue_depth(), 0);
        sim.add_agent(Box::new(host(10)));
        sim.add_agent(Box::new(Sink { arrivals: vec![] }));
        sim.run_until(SimTime::from_secs_f64(1.0));
        // 10 packets enter the port at start: 1 on the wire (tx-complete
        // event) while 9 wait in the queue discipline, so the event queue
        // high-water mark is small but nonzero.
        assert!(sim.peak_queue_depth() >= 2);
        assert!(sim.peak_queue_depth() as u64 <= sim.events_processed());
    }

    #[test]
    fn try_accessors_report_errors() {
        let mut sim = Simulator::new(1);
        let id = sim.add_agent(Box::new(Sink { arrivals: vec![] }));
        assert!(sim.try_agent::<Sink>(id).is_ok());
        assert!(matches!(sim.try_agent::<PortHost>(id), Err(SimError::AgentTypeMismatch { .. })));
        assert!(matches!(sim.try_agent::<Sink>(AgentId(99)), Err(SimError::UnknownAgent(_))));
        sim.step();
        assert!(matches!(
            sim.try_add_agent(Box::new(Sink { arrivals: vec![] })),
            Err(SimError::SimulationStarted)
        ));
    }
}

#[cfg(test)]
mod journal_tests {
    use super::*;
    use crate::journal::EntryKind;
    use crate::packet::{FlowId, PacketKind};
    use crate::time::SimDuration;
    use std::any::Any;

    struct Ping {
        peer: Option<AgentId>,
    }
    impl Agent for Ping {
        fn start(&mut self, ctx: &mut Context<'_>) {
            if let Some(peer) = self.peer {
                let pkt =
                    Packet::data(FlowId(3), ctx.self_id, peer, 500).with_id(ctx.alloc_packet_id());
                ctx.deliver(peer, SimDuration::from_millis(1), pkt);
                ctx.schedule_timer(SimDuration::from_millis(2), 9);
            }
        }
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            if p.kind == PacketKind::Data {
                let ack = Packet::ack_for(&p, 40).with_id(ctx.alloc_packet_id());
                ctx.deliver(ack.dst, SimDuration::from_millis(1), ack);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn journal_records_all_dispatches() {
        let mut sim = Simulator::new(1);
        sim.enable_journal(100);
        let b = AgentId(1);
        sim.add_agent(Box::new(Ping { peer: Some(b) }));
        sim.add_agent(Box::new(Ping { peer: None }));
        sim.run_until(SimTime::from_secs_f64(1.0));

        let j = sim.journal().expect("enabled");
        // data arrival + ack arrival + timer = 3 events.
        assert_eq!(j.total_recorded, sim.events_processed());
        assert_eq!(j.len(), 3);
        let kinds: Vec<bool> =
            j.iter().map(|e| matches!(e.kind, EntryKind::PacketArrival { .. })).collect();
        assert_eq!(kinds.iter().filter(|&&k| k).count(), 2);
        assert_eq!(j.for_flow(FlowId(3)).len(), 2);
    }

    #[test]
    fn journal_disabled_by_default() {
        let sim = Simulator::new(1);
        assert!(sim.journal().is_none());
    }
}
