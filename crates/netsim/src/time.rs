//! Simulation time and rate types.
//!
//! The simulator uses integer nanoseconds ([`SimTime`], [`SimDuration`]) so
//! that event ordering is exact and runs are bit-reproducible under a fixed
//! seed. Link and flow rates are expressed in bits per second ([`Rate`]).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use pels_netsim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(30);
/// assert_eq!(t.as_secs_f64(), 0.030);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use pels_netsim::time::SimDuration;
///
/// let d = SimDuration::from_secs_f64(1.5);
/// assert_eq!(d.as_nanos(), 1_500_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from seconds expressed as a float.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Returns the time as integer nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as (lossy) floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the span from `earlier` to `self`, saturating at zero.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns `self + d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from seconds expressed as a float.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the span as integer nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as (lossy) floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` for a zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A data rate in bits per second.
///
/// # Examples
///
/// ```
/// use pels_netsim::time::Rate;
///
/// let bottleneck = Rate::from_mbps(4.0);
/// // A 500-byte packet takes 1 ms to serialize at 4 Mb/s.
/// assert_eq!(bottleneck.tx_time(500).as_nanos(), 1_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Rate(u64);

impl Rate {
    /// A zero rate (transmits nothing).
    pub const ZERO: Rate = Rate(0);

    /// Creates a rate from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Creates a rate from kilobits per second (SI: 1 kb/s = 1000 b/s).
    pub fn from_kbps(kbps: f64) -> Self {
        assert!(kbps.is_finite() && kbps >= 0.0, "invalid rate: {kbps}");
        Rate((kbps * 1e3).round() as u64)
    }

    /// Creates a rate from megabits per second (SI: 1 Mb/s = 10^6 b/s).
    pub fn from_mbps(mbps: f64) -> Self {
        assert!(mbps.is_finite() && mbps >= 0.0, "invalid rate: {mbps}");
        Rate((mbps * 1e6).round() as u64)
    }

    /// Returns the rate in bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Returns the rate in kilobits per second.
    pub fn as_kbps(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the rate in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the serialization time of `bytes` at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn tx_time(self, bytes: u32) -> SimDuration {
        assert!(self.0 > 0, "cannot transmit at zero rate");
        let bits = bytes as u64 * 8;
        // The nanosecond numerator fits in u64 for every packet under
        // ~2.3 GB, so the hot path is a native 64-bit division; the u128
        // fallback costs a `__udivti3` libcall per packet.
        match bits.checked_mul(1_000_000_000) {
            Some(numer) => SimDuration(numer / self.0),
            None => SimDuration(((bits as u128 * 1_000_000_000) / self.0 as u128) as u64),
        }
    }

    /// Returns the number of bytes transferred in `d` at this rate (floor).
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        ((self.0 as u128 * d.0 as u128) / (8 * 1_000_000_000)) as u64
    }

    /// Scales the rate by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn scale(self, f: f64) -> Rate {
        assert!(f.is_finite() && f >= 0.0, "invalid scale factor: {f}");
        Rate((self.0 as f64 * f).round() as u64)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} Mb/s", self.as_mbps())
        } else {
            write!(f, "{:.1} kb/s", self.as_kbps())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_secs() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!((t - SimTime::from_nanos(30)).as_nanos(), 120);
        assert_eq!(t.duration_since(SimTime::from_nanos(200)), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_secs_f64(0.002), SimDuration::from_millis(2));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.saturating_mul(u64::MAX).as_nanos(), u64::MAX);
    }

    #[test]
    fn rate_tx_time_paper_constants() {
        // The paper's packets: 500 bytes at a 4 Mb/s bottleneck -> 1 ms.
        assert_eq!(Rate::from_mbps(4.0).tx_time(500), SimDuration::from_millis(1));
        // 10 Mb/s access link -> 0.4 ms.
        assert_eq!(Rate::from_mbps(10.0).tx_time(500), SimDuration::from_micros(400));
    }

    #[test]
    fn rate_bytes_in_interval() {
        // 4 Mb/s over 30 ms = 15000 bytes.
        let r = Rate::from_mbps(4.0);
        assert_eq!(r.bytes_in(SimDuration::from_millis(30)), 15_000);
    }

    #[test]
    fn rate_conversions() {
        let r = Rate::from_kbps(128.0);
        assert_eq!(r.as_bps(), 128_000);
        assert!((r.as_mbps() - 0.128).abs() < 1e-12);
        assert_eq!(r.scale(0.5).as_bps(), 64_000);
    }

    #[test]
    #[should_panic(expected = "zero rate")]
    fn zero_rate_tx_panics() {
        let _ = Rate::ZERO.tx_time(500);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Rate::from_mbps(4.0)), "4.000 Mb/s");
        assert_eq!(format!("{}", Rate::from_kbps(128.0)), "128.0 kb/s");
        assert_eq!(format!("{}", SimTime::from_secs_f64(0.5)), "0.500000s");
    }
}
