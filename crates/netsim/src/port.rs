//! Output ports: a link (rate + propagation delay) fronted by a queue
//! discipline.
//!
//! A [`Port`] serializes one packet at a time. While busy, arriving packets
//! go to the discipline; when a transmission completes the port asks the
//! discipline for the next packet. Agents embed ports and forward
//! [`crate::sim::Agent::on_tx_complete`] callbacks to them.

use crate::disc::{Discipline, QEntry};
use crate::packet::{AgentId, Packet};
use crate::sim::Context;
use crate::time::{Rate, SimDuration, SimTime};

/// Counters kept by every port.
#[derive(Debug, Clone, Default)]
pub struct PortStats {
    /// Packets fully serialized onto the link.
    pub tx_packets: u64,
    /// Bytes fully serialized onto the link.
    pub tx_bytes: u64,
    /// Packets dropped by the discipline, total.
    pub dropped_packets: u64,
    /// Bytes dropped by the discipline, total.
    pub dropped_bytes: u64,
    /// Per-class drop counts (classes 0..=3; higher classes fold into 3).
    pub drops_by_class: [u64; 4],
    /// Per-class transmit counts.
    pub tx_by_class: [u64; 4],
    /// Accumulated busy time.
    pub busy_time: SimDuration,
}

impl PortStats {
    /// Link utilization over `elapsed` time.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy_time.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

/// An output port transmitting towards a fixed peer agent.
#[derive(Debug)]
pub struct Port {
    /// Agent at the far end of the link.
    pub peer: AgentId,
    /// Link rate.
    pub rate: Rate,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Index of this port within its owning agent (used to route
    /// `TxComplete` events back here).
    pub index: usize,
    disc: Box<dyn Discipline>,
    busy: bool,
    /// Rate the port was built with; [`Port::set_rate_factor`] scales
    /// relative to this so repeated degradations do not compound.
    nominal_rate: Rate,
    /// Link state: while down the port stops serializing (fault injection).
    up: bool,
    tx_started: SimTime,
    /// Statistics.
    pub stats: PortStats,
    scratch_drops: Vec<QEntry>,
}

impl Port {
    /// Creates a port.
    pub fn new(
        index: usize,
        peer: AgentId,
        rate: Rate,
        delay: SimDuration,
        disc: Box<dyn Discipline>,
    ) -> Self {
        Port {
            peer,
            rate,
            delay,
            index,
            disc,
            busy: false,
            nominal_rate: rate,
            up: true,
            tx_started: SimTime::ZERO,
            stats: PortStats::default(),
            scratch_drops: Vec::new(),
        }
    }

    /// Whether the port is currently serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Whether the link is up (it is unless fault injection cut it).
    pub fn link_up(&self) -> bool {
        self.up
    }

    /// Cuts or restores the link. While down, offered packets queue (and may
    /// be dropped by the discipline) but nothing serializes. Restoring does
    /// not by itself resume transmission — call [`Port::restart`] from a
    /// dispatch context to drain the backlog.
    pub fn set_link_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Scales the link rate to `factor` x the nominal (construction-time)
    /// rate. `1.0` restores full rate. Takes effect from the next packet.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn set_rate_factor(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "rate factor must be finite and positive: {factor}"
        );
        self.rate = self.nominal_rate.scale(factor);
    }

    /// Begins transmitting from the queue if the port is idle, the link is
    /// up, and a packet is waiting. Used after [`Port::set_link_up`] to
    /// resume a restored link.
    pub fn restart(&mut self, ctx: &mut Context<'_>) {
        if self.up && !self.busy {
            if let Some(next) = self.disc.dequeue(ctx.now) {
                self.begin_tx(next, ctx);
            }
        }
    }

    /// Discards every queued packet (a simulated reboot), counting each in
    /// the drop statistics and releasing the parked payloads. A packet
    /// already serializing is not recalled. Returns the number of packets
    /// flushed.
    pub fn flush(&mut self, ctx: &mut Context<'_>) -> usize {
        let mut flushed = 0;
        while let Some(e) = self.disc.dequeue(ctx.now) {
            self.stats.dropped_packets += 1;
            self.stats.dropped_bytes += e.size_bytes as u64;
            self.stats.drops_by_class[e.class.min(3) as usize] += 1;
            ctx.release(e.slot);
            flushed += 1;
        }
        flushed
    }

    /// The queue discipline, for inspection.
    pub fn discipline(&self) -> &dyn Discipline {
        self.disc.as_ref()
    }

    /// The queue discipline, for reconfiguration (e.g. updating a drop
    /// probability).
    pub fn discipline_mut(&mut self) -> &mut dyn Discipline {
        self.disc.as_mut()
    }

    /// Replaces the queue discipline (only sensible before traffic flows).
    ///
    /// # Panics
    ///
    /// Panics if the current discipline still holds packets.
    pub fn set_discipline(&mut self, disc: Box<dyn Discipline>) {
        assert!(self.disc.is_empty(), "cannot replace a non-empty discipline");
        self.disc = disc;
    }

    /// Offers a packet for transmission. The payload is parked in the event
    /// queue's arena immediately; the discipline only ever handles the
    /// 16-byte [`QEntry`] descriptor. If the port is idle the packet starts
    /// serializing at once; otherwise it is queued (and possibly dropped by
    /// the discipline — drops release their arena slot before returning).
    /// Returns descriptors of the packets dropped by this call.
    pub fn send(&mut self, pkt: Packet, ctx: &mut Context<'_>) -> &[QEntry] {
        self.scratch_drops.clear();
        let size_bytes = pkt.size_bytes;
        let class = pkt.class;
        let entry = QEntry::new(ctx.stash(pkt), size_bytes, class);
        if self.busy || !self.up {
            self.disc.enqueue(entry, ctx.now, &mut self.scratch_drops);
            for d in &self.scratch_drops {
                self.stats.dropped_packets += 1;
                self.stats.dropped_bytes += d.size_bytes as u64;
                self.stats.drops_by_class[d.class.min(3) as usize] += 1;
                ctx.release(d.slot);
            }
        } else {
            self.begin_tx(entry, ctx);
        }
        &self.scratch_drops
    }

    fn begin_tx(&mut self, entry: QEntry, ctx: &mut Context<'_>) {
        let tx = self.rate.tx_time(entry.size_bytes);
        self.busy = true;
        self.tx_started = ctx.now;
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += entry.size_bytes as u64;
        self.stats.tx_by_class[entry.class.min(3) as usize] += 1;
        ctx.schedule_tx_complete(self.index, tx);
        ctx.deliver_slot(self.peer, tx + self.delay, entry.slot);
    }

    /// Must be called from the owning agent's
    /// [`crate::sim::Agent::on_tx_complete`] for this port's index.
    pub fn on_tx_complete(&mut self, ctx: &mut Context<'_>) {
        debug_assert!(self.busy, "tx-complete on an idle port");
        self.stats.busy_time += ctx.now.duration_since(self.tx_started);
        self.busy = false;
        if !self.up {
            // Link cut mid-transmission: the in-flight packet completes,
            // but the backlog waits for restart() after link-up.
            return;
        }
        if let Some(next) = self.disc.dequeue(ctx.now) {
            self.begin_tx(next, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disc::{DropTail, QueueLimit};
    use crate::packet::FlowId;
    use crate::sim::{Agent, Simulator};
    use std::any::Any;

    /// A host that blasts `n` packets into its port at start.
    struct Blaster {
        port: Option<Port>,
        n: usize,
    }
    impl Agent for Blaster {
        fn start(&mut self, ctx: &mut Context<'_>) {
            let port = self.port.as_mut().unwrap();
            for seq in 0..self.n as u64 {
                let pkt = Packet::data(FlowId(0), ctx.self_id, port.peer, 500)
                    .with_seq(seq)
                    .with_id(ctx.alloc_packet_id());
                port.send(pkt, ctx);
            }
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
            self.port.as_mut().unwrap().on_tx_complete(ctx);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Counter {
        got: Vec<(SimTime, u64)>,
    }
    impl Agent for Counter {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            self.got.push((ctx.now, p.seq));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn serializes_back_to_back_at_link_rate() {
        let mut sim = Simulator::new(1);
        let sink_id = AgentId(1);
        // 4 Mb/s, 10 ms delay: 500-byte packet = 1 ms serialization.
        let port = Port::new(
            0,
            sink_id,
            Rate::from_mbps(4.0),
            SimDuration::from_millis(10),
            Box::new(DropTail::new(QueueLimit::Packets(100))),
        );
        let src = sim.add_agent(Box::new(Blaster { port: Some(port), n: 3 }));
        sim.add_agent(Box::new(Counter { got: vec![] }));
        sim.run_until(SimTime::from_secs_f64(1.0));

        let got = &sim.agent::<Counter>(sink_id).got;
        assert_eq!(got.len(), 3);
        // Arrivals at 11, 12, 13 ms: serialization is pipelined, propagation adds 10 ms.
        assert_eq!(got[0].0, SimTime::from_secs_f64(0.011));
        assert_eq!(got[1].0, SimTime::from_secs_f64(0.012));
        assert_eq!(got[2].0, SimTime::from_secs_f64(0.013));
        // In order.
        assert_eq!(got.iter().map(|g| g.1).collect::<Vec<_>>(), vec![0, 1, 2]);

        let stats = &sim.agent::<Blaster>(src).port.as_ref().unwrap().stats;
        assert_eq!(stats.tx_packets, 3);
        assert_eq!(stats.tx_bytes, 1500);
        assert_eq!(stats.busy_time, SimDuration::from_millis(3));
    }

    #[test]
    fn drops_count_in_stats() {
        let mut sim = Simulator::new(1);
        let sink_id = AgentId(1);
        let port = Port::new(
            0,
            sink_id,
            Rate::from_mbps(4.0),
            SimDuration::ZERO,
            Box::new(DropTail::new(QueueLimit::Packets(2))),
        );
        // 10 packets into a queue of 2 (+1 in flight) -> 7 drops.
        let src = sim.add_agent(Box::new(Blaster { port: Some(port), n: 10 }));
        sim.add_agent(Box::new(Counter { got: vec![] }));
        sim.run_until(SimTime::from_secs_f64(1.0));

        let stats = &sim.agent::<Blaster>(src).port.as_ref().unwrap().stats;
        assert_eq!(stats.dropped_packets, 7);
        assert_eq!(stats.tx_packets, 3);
        assert_eq!(stats.drops_by_class[3], 7);
        assert_eq!(sim.agent::<Counter>(sink_id).got.len(), 3);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut sim = Simulator::new(1);
        let sink_id = AgentId(1);
        let port = Port::new(
            0,
            sink_id,
            Rate::from_mbps(4.0),
            SimDuration::ZERO,
            Box::new(DropTail::new(QueueLimit::Packets(100))),
        );
        let src = sim.add_agent(Box::new(Blaster { port: Some(port), n: 50 }));
        sim.add_agent(Box::new(Counter { got: vec![] }));
        sim.run_until(SimTime::from_secs_f64(0.1));
        let stats = &sim.agent::<Blaster>(src).port.as_ref().unwrap().stats;
        // 50 packets x 1 ms = 50 ms busy in a 100 ms window.
        let util = stats.utilization(SimDuration::from_millis(100));
        assert!((util - 0.5).abs() < 1e-9, "utilization {util}");
    }
}
