//! The clock abstraction shared by the simulator and the live wire runtime.
//!
//! Every control law in this workspace (MKC staleness, γ holds, feedback
//! epochs, pacing) is written against [`SimTime`] — an integer nanosecond
//! count since "the start". Inside the discrete-event simulator that start
//! is simulation time zero and the event loop advances time itself; in the
//! live transport ([`pels-wire`]) the same state machines run against wall
//! time. A [`Clock`] is the thing that produces "now" in both worlds:
//!
//! * [`ManualClock`] — a hand-advanced clock. Tests and the deterministic
//!   in-memory transport drive it in fixed steps, which makes live-agent
//!   runs exactly reproducible (no wall-clock sensitivity).
//! * [`MonotonicClock`] — wall time, anchored at construction, backed by
//!   [`std::time::Instant`] (monotone, immune to NTP jumps).
//!
//! The agents themselves never own a clock: they expose `poll(now)`-style
//! step functions and stay pure state machines over [`SimTime`], so the sim
//! and the wire share one implementation of every control loop.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of "now" as [`SimTime`] (nanoseconds since the clock's origin).
///
/// Implementations must be monotone: successive calls never go backwards.
pub trait Clock {
    /// The current time.
    fn now(&self) -> SimTime;
}

/// A hand-advanced clock for deterministic (mock-time) runs.
///
/// Internally an atomic, so one clock can be shared between threads (e.g.
/// a driver thread stepping time while agents poll), though deterministic
/// tests normally run single-threaded.
///
/// # Examples
///
/// ```
/// use pels_netsim::clock::{Clock, ManualClock};
/// use pels_netsim::time::SimDuration;
///
/// let clock = ManualClock::new();
/// assert_eq!(clock.now().as_nanos(), 0);
/// clock.advance(SimDuration::from_millis(30));
/// assert_eq!(clock.now().as_nanos(), 30_000_000);
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock at an explicit starting time.
    pub fn at(t: SimTime) -> Self {
        ManualClock { now_ns: AtomicU64::new(t.as_nanos()) }
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let ns = self.now_ns.fetch_add(d.as_nanos(), Ordering::SeqCst) + d.as_nanos();
        SimTime::from_nanos(ns)
    }

    /// Moves the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time (clocks are monotone).
    pub fn set(&self, t: SimTime) {
        let cur = self.now_ns.load(Ordering::SeqCst);
        assert!(t.as_nanos() >= cur, "ManualClock must not go backwards: {t} < {cur} ns");
        self.now_ns.store(t.as_nanos(), Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::SeqCst))
    }
}

/// Wall-clock time since construction, as [`SimTime`].
///
/// Backed by [`Instant`], so it is monotone and unaffected by system clock
/// adjustments. Two `MonotonicClock`s share a timeline only if one is cloned
/// from the other (the origin is captured at `new`).
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose zero is "now".
    pub fn new() -> Self {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now(&self) -> SimTime {
        (**self).now()
    }
}

impl<C: Clock + ?Sized> Clock for std::sync::Arc<C> {
    fn now(&self) -> SimTime {
        (**self).now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_and_sets() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        let t = c.advance(SimDuration::from_micros(250));
        assert_eq!(t, c.now());
        c.set(SimTime::from_secs_f64(1.0));
        assert_eq!(c.now().as_nanos(), 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "must not go backwards")]
    fn manual_clock_rejects_rewind() {
        let c = ManualClock::at(SimTime::from_secs_f64(2.0));
        c.set(SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn manual_clock_shared_through_arc() {
        let c = std::sync::Arc::new(ManualClock::new());
        c.advance(SimDuration::from_millis(5));
        fn read(clock: impl Clock) -> SimTime {
            clock.now()
        }
        assert_eq!(read(c.clone()).as_nanos(), 5_000_000);
        assert_eq!(read(&*c).as_nanos(), 5_000_000);
    }

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now();
        assert!(b > a);
    }
}
