//! An opt-in event journal: a bounded record of every dispatched event.
//!
//! Debugging a packet-level simulation usually starts with "what happened
//! around t = 12.37 s?". The journal answers that without instrumenting any
//! agent: the simulator's dispatch loop records each event (time, target,
//! kind, and packet metadata when present) into a bounded ring buffer with
//! query helpers.

use crate::event::Event;
use crate::faults::FaultAction;
use crate::packet::{AgentId, FlowId, PacketId};
use crate::time::SimTime;
use std::collections::VecDeque;

/// What kind of event a journal entry describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EntryKind {
    /// A packet arrived at the target agent.
    PacketArrival {
        /// The packet's globally unique id.
        id: PacketId,
        /// Flow the packet belongs to.
        flow: FlowId,
        /// Priority class.
        class: u8,
        /// Size in bytes.
        bytes: u32,
    },
    /// A port of the target agent finished serializing a packet.
    TxComplete {
        /// Port index within the agent.
        port: usize,
    },
    /// A timer fired at the target agent.
    Timer {
        /// The agent-chosen token.
        token: u64,
    },
    /// A scripted fault was applied at the target agent (or globally).
    Fault {
        /// The fault that fired.
        action: FaultAction,
    },
}

/// One recorded dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// When the event fired.
    pub time: SimTime,
    /// The agent it was dispatched to.
    pub target: AgentId,
    /// What it was.
    pub kind: EntryKind,
}

/// Bounded event journal (ring buffer).
///
/// # Examples
///
/// ```
/// use pels_netsim::journal::Journal;
///
/// let mut j = Journal::new(1000);
/// assert_eq!(j.len(), 0);
/// assert!(j.is_empty());
/// let _ = &mut j; // filled by Simulator when enabled
/// ```
#[derive(Debug)]
pub struct Journal {
    entries: VecDeque<Entry>,
    capacity: usize,
    /// Total events recorded (including those evicted from the ring).
    pub total_recorded: u64,
}

impl Journal {
    /// Creates a journal keeping the most recent `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        Journal {
            entries: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            total_recorded: 0,
        }
    }

    /// Records one dispatch (called by the simulator).
    pub fn record(&mut self, time: SimTime, event: &Event) {
        let kind = match event {
            Event::PacketArrival { packet, .. } => EntryKind::PacketArrival {
                id: packet.id,
                flow: packet.flow,
                class: packet.class,
                bytes: packet.size_bytes,
            },
            Event::TxComplete { port, .. } => EntryKind::TxComplete { port: *port },
            Event::Timer { token, .. } => EntryKind::Timer { token: *token },
            Event::Fault { action, .. } => EntryKind::Fault { action: *action },
        };
        self.record_kind(time, event.target(), kind);
    }

    /// Records one dispatch from its parts. The hot dispatch loop uses this
    /// so journaling never requires materializing an [`Event`] (packet
    /// payloads stay parked in the arena).
    pub fn record_kind(&mut self, time: SimTime, target: AgentId, kind: EntryKind) {
        let entry = Entry { time, target, kind };
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
        self.total_recorded += 1;
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &Entry> {
        self.entries.iter()
    }

    /// Retained entries within `[from, to]`.
    pub fn between(&self, from: SimTime, to: SimTime) -> Vec<Entry> {
        self.entries.iter().filter(|e| e.time >= from && e.time <= to).copied().collect()
    }

    /// Retained entries involving packets of `flow`, oldest first.
    pub fn for_flow(&self, flow: FlowId) -> Vec<Entry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.kind, EntryKind::PacketArrival { flow: f, .. } if f == flow))
            .copied()
            .collect()
    }

    /// The journey of one packet (its arrival hops), oldest first.
    pub fn packet_journey(&self, id: PacketId) -> Vec<Entry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.kind, EntryKind::PacketArrival { id: pid, .. } if pid == id))
            .copied()
            .collect()
    }

    /// Renders retained entries as one line per event (for dumping).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match e.kind {
                EntryKind::PacketArrival { id, flow, class, bytes } => out.push_str(&format!(
                    "{} {} <- packet {:?} {} class {} ({} B)\n",
                    e.time, e.target, id, flow, class, bytes
                )),
                EntryKind::TxComplete { port } => {
                    out.push_str(&format!("{} {} tx-complete port {port}\n", e.time, e.target))
                }
                EntryKind::Timer { token } => {
                    out.push_str(&format!("{} {} timer {token}\n", e.time, e.target))
                }
                EntryKind::Fault { action } => {
                    out.push_str(&format!("{} {} fault {action:?}\n", e.time, e.target))
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn arrival(t: u64, dst: u32, flow: u32, id: u64) -> Event {
        let pkt = Packet::data(FlowId(flow), AgentId(0), AgentId(dst), 500).with_id(PacketId(id));
        let _ = t;
        Event::PacketArrival { dst: AgentId(dst), packet: pkt }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut j = Journal::new(3);
        for i in 0..5u64 {
            j.record(SimTime::from_nanos(i), &arrival(i, 1, 0, i));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.total_recorded, 5);
        let first = j.iter().next().unwrap();
        assert_eq!(first.time, SimTime::from_nanos(2));
    }

    #[test]
    fn queries_by_time_flow_and_packet() {
        let mut j = Journal::new(100);
        j.record(SimTime::from_nanos(10), &arrival(10, 1, 7, 100));
        j.record(SimTime::from_nanos(20), &arrival(20, 2, 8, 101));
        j.record(SimTime::from_nanos(30), &arrival(30, 3, 7, 100));
        j.record(SimTime::from_nanos(40), &Event::Timer { agent: AgentId(5), token: 3 });

        assert_eq!(j.between(SimTime::from_nanos(15), SimTime::from_nanos(35)).len(), 2);
        assert_eq!(j.for_flow(FlowId(7)).len(), 2);
        let journey = j.packet_journey(PacketId(100));
        assert_eq!(journey.len(), 2);
        assert_eq!(journey[0].target, AgentId(1));
        assert_eq!(journey[1].target, AgentId(3));
    }

    #[test]
    fn render_is_nonempty_and_line_per_event() {
        let mut j = Journal::new(10);
        j.record(SimTime::from_nanos(1), &arrival(1, 1, 0, 1));
        j.record(SimTime::from_nanos(2), &Event::TxComplete { agent: AgentId(0), port: 0 });
        let text = j.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("tx-complete"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = Journal::new(0);
    }
}
