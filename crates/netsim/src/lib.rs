//! # pels-netsim — a discrete-event packet network simulator
//!
//! This crate is the ns2 substitute for the PELS reproduction: a
//! deterministic, single-threaded, packet-level discrete-event simulator
//! providing everything the paper's evaluation needs from the network:
//!
//! * a virtual clock and event heap with stable FIFO tie-breaking
//!   ([`event`], [`time`]),
//! * agents (hosts/routers) dispatched by id ([`sim`]),
//! * deterministic parallel execution — a topology partitioner and a
//!   conservative windowed multi-shard executor whose results are
//!   byte-identical at every worker count ([`shard`]),
//! * output ports that serialize one packet at a time over links with a
//!   configurable rate and propagation delay ([`port`]),
//! * composable queue disciplines — DropTail, RED, strict priority,
//!   deficit-weighted round robin, a uniform-loss FIFO ([`disc`]), and
//!   Random Early Marking ([`rem`]) and virtual-finish-time WFQ ([`wfq`]),
//! * a destination-routed store-and-forward router ([`router`]) and a
//!   dumbbell topology builder ([`topology`]),
//! * simplified TCP Reno cross traffic ([`tcp`]) and CBR load generators
//!   ([`cbr`]),
//! * deterministic fault injection — scripted link outages, bandwidth
//!   degradation, control-packet loss/duplication/reordering, and queue
//!   flushes ([`faults`], [`error`]),
//! * measurement helpers ([`stats`], [`hist`]),
//! * and the clock abstraction ([`clock`]) that lets the same agent state
//!   machines run under simulated or wall time (see the `pels-wire` crate).
//!
//! Determinism is a hard invariant: a run is a pure function of the topology
//! and the seed. All randomness flows from seeded [`rand::rngs::StdRng`]
//! instances, and simultaneous events fire in scheduling order.
//!
//! ## Example: two hosts over a bottleneck
//!
//! ```
//! use pels_netsim::disc::{DropTail, QueueLimit};
//! use pels_netsim::packet::{AgentId, FlowId};
//! use pels_netsim::port::Port;
//! use pels_netsim::router::{RouteTable, Router};
//! use pels_netsim::sim::Simulator;
//! use pels_netsim::tcp::{TcpSink, TcpSource};
//! use pels_netsim::time::{Rate, SimDuration, SimTime};
//!
//! let mut sim = Simulator::new(42);
//! let (src, router, sink) = (AgentId(0), AgentId(1), AgentId(2));
//! let q = || Box::new(DropTail::new(QueueLimit::Packets(50)));
//! let delay = SimDuration::from_millis(5);
//!
//! sim.add_agent(Box::new(TcpSource::new(
//!     Port::new(0, router, Rate::from_mbps(10.0), delay, q()),
//!     FlowId(1), sink, 1000, SimDuration::ZERO,
//! )));
//! let mut routes = RouteTable::new();
//! routes.add(sink, 0).add(src, 1);
//! sim.add_agent(Box::new(Router::new(vec![
//!     Port::new(0, sink, Rate::from_mbps(1.0), delay, q()),
//!     Port::new(1, src, Rate::from_mbps(10.0), delay, q()),
//! ], routes)));
//! sim.add_agent(Box::new(TcpSink::new(
//!     Port::new(0, router, Rate::from_mbps(10.0), delay, q()),
//!     FlowId(1),
//! )));
//!
//! sim.run_until(SimTime::from_secs_f64(5.0));
//! assert!(sim.agent::<TcpSink>(sink).delivered() > 100);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cbr;
pub mod clock;
pub mod disc;
pub mod error;
pub mod event;
pub mod fasthash;
pub mod faults;
pub mod hist;
pub mod journal;
pub mod packet;
pub mod port;
pub mod rem;
pub mod router;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod wfq;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use error::SimError;
pub use faults::{ControlFaultPolicy, FaultAction, FaultSchedule, FaultStats};
pub use packet::{AgentId, Feedback, FlowId, Packet, PacketId, PacketKind};
pub use shard::{Partition, ShardedSimulator, TopologyGraph};
pub use sim::{Agent, AgentLookup, Context, Simulator};
pub use time::{Rate, SimDuration, SimTime};
