//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is a
//! monotone counter assigned at scheduling time, so events scheduled for the
//! same instant fire in FIFO order. This makes every simulation run
//! bit-reproducible for a fixed seed — a hard invariant of this workspace
//! (see the property tests in this module and in `tests/`).

use crate::faults::FaultAction;
use crate::packet::{AgentId, Packet};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event, dispatched to the agent it addresses.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A packet finished propagating and arrives at `dst`.
    PacketArrival {
        /// Receiving agent.
        dst: AgentId,
        /// The arriving packet.
        packet: Packet,
    },
    /// An output port of `agent` finished serializing a packet.
    TxComplete {
        /// Owning agent.
        agent: AgentId,
        /// Index of the port within the agent.
        port: usize,
    },
    /// A timer set by `agent` fired.
    Timer {
        /// Owning agent.
        agent: AgentId,
        /// Opaque token chosen by the agent when scheduling.
        token: u64,
    },
    /// A scripted fault fires (see [`crate::faults`]). Agent-targeted
    /// actions dispatch to [`crate::sim::Agent::on_fault`]; global control
    /// policy actions are absorbed by the simulator itself.
    Fault {
        /// Targeted agent ([`crate::faults::GLOBAL`] for policy actions).
        agent: AgentId,
        /// The fault to apply.
        action: FaultAction,
    },
}

impl Event {
    /// The agent this event is dispatched to.
    pub fn target(&self) -> AgentId {
        match self {
            Event::PacketArrival { dst, .. } => *dst,
            Event::TxComplete { agent, .. } => *agent,
            Event::Timer { agent, .. } => *agent,
            Event::Fault { agent, .. } => *agent,
        }
    }
}

/// A heap entry: the event lives in the slab, the heap holds only the
/// ordering key and the slab index. [`Event`] is ~150 bytes (a
/// [`Packet`] rides inline), and heap sifts move entries by value — with
/// events stored out of line each swap moves 32 bytes instead, and the
/// `(time, seq)` lexicographic order packs into one `u128` comparison
/// (`time` in the high 64 bits, `seq` below it).
#[derive(Debug, PartialEq, Eq)]
struct Scheduled {
    key: u128,
    slot: u32,
}

impl Scheduled {
    fn new(time: SimTime, seq: u64, slot: u32) -> Self {
        Scheduled { key: (u128::from(time.as_nanos()) << 64) | u128::from(seq), slot }
    }

    fn time(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other.key.cmp(&self.key)
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of pending events.
///
/// # Examples
///
/// ```
/// use pels_netsim::event::{Event, EventQueue};
/// use pels_netsim::packet::AgentId;
/// use pels_netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), Event::Timer { agent: AgentId(0), token: 2 });
/// q.schedule(SimTime::from_nanos(10), Event::Timer { agent: AgentId(0), token: 1 });
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_nanos(10));
/// assert!(matches!(ev, Event::Timer { token: 1, .. }));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    /// Out-of-line event storage; `None` slots are free and their indices
    /// are kept in `free` for reuse, so steady-state scheduling never
    /// allocates.
    slab: Vec<Option<Event>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` events are pending at once.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(event);
                i
            }
            None => {
                let i = u32::try_from(self.slab.len()).expect("event queue slot overflow");
                self.slab.push(Some(event));
                i
            }
        };
        self.heap.push(Scheduled::new(time, seq, slot));
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let s = self.heap.pop()?;
        let event = self.slab[s.slot as usize].take().expect("heap entry without event");
        self.free.push(s.slot);
        Some((s.time(), event))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(Scheduled::time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> Event {
        Event::Timer { agent: AgentId(0), token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, tok) in [(30u64, 3u64), (10, 1), (20, 2)] {
            q.schedule(SimTime::from_nanos(t), timer(tok));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for tok in 0..100u64 {
            q.schedule(t, timer(tok));
        }
        for expect in 0..100u64 {
            let (pt, ev) = q.pop().unwrap();
            assert_eq!(pt, t);
            assert!(matches!(ev, Event::Timer { token, .. } if token == expect));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn event_target() {
        assert_eq!(timer(0).target(), AgentId(0));
        let ev = Event::TxComplete { agent: AgentId(7), port: 1 };
        assert_eq!(ev.target(), AgentId(7));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_nanos(9), timer(0));
        q.schedule(SimTime::from_nanos(4), timer(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(4)));
        assert_eq!(q.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popped timestamps are non-decreasing, and ties preserve insertion
        /// order, for any schedule sequence.
        #[test]
        fn pop_order_is_stable(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), Event::Timer { agent: AgentId(0), token: i as u64 });
            }
            let mut last: Option<(SimTime, u64)> = None;
            while let Some((t, Event::Timer { token, .. })) = q.pop() {
                if let Some((lt, ltok)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        // FIFO among equal timestamps implies insertion order,
                        // which for equal times means increasing token only if
                        // the earlier token had an equal timestamp.
                        prop_assert!(token > ltok || times[token as usize] != times[ltok as usize]);
                    }
                }
                last = Some((t, token));
            }
        }
    }
}
