//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is a
//! monotone counter assigned at scheduling time, so events scheduled for the
//! same instant fire in FIFO order. This makes every simulation run
//! bit-reproducible for a fixed seed — a hard invariant of this workspace
//! (see the property tests in this module and in `tests/`).
//!
//! # Storage layout
//!
//! The queue stores events in two tiers:
//!
//! * **Inline entries.** Pending events are a compact [`Ev`] (16 bytes)
//!   paired with a `u128` ordering key — 32 bytes total, stored *by value*
//!   in the heap and the sorted run. Timers and tx-completes carry their
//!   whole payload inline; nothing is allocated for them.
//! * **Arenas.** Packet payloads (~140 bytes) live in a free-list slab
//!   and ride through the queue as a [`PacketSlot`] handle; the rare
//!   fault actions live in a second slab. Heap sifts therefore move 32
//!   bytes per swap instead of a whole packet, and a packet is copied
//!   exactly twice on its way through a hop (once into the arena when the
//!   source hands it over, once out on final delivery) — queue disciplines
//!   and ports shuffle [`PacketSlot`]s, not payloads.
//!
//! # Batched draining
//!
//! Popping exclusively from a binary heap pays a cache-cold sift-down per
//! event. Instead the queue drains the heap [`RUN_BATCH`] entries at a time
//! into a *sorted run* (descending, so the next event is an `O(1)`
//! `Vec::pop`). The run is fenced by `run_ceiling`: every key in the heap
//! is `>= run_ceiling` and every key in the run is `< run_ceiling`, so a
//! newly scheduled event lands in the run (sorted insert into at most
//! `RUN_BATCH` cache-hot entries) exactly when it must fire before the
//! fence, and in the heap otherwise. Keys are unique, which makes the fence
//! exact: total pop order is identical to a pure heap, bit for bit.

use crate::faults::FaultAction;
use crate::packet::{AgentId, Packet};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event, dispatched to the agent it addresses.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A packet finished propagating and arrives at `dst`.
    PacketArrival {
        /// Receiving agent.
        dst: AgentId,
        /// The arriving packet.
        packet: Packet,
    },
    /// An output port of `agent` finished serializing a packet.
    TxComplete {
        /// Owning agent.
        agent: AgentId,
        /// Index of the port within the agent.
        port: usize,
    },
    /// A timer set by `agent` fired.
    Timer {
        /// Owning agent.
        agent: AgentId,
        /// Opaque token chosen by the agent when scheduling.
        token: u64,
    },
    /// A scripted fault fires (see [`crate::faults`]). Agent-targeted
    /// actions dispatch to [`crate::sim::Agent::on_fault`]; global control
    /// policy actions are absorbed by the simulator itself.
    Fault {
        /// Targeted agent ([`crate::faults::GLOBAL`] for policy actions).
        agent: AgentId,
        /// The fault to apply.
        action: FaultAction,
    },
}

impl Event {
    /// The agent this event is dispatched to.
    pub fn target(&self) -> AgentId {
        match self {
            Event::PacketArrival { dst, .. } => *dst,
            Event::TxComplete { agent, .. } => *agent,
            Event::Timer { agent, .. } => *agent,
            Event::Fault { agent, .. } => *agent,
        }
    }
}

/// Handle to a packet parked in the queue's packet arena.
///
/// Slots are opaque to queue disciplines: a discipline orders and drops
/// [`crate::disc::QEntry`] values without ever dereferencing the payload.
/// Only the simulator core (via [`crate::sim::Context`]) stashes and takes
/// packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketSlot(pub u32);

/// A free-list slab: steady-state insert/take never allocates.
#[derive(Debug)]
struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab { slots: Vec::new(), free: Vec::new() }
    }
}

impl<T> Slab<T> {
    fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(value);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("slab slot overflow");
                self.slots.push(Some(value));
                i
            }
        }
    }

    fn take(&mut self, i: u32) -> T {
        let v = self.slots[i as usize].take().expect("empty slab slot");
        self.free.push(i);
        v
    }

    fn get(&self, i: u32) -> &T {
        self.slots[i as usize].as_ref().expect("empty slab slot")
    }

    fn get_mut(&mut self, i: u32) -> &mut T {
        self.slots[i as usize].as_mut().expect("empty slab slot")
    }

    fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// Compact in-queue event: 16 bytes, stored by value in heap entries.
/// Payloads too large to inline (packets, fault actions) are referenced by
/// slab index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ev {
    /// A packet (parked at `slot`) arrives at `dst`.
    Arrival { dst: AgentId, slot: PacketSlot },
    /// Port `port` of `agent` finished serializing.
    Tx { agent: AgentId, port: u32 },
    /// A timer of `agent` fired.
    Timer { agent: AgentId, token: u64 },
    /// Fault action parked at index `idx` fires at `agent`.
    Fault { agent: AgentId, idx: u32 },
}

/// A pending event: ordering key plus inline compact event. 32 bytes; heap
/// sifts and run shifts move entries by value. The `(time, seq)`
/// lexicographic order packs into one `u128` comparison (`time` in the high
/// 64 bits, `seq` below it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    key: u128,
    ev: Ev,
}

impl Entry {
    fn time(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other.key.cmp(&self.key)
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// How many entries a refill drains from the heap into the sorted run.
/// Small enough that the run (and sorted inserts into it) stay L1-resident,
/// large enough to amortize the drain loop.
const RUN_BATCH: usize = 128;

/// Priority queue of pending events.
///
/// # Examples
///
/// ```
/// use pels_netsim::event::{Event, EventQueue};
/// use pels_netsim::packet::AgentId;
/// use pels_netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), Event::Timer { agent: AgentId(0), token: 2 });
/// q.schedule(SimTime::from_nanos(10), Event::Timer { agent: AgentId(0), token: 1 });
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_nanos(10));
/// assert!(matches!(ev, Event::Timer { token: 1, .. }));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    /// Drained batch, sorted descending by key: the next event to fire is
    /// `run.last()`. Invariant: when non-empty, every key here is
    /// `< run_ceiling` and every heap key is `>= run_ceiling`.
    run: Vec<Entry>,
    run_ceiling: u128,
    packets: Slab<Packet>,
    fault_slab: Slab<FaultAction>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(time: SimTime, seq: u64) -> u128 {
        (u128::from(time.as_nanos()) << 64) | u128::from(seq)
    }

    /// Parks a packet payload in the arena and returns its slot.
    pub fn stash_packet(&mut self, packet: Packet) -> PacketSlot {
        PacketSlot(self.packets.insert(packet))
    }

    /// Removes and returns the packet parked at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant (double-take or a forged slot).
    pub fn take_packet(&mut self, slot: PacketSlot) -> Packet {
        self.packets.take(slot.0)
    }

    /// The packet parked at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn packet(&self, slot: PacketSlot) -> &Packet {
        self.packets.get(slot.0)
    }

    /// The packet parked at `slot`, mutably (feedback stamping in place).
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn packet_mut(&mut self, slot: PacketSlot) -> &mut Packet {
        self.packets.get_mut(slot.0)
    }

    /// Number of packets currently parked in the arena (queued in
    /// disciplines, serializing, or in flight).
    pub fn live_packets(&self) -> usize {
        self.packets.len()
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` packets or faults are pending at once.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let ev = match event {
            Event::PacketArrival { dst, packet } => {
                Ev::Arrival { dst, slot: self.stash_packet(packet) }
            }
            Event::TxComplete { agent, port } => {
                Ev::Tx { agent, port: u32::try_from(port).expect("port index overflow") }
            }
            Event::Timer { agent, token } => Ev::Timer { agent, token },
            Event::Fault { agent, action } => {
                Ev::Fault { agent, idx: self.fault_slab.insert(action) }
            }
        };
        self.schedule_ev(time, ev);
    }

    /// Schedules a compact event (the allocation-free hot path).
    pub(crate) fn schedule_ev(&mut self, time: SimTime, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { key: Self::key(time, seq), ev };
        if !self.run.is_empty() && entry.key < self.run_ceiling {
            // Fires before the fence: sorted insert into the hot run.
            // Keys are unique so the position is unambiguous.
            let at = self.run.partition_point(|e| e.key > entry.key);
            self.run.insert(at, entry);
        } else {
            self.heap.push(entry);
        }
    }

    /// Takes the fault action parked at `idx`.
    pub(crate) fn take_fault(&mut self, idx: u32) -> FaultAction {
        self.fault_slab.take(idx)
    }

    fn refill(&mut self) {
        debug_assert!(self.run.is_empty());
        for _ in 0..RUN_BATCH {
            match self.heap.pop() {
                Some(e) => self.run.push(e),
                None => break,
            }
        }
        // Heap pops arrive in ascending key order; the run pops from the
        // back, so store it descending.
        self.run.reverse();
        // Keys are unique, so max(run) + 1 separates the run from the heap
        // exactly: everything still in the heap compares >= the fence.
        self.run_ceiling = match self.run.first() {
            Some(e) => e.key + 1,
            None => 0,
        };
        debug_assert!(self.heap.peek().is_none_or(|e| e.key >= self.run_ceiling));
    }

    /// Removes and returns the earliest compact event, or `None` when empty.
    pub(crate) fn pop_entry(&mut self) -> Option<(SimTime, Ev)> {
        if self.run.is_empty() {
            self.refill();
        }
        self.run.pop().map(|e| (e.time(), e.ev))
    }

    /// Like [`EventQueue::pop_entry`], but only yields events at or before
    /// `end` (strictly before when `inclusive` is false). The bound check
    /// happens *before* removal, so rejected events stay queued.
    pub(crate) fn pop_entry_before(
        &mut self,
        end: SimTime,
        inclusive: bool,
    ) -> Option<(SimTime, Ev)> {
        if self.run.is_empty() {
            self.refill();
        }
        let fence = if inclusive {
            (u128::from(end.as_nanos()) + 1) << 64
        } else {
            u128::from(end.as_nanos()) << 64
        };
        match self.run.last() {
            Some(e) if e.key < fence => self.run.pop().map(|e| (e.time(), e.ev)),
            _ => None,
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let (time, ev) = self.pop_entry()?;
        let event = match ev {
            Ev::Arrival { dst, slot } => {
                Event::PacketArrival { dst, packet: self.take_packet(slot) }
            }
            Ev::Tx { agent, port } => Event::TxComplete { agent, port: port as usize },
            Ev::Timer { agent, token } => Event::Timer { agent, token },
            Ev::Fault { agent, idx } => Event::Fault { agent, action: self.take_fault(idx) },
        };
        Some((time, event))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self.run.last() {
            Some(e) => Some(e.time()),
            None => self.heap.peek().map(Entry::time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.run.len() + self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty() && self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> Event {
        Event::Timer { agent: AgentId(0), token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, tok) in [(30u64, 3u64), (10, 1), (20, 2)] {
            q.schedule(SimTime::from_nanos(t), timer(tok));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for tok in 0..100u64 {
            q.schedule(t, timer(tok));
        }
        for expect in 0..100u64 {
            let (pt, ev) = q.pop().unwrap();
            assert_eq!(pt, t);
            assert!(matches!(ev, Event::Timer { token, .. } if token == expect));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn event_target() {
        assert_eq!(timer(0).target(), AgentId(0));
        let ev = Event::TxComplete { agent: AgentId(7), port: 1 };
        assert_eq!(ev.target(), AgentId(7));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_nanos(9), timer(0));
        q.schedule(SimTime::from_nanos(4), timer(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(4)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn packet_payload_round_trips_through_arena() {
        use crate::packet::{FlowId, Packet};
        let mut q = EventQueue::new();
        let pkt = Packet::data(FlowId(3), AgentId(0), AgentId(1), 500).with_seq(9);
        q.schedule(SimTime::from_nanos(1), Event::PacketArrival { dst: AgentId(1), packet: pkt });
        assert_eq!(q.live_packets(), 1);
        let (_, ev) = q.pop().unwrap();
        match ev {
            Event::PacketArrival { dst, packet } => {
                assert_eq!(dst, AgentId(1));
                assert_eq!(packet.flow, FlowId(3));
                assert_eq!(packet.seq, 9);
            }
            other => panic!("expected arrival, got {other:?}"),
        }
        assert_eq!(q.live_packets(), 0, "pop must release the arena slot");
    }

    #[test]
    fn arena_slots_are_reused() {
        use crate::packet::{FlowId, Packet};
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            let pkt = Packet::data(FlowId(0), AgentId(0), AgentId(1), 100).with_seq(round);
            let slot = q.stash_packet(pkt);
            assert!(slot.0 < 2, "free list must recycle slots, got {slot:?}");
            let p = q.take_packet(slot);
            assert_eq!(p.seq, round);
        }
    }

    #[test]
    fn scheduling_into_the_hot_run_preserves_order() {
        // Drain far enough to force a refill, then schedule events that land
        // inside the run's fence and check total order is maintained.
        let mut q = EventQueue::new();
        for tok in 0..300u64 {
            q.schedule(SimTime::from_nanos(10 * tok + 1000), timer(tok));
        }
        // First pop triggers a refill of RUN_BATCH entries.
        let (t0, _) = q.pop().unwrap();
        assert_eq!(t0, SimTime::from_nanos(1000));
        // These fire before the 128-entry fence (and before many run keys).
        q.schedule(SimTime::from_nanos(1005), timer(900));
        q.schedule(SimTime::from_nanos(1015), timer(901));
        let mut last = t0;
        let mut seen = Vec::new();
        while let Some((t, Event::Timer { token, .. })) = q.pop() {
            assert!(t >= last, "pop order regressed: {t:?} after {last:?}");
            last = t;
            seen.push(token);
        }
        assert_eq!(seen.len(), 301);
        assert_eq!(seen[0], 900, "inserted event must fire in key order");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popped timestamps are non-decreasing, and ties preserve insertion
        /// order, for any schedule sequence.
        #[test]
        fn pop_order_is_stable(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), Event::Timer { agent: AgentId(0), token: i as u64 });
            }
            let mut last: Option<(SimTime, u64)> = None;
            while let Some((t, Event::Timer { token, .. })) = q.pop() {
                if let Some((lt, ltok)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        // FIFO among equal timestamps implies insertion order,
                        // which for equal times means increasing token only if
                        // the earlier token had an equal timestamp.
                        prop_assert!(token > ltok || times[token as usize] != times[ltok as usize]);
                    }
                }
                last = Some((t, token));
            }
        }

        /// Interleaved schedule/pop keeps global order: popping must never
        /// yield a time earlier than one already popped, no matter how
        /// schedules interleave with refills of the sorted run.
        #[test]
        fn interleaved_schedule_pop_is_monotone(
            script in proptest::collection::vec((0u64..1000, 0u8..4), 1..400)
        ) {
            let mut q = EventQueue::new();
            let mut horizon = 0u64;
            let mut last_popped = SimTime::ZERO;
            for (token, (dt, pops)) in script.into_iter().enumerate() {
                // Times never go backwards relative to the last pop, mirroring
                // how the simulator only schedules at or after `now`.
                horizon = horizon.max(last_popped.as_nanos()) + dt;
                q.schedule(
                    SimTime::from_nanos(horizon),
                    Event::Timer { agent: AgentId(0), token: token as u64 },
                );
                for _ in 0..pops {
                    if let Some((t, _)) = q.pop() {
                        prop_assert!(t >= last_popped);
                        last_popped = t;
                    }
                }
            }
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last_popped);
                last_popped = t;
            }
            prop_assert!(q.is_empty());
        }
    }
}
