//! Deterministic fault injection: scripted link failures, bandwidth
//! degradation, control-plane packet loss, and router queue flushes.
//!
//! A [`FaultSchedule`] is a list of `(time, target, action)` triples. It is
//! installed into a [`crate::sim::Simulator`] *before or during* a run;
//! each entry becomes an [`crate::event::Event::Fault`] in the ordinary
//! event queue, so faults interleave with traffic in the same deterministic
//! `(time, seq)` order as every other event and are recorded by the journal.
//! A run with a fault schedule is still a pure function of (topology, seed,
//! schedule).
//!
//! Two kinds of action exist:
//!
//! * **Agent-targeted** ([`FaultAction::LinkDown`], [`FaultAction::LinkUp`],
//!   [`FaultAction::DegradeLink`], [`FaultAction::FlushQueues`]) — dispatched
//!   to the target agent's [`crate::sim::Agent::on_fault`] hook, which
//!   manipulates its own ports ([`apply_port_fault`] does the heavy lifting
//!   for any port-owning agent).
//! * **Simulator-global** ([`FaultAction::SetControlPolicy`],
//!   [`FaultAction::ClearControlPolicy`]) — absorbed by the simulator
//!   itself: while a [`ControlFaultPolicy`] is active, arriving *control*
//!   packets (ACK/NACK kinds) are dropped, duplicated, or delayed
//!   (reordered) using the simulation RNG.
//!
//! Link-down semantics: a downed port stops serializing; offered packets
//! still pass through the queue discipline (and may be tail-dropped there),
//! so nothing leaks from the conservation accounting. On link-up the port
//! resumes draining its backlog. A queue flush counts every discarded packet
//! in the port's drop statistics for the same reason.

use crate::packet::AgentId;
use crate::port::Port;
use crate::sim::Context;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Target id used for simulator-global fault actions; never dispatched to an
/// agent, so any value works — this one makes intent obvious in journals.
pub const GLOBAL: AgentId = AgentId(u32::MAX);

/// Probabilistic mangling applied to arriving control packets (ACK/NACK)
/// while the policy is installed.
///
/// Each arriving control packet draws one uniform sample; the `drop`,
/// `duplicate`, and `reorder` fractions partition `[0, 1)` cumulatively,
/// so their sum must be at most 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlFaultPolicy {
    /// Fraction of control packets silently discarded.
    pub drop: f64,
    /// Fraction delivered twice (the copy arrives `reorder_delay` later).
    pub duplicate: f64,
    /// Fraction delayed by `reorder_delay`, letting later packets overtake.
    pub reorder: f64,
    /// Extra delay applied to duplicated and reordered control packets.
    pub reorder_delay: SimDuration,
}

impl ControlFaultPolicy {
    /// A policy that only drops control packets.
    pub fn drop_fraction(drop: f64) -> Self {
        ControlFaultPolicy {
            drop,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_delay: SimDuration::from_millis(10),
        }
    }

    /// Validates the fractions: each in `[0, 1]`, sum at most 1.
    pub fn validate(&self) -> Result<(), crate::error::SimError> {
        let ok_frac = |x: f64| x.is_finite() && (0.0..=1.0).contains(&x);
        if !(ok_frac(self.drop) && ok_frac(self.duplicate) && ok_frac(self.reorder)) {
            return Err(crate::error::invalid_config("control fault fractions must be in [0,1]"));
        }
        if self.drop + self.duplicate + self.reorder > 1.0 + 1e-12 {
            return Err(crate::error::invalid_config(
                "control fault fractions must sum to at most 1",
            ));
        }
        Ok(())
    }
}

/// One fault, applied at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Cut a link: the port stops serializing (its queue keeps filling).
    LinkDown {
        /// Port index within the target agent.
        port: usize,
    },
    /// Restore a link; the port resumes draining its backlog.
    LinkUp {
        /// Port index within the target agent.
        port: usize,
    },
    /// Scale a link's *nominal* rate by `factor` (1.0 restores it).
    DegradeLink {
        /// Port index within the target agent.
        port: usize,
        /// Multiplier applied to the rate the port was built with.
        factor: f64,
    },
    /// Discard every queued packet on all of the agent's ports (a router
    /// reboot). Flushed packets count as drops in port statistics.
    FlushQueues,
    /// Install a simulator-global control-packet mangling policy.
    SetControlPolicy(ControlFaultPolicy),
    /// Remove the control-packet policy.
    ClearControlPolicy,
}

/// A `(time, target, action)` triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// The agent whose ports it manipulates ([`GLOBAL`] for policy actions).
    pub agent: AgentId,
    /// What happens.
    pub action: FaultAction,
}

/// An ordered script of faults. Build one with the fluent helpers, then
/// install it with [`crate::sim::Simulator::install_faults`].
///
/// # Examples
///
/// ```
/// use pels_netsim::faults::FaultSchedule;
/// use pels_netsim::packet::AgentId;
/// use pels_netsim::time::SimTime;
///
/// let mut faults = FaultSchedule::new();
/// faults.link_outage(
///     AgentId(0),
///     0,
///     SimTime::from_secs_f64(5.0),
///     SimTime::from_secs_f64(7.0),
/// );
/// assert_eq!(faults.len(), 2); // down + up
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one fault.
    pub fn push(&mut self, at: SimTime, agent: AgentId, action: FaultAction) -> &mut Self {
        self.events.push(FaultEvent { at, agent, action });
        self
    }

    /// Cut `agent`'s port `port` at `from` and restore it at `to`.
    pub fn link_outage(
        &mut self,
        agent: AgentId,
        port: usize,
        from: SimTime,
        to: SimTime,
    ) -> &mut Self {
        assert!(from < to, "outage must end after it starts");
        self.push(from, agent, FaultAction::LinkDown { port });
        self.push(to, agent, FaultAction::LinkUp { port })
    }

    /// Degrade `agent`'s port `port` to `factor` of nominal rate during
    /// `[from, to)`, restoring full rate at `to`.
    pub fn degraded_window(
        &mut self,
        agent: AgentId,
        port: usize,
        factor: f64,
        from: SimTime,
        to: SimTime,
    ) -> &mut Self {
        assert!(from < to, "degradation window must end after it starts");
        self.push(from, agent, FaultAction::DegradeLink { port, factor });
        self.push(to, agent, FaultAction::DegradeLink { port, factor: 1.0 })
    }

    /// Mangle control packets per `policy` during `[from, to)`.
    pub fn control_fault_window(
        &mut self,
        policy: ControlFaultPolicy,
        from: SimTime,
        to: SimTime,
    ) -> &mut Self {
        assert!(from < to, "control fault window must end after it starts");
        self.push(from, GLOBAL, FaultAction::SetControlPolicy(policy));
        self.push(to, GLOBAL, FaultAction::ClearControlPolicy)
    }

    /// Reboot `agent` (flush every queue) at `at`.
    pub fn flush_at(&mut self, agent: AgentId, at: SimTime) -> &mut Self {
        self.push(at, agent, FaultAction::FlushQueues)
    }

    /// Generates `flaps` random link outages of `agent`'s port `port` inside
    /// `window`, each lasting up to `max_outage`, using `rng`. Deterministic
    /// for a given RNG state, so property tests can derive arbitrary but
    /// reproducible schedules from the simulation seed.
    pub fn random_link_flaps(
        rng: &mut StdRng,
        agent: AgentId,
        port: usize,
        window: (SimTime, SimTime),
        flaps: usize,
        max_outage: SimDuration,
    ) -> Self {
        assert!(window.0 < window.1, "flap window must be non-empty");
        assert!(!max_outage.is_zero(), "max outage must be positive");
        let span_ns = window.1.duration_since(window.0).as_secs_f64() * 1e9;
        let mut s = FaultSchedule::new();
        for _ in 0..flaps {
            let start_off: f64 = rng.gen::<f64>() * span_ns;
            let len_ns: f64 = rng.gen::<f64>() * (max_outage.as_secs_f64() * 1e9);
            let from = window.0 + SimDuration::from_nanos(start_off as u64);
            let to = from + SimDuration::from_nanos((len_ns as u64).max(1));
            s.link_outage(agent, port, from, to);
        }
        s
    }

    /// The scripted faults, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scripted faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Counters kept by the simulator for control-plane faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault events dispatched (agent-targeted and global).
    pub faults_applied: u64,
    /// Control packets discarded by the active policy.
    pub control_dropped: u64,
    /// Control packets duplicated by the active policy.
    pub control_duplicated: u64,
    /// Control packets delayed (reordered) by the active policy.
    pub control_reordered: u64,
}

/// Applies an agent-targeted fault to a slice of ports. Any port-owning
/// agent can implement [`crate::sim::Agent::on_fault`] with a one-line call
/// to this. Global policy actions are no-ops here (the simulator absorbs
/// them before dispatch).
pub fn apply_port_fault(ports: &mut [Port], action: &FaultAction, ctx: &mut Context<'_>) {
    match *action {
        FaultAction::LinkDown { port } => {
            if let Some(p) = ports.get_mut(port) {
                p.set_link_up(false);
            }
        }
        FaultAction::LinkUp { port } => {
            if let Some(p) = ports.get_mut(port) {
                p.set_link_up(true);
                p.restart(ctx);
            }
        }
        FaultAction::DegradeLink { port, factor } => {
            if let Some(p) = ports.get_mut(port) {
                p.set_rate_factor(factor);
            }
        }
        FaultAction::FlushQueues => {
            for p in ports.iter_mut() {
                p.flush(ctx);
            }
        }
        FaultAction::SetControlPolicy(_) | FaultAction::ClearControlPolicy => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schedule_builders_order_and_count() {
        let mut s = FaultSchedule::new();
        s.link_outage(AgentId(1), 0, SimTime::from_nanos(10), SimTime::from_nanos(20))
            .flush_at(AgentId(2), SimTime::from_nanos(15))
            .control_fault_window(
                ControlFaultPolicy::drop_fraction(0.5),
                SimTime::from_nanos(5),
                SimTime::from_nanos(25),
            );
        assert_eq!(s.len(), 5);
        assert!(matches!(s.events()[0].action, FaultAction::LinkDown { port: 0 }));
        assert_eq!(s.events()[2].agent, AgentId(2));
        assert_eq!(s.events()[3].agent, GLOBAL);
    }

    #[test]
    fn random_flaps_are_deterministic_per_seed() {
        let window = (SimTime::ZERO, SimTime::from_secs_f64(10.0));
        let mk = || {
            let mut rng = StdRng::seed_from_u64(7);
            FaultSchedule::random_link_flaps(
                &mut rng,
                AgentId(0),
                0,
                window,
                4,
                SimDuration::from_millis(500),
            )
        };
        assert_eq!(mk(), mk());
        assert_eq!(mk().len(), 8);
    }

    #[test]
    fn policy_validation() {
        assert!(ControlFaultPolicy::drop_fraction(0.3).validate().is_ok());
        assert!(ControlFaultPolicy::drop_fraction(1.5).validate().is_err());
        let p = ControlFaultPolicy {
            drop: 0.6,
            duplicate: 0.3,
            reorder: 0.3,
            reorder_delay: SimDuration::from_millis(1),
        };
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "outage must end after it starts")]
    fn rejects_inverted_outage() {
        FaultSchedule::new().link_outage(
            AgentId(0),
            0,
            SimTime::from_nanos(20),
            SimTime::from_nanos(10),
        );
    }
}
