//! A generic store-and-forward router that forwards packets by destination.
//!
//! Specialized routers (the PELS AQM router, the best-effort comparator)
//! live in `pels-core` and embed the same [`Port`]s; this one provides plain
//! destination-based forwarding for access/aggregation nodes and tests.

use crate::fasthash::FastMap;
use crate::faults::{apply_port_fault, FaultAction};
use crate::packet::{AgentId, Packet};
use crate::port::Port;
use crate::sim::{Agent, Context};
use std::any::Any;

/// Destination-based forwarding table: `dst agent -> output port index`.
///
/// Looked up once per forwarded packet, so it hashes with the fixed-seed
/// [`FastMap`] rather than SipHash.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: FastMap<AgentId, usize>,
    default_port: Option<usize>,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host route.
    pub fn add(&mut self, dst: AgentId, port: usize) -> &mut Self {
        self.routes.insert(dst, port);
        self
    }

    /// Sets the default route used when no host route matches.
    pub fn set_default(&mut self, port: usize) -> &mut Self {
        self.default_port = Some(port);
        self
    }

    /// Looks up the output port for `dst`.
    pub fn lookup(&self, dst: AgentId) -> Option<usize> {
        self.routes.get(&dst).copied().or(self.default_port)
    }
}

/// A FIFO store-and-forward router.
///
/// Packets addressed to an unknown destination (no route, no default) are
/// counted in [`Router::no_route_drops`] and discarded.
#[derive(Debug)]
pub struct Router {
    ports: Vec<Port>,
    routes: RouteTable,
    /// Packets dropped because no route matched.
    pub no_route_drops: u64,
}

impl Router {
    /// Creates a router from its ports and routing table.
    pub fn new(ports: Vec<Port>, routes: RouteTable) -> Self {
        for (i, p) in ports.iter().enumerate() {
            assert_eq!(p.index, i, "port index must match its position");
        }
        Router { ports, routes, no_route_drops: 0 }
    }

    /// Access a port (e.g. to read statistics after a run).
    pub fn port(&self, i: usize) -> &Port {
        &self.ports[i]
    }

    /// Mutable access to a port.
    pub fn port_mut(&mut self, i: usize) -> &mut Port {
        &mut self.ports[i]
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }
}

impl Agent for Router {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        match self.routes.lookup(packet.dst) {
            Some(port) => {
                self.ports[port].send(packet, ctx);
            }
            None => {
                self.no_route_drops += 1;
            }
        }
    }

    fn on_tx_complete(&mut self, port: usize, ctx: &mut Context<'_>) {
        self.ports[port].on_tx_complete(ctx);
    }

    fn on_fault(&mut self, action: &FaultAction, ctx: &mut Context<'_>) {
        apply_port_fault(&mut self.ports, action, ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disc::{DropTail, QueueLimit};
    use crate::packet::FlowId;
    use crate::sim::Simulator;
    use crate::time::{Rate, SimDuration, SimTime};

    struct Sink {
        got: Vec<Packet>,
    }
    impl Agent for Sink {
        fn on_packet(&mut self, p: Packet, _ctx: &mut Context<'_>) {
            self.got.push(p);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Injector {
        router: AgentId,
        dsts: Vec<AgentId>,
    }
    impl Agent for Injector {
        fn start(&mut self, ctx: &mut Context<'_>) {
            for (i, &dst) in self.dsts.iter().enumerate() {
                let pkt = Packet::data(FlowId(i as u32), ctx.self_id, dst, 500)
                    .with_id(ctx.alloc_packet_id());
                ctx.deliver(self.router, SimDuration::from_millis(1), pkt);
            }
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn port_to(index: usize, peer: AgentId) -> Port {
        Port::new(
            index,
            peer,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(5),
            Box::new(DropTail::new(QueueLimit::Packets(100))),
        )
    }

    #[test]
    fn forwards_by_destination() {
        let mut sim = Simulator::new(1);
        let router_id = AgentId(0);
        let sink_a = AgentId(1);
        let sink_b = AgentId(2);

        let mut routes = RouteTable::new();
        routes.add(sink_a, 0).add(sink_b, 1);
        sim.add_agent(Box::new(Router::new(vec![port_to(0, sink_a), port_to(1, sink_b)], routes)));
        sim.add_agent(Box::new(Sink { got: vec![] }));
        sim.add_agent(Box::new(Sink { got: vec![] }));
        sim.add_agent(Box::new(Injector { router: router_id, dsts: vec![sink_a, sink_b, sink_a] }));

        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<Sink>(sink_a).got.len(), 2);
        assert_eq!(sim.agent::<Sink>(sink_b).got.len(), 1);
    }

    #[test]
    fn unroutable_packets_are_counted() {
        let mut sim = Simulator::new(1);
        let router_id = AgentId(0);
        let sink = AgentId(1);
        let nowhere = AgentId(99);
        let mut routes = RouteTable::new();
        routes.add(sink, 0);
        sim.add_agent(Box::new(Router::new(vec![port_to(0, sink)], routes)));
        sim.add_agent(Box::new(Sink { got: vec![] }));
        sim.add_agent(Box::new(Injector { router: router_id, dsts: vec![nowhere] }));
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<Router>(router_id).no_route_drops, 1);
    }

    #[test]
    fn default_route_catches_unknown_destinations() {
        let mut sim = Simulator::new(1);
        let router_id = AgentId(0);
        let sink = AgentId(1);
        let mut routes = RouteTable::new();
        routes.set_default(0);
        sim.add_agent(Box::new(Router::new(vec![port_to(0, sink)], routes)));
        sim.add_agent(Box::new(Sink { got: vec![] }));
        sim.add_agent(Box::new(Injector { router: router_id, dsts: vec![sink] }));
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<Sink>(sink).got.len(), 1);
    }

    #[test]
    #[should_panic(expected = "port index must match")]
    fn misindexed_ports_rejected() {
        let _ = Router::new(vec![port_to(1, AgentId(1))], RouteTable::new());
    }
}
