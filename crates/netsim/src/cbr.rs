//! A constant-bit-rate source: emits fixed-size packets at a fixed rate,
//! optionally only during an on-interval. Used as background/interfering
//! traffic (e.g. to move a bottleneck mid-experiment) and as a load
//! generator in tests.

use crate::packet::{AgentId, FlowId, Packet};
use crate::port::Port;
use crate::sim::{Agent, Context};
use crate::time::{Rate, SimDuration, SimTime};
use std::any::Any;

/// Configuration of a [`CbrSource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CbrConfig {
    /// Flow identifier.
    pub flow: FlowId,
    /// Destination agent.
    pub dst: AgentId,
    /// Emission rate.
    pub rate: Rate,
    /// Packet size, bytes.
    pub packet_bytes: u32,
    /// Wire class (PELS color or Internet class).
    pub class: u8,
    /// When to start emitting.
    pub start_at: SimDuration,
    /// When to stop emitting (absolute simulation time); `SimTime::MAX`
    /// for never.
    pub stop_at: SimTime,
}

impl CbrConfig {
    /// A convenience constructor for an always-on flow.
    pub fn new(flow: FlowId, dst: AgentId, rate: Rate, packet_bytes: u32, class: u8) -> Self {
        CbrConfig {
            flow,
            dst,
            rate,
            packet_bytes,
            class,
            start_at: SimDuration::ZERO,
            stop_at: SimTime::MAX,
        }
    }
}

/// The CBR source agent.
#[derive(Debug)]
pub struct CbrSource {
    cfg: CbrConfig,
    port: Port,
    gap: SimDuration,
    seq: u64,
    /// Packets emitted so far.
    pub sent: u64,
}

impl CbrSource {
    /// Creates a source sending through `port`.
    ///
    /// # Panics
    ///
    /// Panics if the rate or packet size is zero.
    pub fn new(cfg: CbrConfig, port: Port) -> Self {
        assert!(cfg.rate.as_bps() > 0, "rate must be positive");
        assert!(cfg.packet_bytes > 0, "packet size must be positive");
        let gap =
            SimDuration::from_secs_f64(cfg.packet_bytes as f64 * 8.0 / cfg.rate.as_bps() as f64);
        CbrSource { cfg, port, gap, seq: 0, sent: 0 }
    }

    /// The inter-packet gap implied by the configured rate.
    pub fn gap(&self) -> SimDuration {
        self.gap
    }
}

impl Agent for CbrSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.schedule_timer(self.cfg.start_at, 0);
    }

    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        if ctx.now >= self.cfg.stop_at {
            return;
        }
        let mut pkt = Packet::data(self.cfg.flow, ctx.self_id, self.cfg.dst, self.cfg.packet_bytes)
            .with_class(self.cfg.class)
            .with_seq(self.seq)
            .with_id(ctx.alloc_packet_id());
        pkt.sent_at = ctx.now;
        self.seq += 1;
        self.sent += 1;
        self.port.send(pkt, ctx);
        ctx.schedule_timer(self.gap, 0);
    }

    fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
        self.port.on_tx_complete(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disc::{DropTail, QueueLimit};
    use crate::sim::Simulator;

    struct Counter {
        got: u64,
        bytes: u64,
    }
    impl Agent for Counter {
        fn on_packet(&mut self, p: Packet, _ctx: &mut Context<'_>) {
            self.got += 1;
            self.bytes += p.size_bytes as u64;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build(cfg: CbrConfig) -> (Simulator, AgentId) {
        let mut sim = Simulator::new(1);
        let sink = AgentId(1);
        let port = Port::new(
            0,
            sink,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(100))),
        );
        sim.add_agent(Box::new(CbrSource::new(cfg, port)));
        sim.add_agent(Box::new(Counter { got: 0, bytes: 0 }));
        (sim, sink)
    }

    #[test]
    fn emits_at_the_configured_rate() {
        // 1 Mb/s of 500-byte packets = 250 packets/s.
        let cfg = CbrConfig::new(FlowId(9), AgentId(1), Rate::from_mbps(1.0), 500, 3);
        let (mut sim, sink) = build(cfg);
        sim.run_until(SimTime::from_secs_f64(4.0));
        let c = sim.agent::<Counter>(sink);
        assert!((995..=1005).contains(&c.got), "got {}", c.got);
        assert!((c.bytes as f64 * 8.0 / 4.0 - 1_000_000.0).abs() < 10_000.0);
    }

    #[test]
    fn respects_start_and_stop() {
        let cfg = CbrConfig {
            start_at: SimDuration::from_secs(1),
            stop_at: SimTime::from_secs_f64(2.0),
            ..CbrConfig::new(FlowId(9), AgentId(1), Rate::from_mbps(1.0), 500, 3)
        };
        let (mut sim, sink) = build(cfg);
        sim.run_until(SimTime::from_secs_f64(0.9));
        assert_eq!(sim.agent::<Counter>(sink).got, 0);
        sim.run_until(SimTime::from_secs_f64(4.0));
        let got = sim.agent::<Counter>(sink).got;
        // One second of emission: ~250 packets.
        assert!((245..=255).contains(&got), "got {got}");
    }

    #[test]
    fn carries_class_and_seq() {
        let cfg = CbrConfig::new(FlowId(9), AgentId(1), Rate::from_mbps(2.0), 500, 1);
        let (mut sim, _sink) = build(cfg);
        sim.run_until(SimTime::from_secs_f64(0.5));
        let src = sim.agent::<CbrSource>(AgentId(0));
        assert!(src.sent > 200);
        assert_eq!(src.gap(), SimDuration::from_millis(2));
    }
}

/// A Poisson packet source: fixed-size packets with exponential
/// inter-arrival gaps. Together with the fixed-rate [`Port`] server this
/// realizes an M/D/1 queue, which the integration tests validate against
/// the Pollaczek–Khinchine formula.
#[derive(Debug)]
pub struct PoissonSource {
    cfg: CbrConfig,
    port: Port,
    mean_gap_s: f64,
    seq: u64,
    /// Packets emitted so far.
    pub sent: u64,
}

impl PoissonSource {
    /// Creates a source whose *mean* rate matches `cfg.rate`.
    ///
    /// # Panics
    ///
    /// Panics if the rate or packet size is zero.
    pub fn new(cfg: CbrConfig, port: Port) -> Self {
        assert!(cfg.rate.as_bps() > 0, "rate must be positive");
        assert!(cfg.packet_bytes > 0, "packet size must be positive");
        let mean_gap_s = cfg.packet_bytes as f64 * 8.0 / cfg.rate.as_bps() as f64;
        PoissonSource { cfg, port, mean_gap_s, seq: 0, sent: 0 }
    }

    fn schedule_next(&self, ctx: &mut Context<'_>) {
        // Exponential gap via inverse CDF of the shared deterministic RNG.
        let u: f64 = rand::Rng::gen::<f64>(ctx.rng());
        let gap = -self.mean_gap_s * (1.0 - u).ln();
        ctx.schedule_timer(SimDuration::from_secs_f64(gap.min(1e4)), 0);
    }
}

impl Agent for PoissonSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.schedule_timer(self.cfg.start_at, 0);
    }

    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        if ctx.now >= self.cfg.stop_at {
            return;
        }
        let mut pkt = Packet::data(self.cfg.flow, ctx.self_id, self.cfg.dst, self.cfg.packet_bytes)
            .with_class(self.cfg.class)
            .with_seq(self.seq)
            .with_id(ctx.alloc_packet_id());
        pkt.sent_at = ctx.now;
        self.seq += 1;
        self.sent += 1;
        self.port.send(pkt, ctx);
        self.schedule_next(ctx);
    }

    fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
        self.port.on_tx_complete(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod poisson_tests {
    use super::*;
    use crate::disc::{DropTail, QueueLimit};
    use crate::sim::Simulator;
    use crate::time::SimTime;

    struct Counter {
        got: u64,
        gaps: Vec<f64>,
        last: Option<f64>,
    }
    impl Agent for Counter {
        fn on_packet(&mut self, _p: Packet, ctx: &mut Context<'_>) {
            self.got += 1;
            let now = ctx.now.as_secs_f64();
            if let Some(last) = self.last {
                self.gaps.push(now - last);
            }
            self.last = Some(now);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn mean_rate_and_exponential_gaps() {
        let mut sim = Simulator::new(17);
        let sink = AgentId(1);
        // 500 packets/s mean (2 Mb/s of 500-byte packets) over a fast link
        // so queueing barely perturbs the gaps.
        let port = Port::new(
            0,
            sink,
            Rate::from_mbps(100.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(10_000))),
        );
        let cfg = CbrConfig::new(FlowId(1), sink, Rate::from_mbps(2.0), 500, 3);
        sim.add_agent(Box::new(PoissonSource::new(cfg, port)));
        sim.add_agent(Box::new(Counter { got: 0, gaps: vec![], last: None }));
        sim.run_until(SimTime::from_secs_f64(60.0));
        let c = sim.agent::<Counter>(sink);
        let rate = c.got as f64 / 60.0;
        assert!((rate - 500.0).abs() < 20.0, "rate {rate}");
        // Exponential gaps: std dev ~ mean, CV ~ 1.
        let mean = c.gaps.iter().sum::<f64>() / c.gaps.len() as f64;
        let var = c.gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / c.gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "coefficient of variation {cv}");
    }
}
