//! Queue disciplines.
//!
//! A [`Discipline`] decides which packets a congested output port stores,
//! drops, and serves next. Disciplines are composable: the PELS router
//! discipline of the paper (Fig. 4 left) is
//! `Wrr{ StrictPriority[green, yellow, red], DropTail }` — weighted
//! round-robin between the video queue and the Internet queue, with strict
//! priority among the three color sub-queues.
//!
//! Disciplines never touch packet payloads: they order, store, and drop
//! [`QEntry`] descriptors (arena slot + the two header fields scheduling
//! needs), while the payload stays parked in the event queue's packet
//! arena. This keeps every queue operation a 16-byte move regardless of
//! packet size — see [`crate::event::PacketSlot`].

use crate::event::PacketSlot;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

/// A queued packet as the disciplines see it: the arena slot of the payload
/// plus the header fields classification and byte accounting need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QEntry {
    /// Arena slot of the payload (opaque to disciplines).
    pub slot: PacketSlot,
    /// Size on the wire, bytes.
    pub size_bytes: u32,
    /// Priority class (0 = green, 1 = yellow, 2 = red, 3 = best-effort).
    pub class: u8,
}

impl QEntry {
    /// Creates an entry; mostly useful in tests — ports build entries from
    /// real packets as they stash them into the arena.
    pub fn new(slot: PacketSlot, size_bytes: u32, class: u8) -> Self {
        QEntry { slot, size_bytes, class }
    }
}

/// Capacity limit of a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueLimit {
    /// At most this many packets.
    Packets(usize),
    /// At most this many bytes.
    Bytes(u64),
}

impl QueueLimit {
    fn admits(&self, cur_pkts: usize, cur_bytes: u64, incoming: &QEntry) -> bool {
        match *self {
            QueueLimit::Packets(n) => cur_pkts < n,
            QueueLimit::Bytes(b) => cur_bytes + incoming.size_bytes as u64 <= b,
        }
    }
}

/// A buffer-management and scheduling policy for one output port.
///
/// `enqueue` pushes dropped entries (the incoming one, or victims evicted to
/// make room) into `dropped` so callers can account for them (and release
/// the parked payloads) without per-call allocation.
pub trait Discipline: fmt::Debug + Send {
    /// Offers `entry` to the queue at time `now`.
    fn enqueue(&mut self, entry: QEntry, now: SimTime, dropped: &mut Vec<QEntry>);

    /// Removes and returns the next entry to transmit.
    fn dequeue(&mut self, now: SimTime) -> Option<QEntry>;

    /// Size in bytes of the entry `dequeue` would return, if any.
    fn peek_size(&self) -> Option<u32>;

    /// Number of queued packets.
    fn len_packets(&self) -> usize;

    /// Number of queued bytes.
    fn len_bytes(&self) -> u64;

    /// Whether the queue holds no packets.
    fn is_empty(&self) -> bool {
        self.len_packets() == 0
    }

    /// Upcast for inspecting concrete disciplines inside composites
    /// (e.g. reading per-band backlogs through a `Box<dyn Discipline>`).
    fn as_any(&self) -> &dyn Any;
}

/// Plain FIFO with tail drop.
///
/// # Examples
///
/// ```
/// use pels_netsim::disc::{Discipline, DropTail, QEntry, QueueLimit};
/// use pels_netsim::event::PacketSlot;
/// use pels_netsim::time::SimTime;
///
/// let mut q = DropTail::new(QueueLimit::Packets(1));
/// let mut dropped = Vec::new();
/// let entry = |i| QEntry::new(PacketSlot(i), 500, 0);
/// q.enqueue(entry(0), SimTime::ZERO, &mut dropped);
/// q.enqueue(entry(1), SimTime::ZERO, &mut dropped); // over limit -> dropped
/// assert_eq!(q.len_packets(), 1);
/// assert_eq!(dropped.len(), 1);
/// ```
#[derive(Debug)]
pub struct DropTail {
    queue: VecDeque<QEntry>,
    bytes: u64,
    limit: QueueLimit,
}

impl DropTail {
    /// Creates a FIFO with the given capacity limit.
    pub fn new(limit: QueueLimit) -> Self {
        DropTail { queue: VecDeque::new(), bytes: 0, limit }
    }
}

impl Discipline for DropTail {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn enqueue(&mut self, entry: QEntry, _now: SimTime, dropped: &mut Vec<QEntry>) {
        if self.limit.admits(self.queue.len(), self.bytes, &entry) {
            self.bytes += entry.size_bytes as u64;
            self.queue.push_back(entry);
        } else {
            dropped.push(entry);
        }
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<QEntry> {
        let entry = self.queue.pop_front()?;
        self.bytes -= entry.size_bytes as u64;
        Some(entry)
    }

    fn peek_size(&self) -> Option<u32> {
        self.queue.front().map(|e| e.size_bytes)
    }

    fn len_packets(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }
}

/// Strict priority over `N` bands, classified by [`QEntry::class`].
///
/// Band `i` serves packets with `class == i`; classes `>= N` map to the last
/// band. Lower band index = higher priority: a packet in band 1 is never
/// served while band 0 is non-empty. This is exactly the service order the
/// paper requires inside the PELS queue ("network routers must use queuing
/// mechanisms that do not allow low-priority packets to pass until all
/// high-priority packets are fully transmitted", Section 4.1).
#[derive(Debug)]
pub struct StrictPriority {
    bands: Vec<Box<dyn Discipline>>,
}

impl StrictPriority {
    /// Creates a strict-priority scheduler over the given bands.
    ///
    /// # Panics
    ///
    /// Panics if `bands` is empty.
    pub fn new(bands: Vec<Box<dyn Discipline>>) -> Self {
        assert!(!bands.is_empty(), "strict priority needs at least one band");
        StrictPriority { bands }
    }

    /// Convenience: `n` DropTail bands with identical per-band limits.
    pub fn drop_tail_bands(n: usize, limit: QueueLimit) -> Self {
        Self::new((0..n).map(|_| Box::new(DropTail::new(limit)) as Box<dyn Discipline>).collect())
    }

    fn band_for(&self, entry: &QEntry) -> usize {
        (entry.class as usize).min(self.bands.len() - 1)
    }

    /// Queued packets in band `i`.
    pub fn band_len_packets(&self, i: usize) -> usize {
        self.bands[i].len_packets()
    }

    /// Queued bytes in band `i`.
    pub fn band_len_bytes(&self, i: usize) -> u64 {
        self.bands[i].len_bytes()
    }
}

impl Discipline for StrictPriority {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn enqueue(&mut self, entry: QEntry, now: SimTime, dropped: &mut Vec<QEntry>) {
        let band = self.band_for(&entry);
        self.bands[band].enqueue(entry, now, dropped);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QEntry> {
        for band in &mut self.bands {
            if let Some(entry) = band.dequeue(now) {
                return Some(entry);
            }
        }
        None
    }

    fn peek_size(&self) -> Option<u32> {
        self.bands.iter().find_map(|b| b.peek_size())
    }

    fn len_packets(&self) -> usize {
        self.bands.iter().map(|b| b.len_packets()).sum()
    }

    fn len_bytes(&self) -> u64 {
        self.bands.iter().map(|b| b.len_bytes()).sum()
    }
}

/// One child queue of a [`Wrr`] scheduler.
#[derive(Debug)]
struct WrrChild {
    disc: Box<dyn Discipline>,
    weight: u32,
    deficit: u64,
}

/// Weighted round-robin (deficit round-robin) over child disciplines.
///
/// Each child `i` receives a share `weight_i / sum(weights)` of the link in
/// bytes, enforced with deficit counters (Shreedhar & Varghese's DRR, the
/// byte-accurate realization of WRR the paper's Fig. 4 calls for).
/// Classification is by a caller-supplied function from [`QEntry::class`] to
/// child index.
#[derive(Debug)]
pub struct Wrr {
    children: Vec<WrrChild>,
    classify: fn(&QEntry) -> usize,
    quantum: u64,
    current: usize,
    /// Whether the current child has already received its quantum this visit.
    granted: bool,
    /// Scheduler turns: quantum grants handed to a non-empty child. One turn
    /// may serve many packets (while the deficit lasts); an idle scheduler
    /// takes no turns. Monotone, scraped by telemetry consumers.
    pub turns: u64,
}

impl Wrr {
    /// Creates a WRR scheduler.
    ///
    /// `classify` maps an entry to a child index (values out of range are
    /// clamped to the last child). `quantum` is the base byte quantum per
    /// round for a weight-1 child; use at least the MTU so every visit can
    /// serve a packet.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty, any weight is zero, or `quantum == 0`.
    pub fn new(
        children: Vec<(u32, Box<dyn Discipline>)>,
        classify: fn(&QEntry) -> usize,
        quantum: u64,
    ) -> Self {
        assert!(!children.is_empty(), "wrr needs at least one child");
        assert!(quantum > 0, "wrr quantum must be positive");
        let children: Vec<WrrChild> = children
            .into_iter()
            .map(|(weight, disc)| {
                assert!(weight > 0, "wrr weights must be positive");
                WrrChild { disc, weight, deficit: 0 }
            })
            .collect();
        Wrr { children, classify, quantum, current: 0, granted: false, turns: 0 }
    }

    fn child_for(&self, entry: &QEntry) -> usize {
        ((self.classify)(entry)).min(self.children.len() - 1)
    }

    /// Queued packets in child `i`.
    pub fn child_len_packets(&self, i: usize) -> usize {
        self.children[i].disc.len_packets()
    }

    /// Queued bytes in child `i`.
    pub fn child_len_bytes(&self, i: usize) -> u64 {
        self.children[i].disc.len_bytes()
    }

    /// Access to child `i`'s discipline for inspection.
    pub fn child(&self, i: usize) -> &dyn Discipline {
        self.children[i].disc.as_ref()
    }

    /// Mutable access to child `i`'s discipline.
    pub fn child_mut(&mut self, i: usize) -> &mut dyn Discipline {
        self.children[i].disc.as_mut()
    }
}

impl Discipline for Wrr {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn enqueue(&mut self, entry: QEntry, now: SimTime, dropped: &mut Vec<QEntry>) {
        let child = self.child_for(&entry);
        self.children[child].disc.enqueue(entry, now, dropped);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QEntry> {
        if self.is_empty() {
            return None;
        }
        // Deficit round robin: each *visit* to a child grants it one quantum
        // (scaled by weight); the child then serves packets while its deficit
        // lasts. An empty child forfeits its deficit. Deficits of non-empty
        // children persist across rounds so packets larger than the quantum
        // are eventually served.
        loop {
            let n = self.children.len();
            let child = &mut self.children[self.current];
            match child.disc.peek_size() {
                None => {
                    child.deficit = 0;
                    self.current = (self.current + 1) % n;
                    self.granted = false;
                }
                Some(size) => {
                    if !self.granted {
                        child.deficit += self.quantum * child.weight as u64;
                        self.granted = true;
                        self.turns += 1;
                    }
                    if child.deficit >= size as u64 {
                        child.deficit -= size as u64;
                        return child.disc.dequeue(now);
                    }
                    // Deficit exhausted for this visit: move on.
                    self.current = (self.current + 1) % n;
                    self.granted = false;
                }
            }
        }
    }

    fn peek_size(&self) -> Option<u32> {
        // Approximation: the head of the current child (or the first
        // non-empty child). Only used by outer schedulers for sizing.
        self.children
            .iter()
            .cycle()
            .skip(self.current)
            .take(self.children.len())
            .find_map(|c| c.disc.peek_size())
    }

    fn len_packets(&self) -> usize {
        self.children.iter().map(|c| c.disc.len_packets()).sum()
    }

    fn len_bytes(&self) -> u64 {
        self.children.iter().map(|c| c.disc.len_bytes()).sum()
    }
}

/// Random Early Detection (Floyd & Jacobson 1993), used as a classical AQM
/// baseline. Operates on the EWMA of the queue length in packets.
#[derive(Debug)]
pub struct Red {
    inner: DropTail,
    /// EWMA weight `w_q`.
    wq: f64,
    min_th: f64,
    max_th: f64,
    max_p: f64,
    avg: f64,
    count_since_drop: i64,
    rng: StdRng,
    idle_since: Option<SimTime>,
}

impl Red {
    /// Creates a RED queue with the classic parameterization.
    ///
    /// # Panics
    ///
    /// Panics if thresholds are not `0 < min_th < max_th` or probabilities
    /// are out of `(0, 1]`.
    pub fn new(limit: QueueLimit, min_th: f64, max_th: f64, max_p: f64, seed: u64) -> Self {
        assert!(min_th > 0.0 && max_th > min_th, "need 0 < min_th < max_th");
        assert!(max_p > 0.0 && max_p <= 1.0, "need max_p in (0,1]");
        Red {
            inner: DropTail::new(limit),
            wq: 0.002,
            min_th,
            max_th,
            max_p,
            avg: 0.0,
            count_since_drop: -1,
            rng: StdRng::seed_from_u64(seed),
            idle_since: None,
        }
    }

    /// Current average queue estimate (packets).
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    fn update_avg(&mut self, now: SimTime) {
        if let Some(idle_start) = self.idle_since.take() {
            // Decay the average across the idle period, approximating the
            // number of packets that could have been transmitted.
            let idle_slots = now.duration_since(idle_start).as_secs_f64() / 0.001;
            self.avg *= (1.0 - self.wq).powf(idle_slots.min(1e6));
        }
        self.avg = (1.0 - self.wq) * self.avg + self.wq * self.inner.len_packets() as f64;
    }

    fn drop_probability(&self) -> f64 {
        if self.avg < self.min_th {
            0.0
        } else if self.avg >= self.max_th {
            1.0
        } else {
            self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
        }
    }
}

impl Discipline for Red {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn enqueue(&mut self, entry: QEntry, now: SimTime, dropped: &mut Vec<QEntry>) {
        self.update_avg(now);
        let pb = self.drop_probability();
        let drop = if pb >= 1.0 {
            true
        } else if pb > 0.0 {
            self.count_since_drop += 1;
            let pa = pb / (1.0 - (self.count_since_drop as f64 * pb).min(0.9999));
            self.rng.gen::<f64>() < pa
        } else {
            self.count_since_drop = -1;
            false
        };
        if drop {
            self.count_since_drop = 0;
            dropped.push(entry);
        } else {
            self.inner.enqueue(entry, now, dropped);
        }
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QEntry> {
        let entry = self.inner.dequeue(now);
        if self.inner.is_empty() {
            self.idle_since = Some(now);
        }
        entry
    }

    fn peek_size(&self) -> Option<u32> {
        self.inner.peek_size()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }
}

/// FIFO that drops arriving packets of class `>= protect_below` uniformly at
/// random with a dynamically settable probability.
///
/// This realizes the paper's "generic best-effort" comparator (Section 6.5):
/// uniform random loss in the FGS enhancement layer with a "magically"
/// protected base layer, matching the Bernoulli loss model of Section 3.
#[derive(Debug)]
pub struct UniformLoss {
    inner: DropTail,
    /// Classes strictly below this value are never randomly dropped.
    protect_below: u8,
    drop_prob: f64,
    rng: StdRng,
    /// Random drops performed so far.
    pub random_drops: u64,
}

impl UniformLoss {
    /// Creates a uniform-loss FIFO protecting classes `< protect_below`.
    pub fn new(limit: QueueLimit, protect_below: u8, seed: u64) -> Self {
        UniformLoss {
            inner: DropTail::new(limit),
            protect_below,
            drop_prob: 0.0,
            rng: StdRng::seed_from_u64(seed),
            random_drops: 0,
        }
    }

    /// Sets the current random drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or not finite.
    pub fn set_drop_prob(&mut self, p: f64) {
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "invalid probability: {p}");
        self.drop_prob = p;
    }

    /// Current random drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }
}

impl Discipline for UniformLoss {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn enqueue(&mut self, entry: QEntry, now: SimTime, dropped: &mut Vec<QEntry>) {
        if entry.class >= self.protect_below
            && self.drop_prob > 0.0
            && self.rng.gen::<f64>() < self.drop_prob
        {
            self.random_drops += 1;
            dropped.push(entry);
            return;
        }
        self.inner.enqueue(entry, now, dropped);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QEntry> {
        self.inner.dequeue(now)
    }

    fn peek_size(&self) -> Option<u32> {
        self.inner.peek_size()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test entries use the slot as a per-packet identity (the arena is not
    /// involved: slots are opaque to disciplines).
    fn ent(seq: u32, class: u8, size: u32) -> QEntry {
        QEntry::new(PacketSlot(seq), size, class)
    }

    #[test]
    fn drop_tail_fifo_order() {
        let mut q = DropTail::new(QueueLimit::Packets(10));
        let mut d = Vec::new();
        for seq in 0..5u32 {
            q.enqueue(ent(seq, 0, 100), SimTime::ZERO, &mut d);
        }
        assert_eq!(q.len_bytes(), 500);
        for expect in 0..5u32 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().slot, PacketSlot(expect));
        }
        assert!(q.dequeue(SimTime::ZERO).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn drop_tail_byte_limit() {
        let mut q = DropTail::new(QueueLimit::Bytes(1000));
        let mut d = Vec::new();
        q.enqueue(ent(0, 0, 600), SimTime::ZERO, &mut d);
        q.enqueue(ent(1, 0, 600), SimTime::ZERO, &mut d); // 1200 > 1000 -> drop
        q.enqueue(ent(2, 0, 400), SimTime::ZERO, &mut d); // exactly 1000 -> fits
        assert_eq!(q.len_packets(), 2);
        assert_eq!(q.len_bytes(), 1000);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn strict_priority_never_serves_lower_band_first() {
        let mut sp = StrictPriority::drop_tail_bands(3, QueueLimit::Packets(100));
        let mut d = Vec::new();
        sp.enqueue(ent(0, 2, 100), SimTime::ZERO, &mut d); // red
        sp.enqueue(ent(1, 1, 100), SimTime::ZERO, &mut d); // yellow
        sp.enqueue(ent(2, 0, 100), SimTime::ZERO, &mut d); // green
        sp.enqueue(ent(3, 0, 100), SimTime::ZERO, &mut d); // green
        let order: Vec<u8> =
            std::iter::from_fn(|| sp.dequeue(SimTime::ZERO)).map(|e| e.class).collect();
        assert_eq!(order, vec![0, 0, 1, 2]);
    }

    #[test]
    fn strict_priority_clamps_out_of_range_class() {
        let mut sp = StrictPriority::drop_tail_bands(3, QueueLimit::Packets(10));
        let mut d = Vec::new();
        sp.enqueue(ent(0, 250, 100), SimTime::ZERO, &mut d);
        assert_eq!(sp.band_len_packets(2), 1);
    }

    #[test]
    fn wrr_splits_bytes_by_weight() {
        // Two children with weights 1:1; equal-size packets must alternate
        // in the long run (50/50 byte split).
        let classify = |e: &QEntry| if e.class < 3 { 0 } else { 1 };
        let mut wrr = Wrr::new(
            vec![
                (1, Box::new(DropTail::new(QueueLimit::Packets(1000))) as Box<dyn Discipline>),
                (1, Box::new(DropTail::new(QueueLimit::Packets(1000))) as Box<dyn Discipline>),
            ],
            classify,
            500,
        );
        let mut d = Vec::new();
        for i in 0..100u32 {
            wrr.enqueue(ent(2 * i, 0, 500), SimTime::ZERO, &mut d);
            wrr.enqueue(ent(2 * i + 1, 3, 500), SimTime::ZERO, &mut d);
        }
        let mut counts = [0u32; 2];
        for _ in 0..100 {
            let e = wrr.dequeue(SimTime::ZERO).unwrap();
            counts[if e.class < 3 { 0 } else { 1 }] += 1;
        }
        assert_eq!(counts[0], 50);
        assert_eq!(counts[1], 50);
        // 500 B packets against a 500 B weight-1 quantum: every dequeue is
        // its own scheduler turn.
        assert_eq!(wrr.turns, 100);
    }

    #[test]
    fn wrr_weight_ratio_three_to_one() {
        let classify = |e: &QEntry| if e.class < 3 { 0 } else { 1 };
        let mut wrr = Wrr::new(
            vec![
                (3, Box::new(DropTail::new(QueueLimit::Packets(1000))) as Box<dyn Discipline>),
                (1, Box::new(DropTail::new(QueueLimit::Packets(1000))) as Box<dyn Discipline>),
            ],
            classify,
            500,
        );
        let mut d = Vec::new();
        for i in 0..400u32 {
            wrr.enqueue(ent(2 * i, 0, 500), SimTime::ZERO, &mut d);
            wrr.enqueue(ent(2 * i + 1, 3, 500), SimTime::ZERO, &mut d);
        }
        let mut video = 0u32;
        for _ in 0..400 {
            if wrr.dequeue(SimTime::ZERO).unwrap().class < 3 {
                video += 1;
            }
        }
        // 3:1 split of 400 packets = 300 video.
        assert!((295..=305).contains(&video), "video share was {video}");
    }

    #[test]
    fn wrr_work_conserving_when_one_child_empty() {
        let classify = |e: &QEntry| if e.class < 3 { 0 } else { 1 };
        let mut wrr = Wrr::new(
            vec![
                (1, Box::new(DropTail::new(QueueLimit::Packets(10))) as Box<dyn Discipline>),
                (1, Box::new(DropTail::new(QueueLimit::Packets(10))) as Box<dyn Discipline>),
            ],
            classify,
            500,
        );
        let mut d = Vec::new();
        for i in 0..5u32 {
            wrr.enqueue(ent(i, 3, 500), SimTime::ZERO, &mut d);
        }
        // Only the Internet child has traffic; all 5 must come out.
        for _ in 0..5 {
            assert!(wrr.dequeue(SimTime::ZERO).is_some());
        }
        assert!(wrr.dequeue(SimTime::ZERO).is_none());
    }

    #[test]
    fn wrr_handles_packets_larger_than_quantum() {
        let classify = |_: &QEntry| 0usize;
        let mut wrr = Wrr::new(
            vec![(1, Box::new(DropTail::new(QueueLimit::Packets(10))) as Box<dyn Discipline>)],
            classify,
            100, // quantum smaller than the 1500-byte packet
        );
        let mut d = Vec::new();
        wrr.enqueue(ent(0, 0, 1500), SimTime::ZERO, &mut d);
        assert_eq!(wrr.dequeue(SimTime::ZERO).unwrap().size_bytes, 1500);
    }

    #[test]
    fn red_drops_nothing_below_min_threshold() {
        let mut red = Red::new(QueueLimit::Packets(100), 5.0, 15.0, 0.1, 7);
        let mut d = Vec::new();
        for i in 0..3u32 {
            red.enqueue(ent(i, 0, 500), SimTime::ZERO, &mut d);
            red.dequeue(SimTime::ZERO);
        }
        assert!(d.is_empty());
    }

    #[test]
    fn red_drops_everything_above_max_threshold() {
        let mut red = Red::new(QueueLimit::Packets(1000), 1.0, 5.0, 0.5, 7);
        let mut d = Vec::new();
        // Stuff the queue without draining: the average climbs past max_th
        // and forced drops kick in.
        for i in 0..5000u32 {
            red.enqueue(ent(i, 0, 500), SimTime::ZERO, &mut d);
        }
        assert!(!d.is_empty(), "RED should eventually drop under sustained overload");
        assert!(red.avg_queue() > 1.0);
    }

    #[test]
    fn uniform_loss_protects_low_classes() {
        let mut q = UniformLoss::new(QueueLimit::Packets(100_000), 1, 3);
        q.set_drop_prob(1.0);
        let mut d = Vec::new();
        for i in 0..100u32 {
            q.enqueue(ent(2 * i, 0, 500), SimTime::ZERO, &mut d); // protected
            q.enqueue(ent(2 * i + 1, 1, 500), SimTime::ZERO, &mut d); // always dropped
        }
        assert_eq!(q.len_packets(), 100);
        assert_eq!(d.len(), 100);
        assert_eq!(q.random_drops, 100);
        assert!(d.iter().all(|e| e.class == 1));
    }

    #[test]
    fn uniform_loss_rate_is_approximately_p() {
        let mut q = UniformLoss::new(QueueLimit::Packets(1_000_000), 1, 11);
        q.set_drop_prob(0.1);
        let mut d = Vec::new();
        let n = 20_000u32;
        for i in 0..n {
            q.enqueue(ent(i, 1, 500), SimTime::ZERO, &mut d);
        }
        let rate = d.len() as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "measured {rate}");
    }

    #[test]
    #[should_panic(expected = "invalid probability")]
    fn uniform_loss_rejects_bad_probability() {
        let mut q = UniformLoss::new(QueueLimit::Packets(10), 1, 0);
        q.set_drop_prob(1.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_entry() -> impl Strategy<Value = (u8, u32)> {
        (0u8..4, 40u32..1500)
    }

    proptest! {
        /// Conservation: every entry offered to a composite discipline is
        /// either queued, dequeued, or reported dropped — never lost.
        #[test]
        fn packets_are_conserved(pkts in proptest::collection::vec(arb_entry(), 1..300)) {
            let classify = |e: &QEntry| if e.class < 3 { 0 } else { 1 };
            let video = Box::new(StrictPriority::drop_tail_bands(3, QueueLimit::Packets(20)));
            let inet = Box::new(DropTail::new(QueueLimit::Packets(20)));
            let mut wrr = Wrr::new(vec![(1, video as _), (1, inet as _)], classify, 500);
            let mut dropped = Vec::new();
            let total = pkts.len();
            let mut dequeued = 0usize;
            for (i, &(class, size)) in pkts.iter().enumerate() {
                wrr.enqueue(QEntry::new(PacketSlot(i as u32), size, class),
                            SimTime::ZERO, &mut dropped);
                if i % 3 == 0 && wrr.dequeue(SimTime::ZERO).is_some() {
                    dequeued += 1;
                }
            }
            prop_assert_eq!(dequeued + dropped.len() + wrr.len_packets(), total);
        }

        /// Strict priority invariant: a dequeued entry's class is never
        /// higher-numbered than any class still waiting before the dequeue.
        #[test]
        fn strict_priority_invariant(pkts in proptest::collection::vec(arb_entry(), 1..200)) {
            let mut sp = StrictPriority::drop_tail_bands(4, QueueLimit::Packets(1000));
            let mut dropped = Vec::new();
            for (i, &(class, size)) in pkts.iter().enumerate() {
                sp.enqueue(QEntry::new(PacketSlot(i as u32), size, class),
                           SimTime::ZERO, &mut dropped);
            }
            let mut waiting = [0usize; 4];
            for &(class, _) in &pkts {
                waiting[class.min(3) as usize] += 1;
            }
            while let Some(e) = sp.dequeue(SimTime::ZERO) {
                let class = e.class.min(3) as usize;
                for (higher, &count) in waiting.iter().enumerate().take(class) {
                    prop_assert_eq!(count, 0,
                        "class {} dequeued while class {} still waiting", class, higher);
                }
                waiting[class] -= 1;
            }
        }

        /// Byte accounting matches entry contents at all times.
        #[test]
        fn byte_accounting(pkts in proptest::collection::vec(arb_entry(), 1..100)) {
            let mut q = DropTail::new(QueueLimit::Bytes(20_000));
            let mut dropped = Vec::new();
            let mut expected: u64 = 0;
            for (i, &(class, size)) in pkts.iter().enumerate() {
                let before = dropped.len();
                q.enqueue(QEntry::new(PacketSlot(i as u32), size, class),
                          SimTime::ZERO, &mut dropped);
                if dropped.len() == before {
                    expected += size as u64;
                }
                prop_assert_eq!(q.len_bytes(), expected);
            }
            while let Some(e) = q.dequeue(SimTime::ZERO) {
                expected -= e.size_bytes as u64;
                prop_assert_eq!(q.len_bytes(), expected);
            }
            prop_assert_eq!(q.len_bytes(), 0);
        }
    }
}
