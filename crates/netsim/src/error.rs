//! Simulation errors: the [`SimError`] type returned by fallible public
//! APIs across the workspace.
//!
//! The simulator keeps panicking accessors for ergonomic test code, but every
//! fallible public entry point now has a `try_*` twin returning
//! `Result<_, SimError>` so embedding code (CLIs, harnesses, long-running
//! chaos drivers) can degrade gracefully instead of aborting. The enum is
//! deliberately `thiserror`-free: this workspace builds offline, so the
//! `Display`/`Error` impls are written by hand.

use crate::packet::AgentId;
use std::fmt;

/// Errors surfaced by fallible simulator and protocol APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The referenced agent id was never registered.
    UnknownAgent(AgentId),
    /// The agent exists but is not of the requested concrete type.
    AgentTypeMismatch {
        /// The agent that failed to downcast.
        agent: AgentId,
        /// The concrete type that was requested.
        expected: &'static str,
    },
    /// The agent is currently being dispatched (re-entrant access).
    AgentBusy(AgentId),
    /// Agents cannot be added after the simulation has started.
    SimulationStarted,
    /// A configuration value was rejected; the message explains which.
    InvalidConfig(String),
    /// A port index was out of range for the agent.
    InvalidPort(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownAgent(id) => write!(f, "unknown agent {id}"),
            SimError::AgentTypeMismatch { agent, expected } => {
                write!(f, "agent type mismatch: {agent} is not a {expected}")
            }
            SimError::AgentBusy(id) => {
                write!(f, "agent {id} is currently being dispatched")
            }
            SimError::SimulationStarted => {
                write!(f, "cannot add agents after the simulation started")
            }
            // Bare message so `try_*().unwrap_or_else(|e| panic!("{e}"))`
            // reproduces the exact panic strings older tests assert on.
            SimError::InvalidConfig(msg) => write!(f, "{msg}"),
            SimError::InvalidPort(i) => write!(f, "port index {i} out of range"),
        }
    }
}

impl std::error::Error for SimError {}

/// Shorthand used by `try_new`-style constructors.
pub fn invalid_config(msg: impl Into<String>) -> SimError {
    SimError::InvalidConfig(msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_stable() {
        assert_eq!(
            SimError::UnknownAgent(AgentId(3)).to_string(),
            format!("unknown agent {}", AgentId(3))
        );
        assert_eq!(
            SimError::InvalidConfig("beta must be in (0,2)".into()).to_string(),
            "beta must be in (0,2)"
        );
        assert!(SimError::SimulationStarted.to_string().contains("after the simulation started"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&SimError::InvalidPort(9));
    }
}
