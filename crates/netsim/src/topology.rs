//! Reusable topology builders.
//!
//! The dumbbell — N host pairs across two routers and one shared bottleneck
//! — is the canonical congestion-control evaluation topology (and the
//! PELS paper's Fig. 6). [`build_dumbbell`] wires routers, ports, and
//! routes, and lets the caller supply each host agent through a factory
//! closure that receives the host's ready-made access port.

use crate::disc::{DropTail, QueueLimit};
use crate::packet::AgentId;
use crate::port::Port;
use crate::router::{RouteTable, Router};
use crate::sim::{Agent, Simulator};
use crate::time::{Rate, SimDuration};

/// Which side of the dumbbell a host sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Sender side (left of the bottleneck).
    Left,
    /// Receiver side (right of the bottleneck).
    Right,
}

/// Identity of a host being created by the factory closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSlot {
    /// Which side the host is on.
    pub side: Side,
    /// Pair index (left host `i` is paired with right host `i`).
    pub index: usize,
    /// The agent id this host will receive.
    pub id: AgentId,
    /// The agent id of its counterpart on the other side.
    pub peer: AgentId,
}

/// Shape parameters of a dumbbell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DumbbellSpec {
    /// Number of host pairs.
    pub pairs: usize,
    /// Bottleneck link rate (both directions).
    pub bottleneck: Rate,
    /// Access link rate.
    pub access: Rate,
    /// One-way access-link propagation delay.
    pub access_delay: SimDuration,
    /// One-way bottleneck propagation delay.
    pub bottleneck_delay: SimDuration,
    /// Queue limit (packets) for every port built here.
    pub queue_packets: usize,
}

impl Default for DumbbellSpec {
    fn default() -> Self {
        DumbbellSpec {
            pairs: 2,
            bottleneck: Rate::from_mbps(4.0),
            access: Rate::from_mbps(10.0),
            access_delay: SimDuration::from_millis(1),
            bottleneck_delay: SimDuration::from_millis(5),
            queue_packets: 100,
        }
    }
}

/// Agent ids of a built dumbbell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumbbellIds {
    /// Left (sender-side) router.
    pub left_router: AgentId,
    /// Right (receiver-side) router.
    pub right_router: AgentId,
    /// Left hosts, in pair order.
    pub left_hosts: Vec<AgentId>,
    /// Right hosts, in pair order.
    pub right_hosts: Vec<AgentId>,
}

/// Builds a dumbbell into `sim`. For each host slot, `make_host` receives
/// the slot description and the host's access [`Port`] (already aimed at
/// the correct router) and returns the agent to register.
///
/// Host ids are assigned deterministically: routers first (left, right),
/// then left hosts 0..N, then right hosts 0..N — and `make_host` is told
/// the id its host will get, plus its peer's id, so protocol endpoints can
/// address each other before either exists.
///
/// # Examples
///
/// ```
/// use pels_netsim::sim::Simulator;
/// use pels_netsim::tcp::{TcpSink, TcpSource};
/// use pels_netsim::packet::FlowId;
/// use pels_netsim::time::{SimDuration, SimTime};
/// use pels_netsim::topology::{build_dumbbell, DumbbellSpec, Side};
///
/// let mut sim = Simulator::new(1);
/// let ids = build_dumbbell(&mut sim, &DumbbellSpec::default(), |slot, port| {
///     let flow = FlowId(slot.index as u32);
///     match slot.side {
///         Side::Left => Box::new(TcpSource::new(port, flow, slot.peer, 1000, SimDuration::ZERO)),
///         Side::Right => Box::new(TcpSink::new(port, flow)),
///     }
/// });
/// sim.run_until(SimTime::from_secs_f64(5.0));
/// assert!(sim.agent::<TcpSink>(ids.right_hosts[0]).delivered() > 100);
/// ```
///
/// # Panics
///
/// Panics if `spec.pairs == 0` or the simulator has already started.
pub fn build_dumbbell<F>(sim: &mut Simulator, spec: &DumbbellSpec, mut make_host: F) -> DumbbellIds
where
    F: FnMut(HostSlot, Port) -> Box<dyn Agent>,
{
    assert!(spec.pairs > 0, "a dumbbell needs at least one host pair");
    let n = spec.pairs;
    let left_router = AgentId(0);
    let right_router = AgentId(1);
    let left_id = |i: usize| AgentId((2 + i) as u32);
    let right_id = |i: usize| AgentId((2 + n + i) as u32);
    let q = |limit: usize| Box::new(DropTail::new(QueueLimit::Packets(limit)));

    // Left router: port 0 = bottleneck to the right router, ports 1..=N to
    // the left hosts.
    let mut ports = vec![Port::new(
        0,
        right_router,
        spec.bottleneck,
        spec.bottleneck_delay,
        q(spec.queue_packets),
    )];
    let mut routes = RouteTable::new();
    for i in 0..n {
        routes.add(right_id(i), 0);
        routes.add(left_id(i), 1 + i);
        ports.push(Port::new(
            1 + i,
            left_id(i),
            spec.access,
            spec.access_delay,
            q(spec.queue_packets),
        ));
    }
    sim.add_agent(Box::new(Router::new(ports, routes)));

    // Right router, mirrored.
    let mut ports = vec![Port::new(
        0,
        left_router,
        spec.bottleneck,
        spec.bottleneck_delay,
        q(spec.queue_packets),
    )];
    let mut routes = RouteTable::new();
    for i in 0..n {
        routes.add(left_id(i), 0);
        routes.add(right_id(i), 1 + i);
        ports.push(Port::new(
            1 + i,
            right_id(i),
            spec.access,
            spec.access_delay,
            q(spec.queue_packets),
        ));
    }
    sim.add_agent(Box::new(Router::new(ports, routes)));

    let mut left_hosts = Vec::with_capacity(n);
    for i in 0..n {
        let slot = HostSlot { side: Side::Left, index: i, id: left_id(i), peer: right_id(i) };
        let port = Port::new(0, left_router, spec.access, spec.access_delay, q(spec.queue_packets));
        let id = sim.add_agent(make_host(slot, port));
        debug_assert_eq!(id, left_id(i));
        left_hosts.push(id);
    }
    let mut right_hosts = Vec::with_capacity(n);
    for i in 0..n {
        let slot = HostSlot { side: Side::Right, index: i, id: right_id(i), peer: left_id(i) };
        let port =
            Port::new(0, right_router, spec.access, spec.access_delay, q(spec.queue_packets));
        let id = sim.add_agent(make_host(slot, port));
        debug_assert_eq!(id, right_id(i));
        right_hosts.push(id);
    }

    DumbbellIds { left_router, right_router, left_hosts, right_hosts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::tcp::{TcpSink, TcpSource};
    use crate::time::SimTime;

    fn tcp_dumbbell(pairs: usize) -> (Simulator, DumbbellIds) {
        let mut sim = Simulator::new(5);
        let spec = DumbbellSpec { pairs, ..Default::default() };
        let ids = build_dumbbell(&mut sim, &spec, |slot, port| {
            let flow = FlowId(slot.index as u32);
            match slot.side {
                Side::Left => {
                    Box::new(TcpSource::new(port, flow, slot.peer, 1000, SimDuration::ZERO))
                }
                Side::Right => Box::new(TcpSink::new(port, flow)),
            }
        });
        (sim, ids)
    }

    #[test]
    fn tcp_pairs_share_the_bottleneck() {
        let (mut sim, ids) = tcp_dumbbell(3);
        sim.run_until(SimTime::from_secs_f64(20.0));
        let delivered: Vec<u64> =
            ids.right_hosts.iter().map(|&id| sim.agent::<TcpSink>(id).delivered()).collect();
        let total: u64 = delivered.iter().sum();
        // 4 Mb/s for 20 s = 10 MB = 10k packets of 1000 B; expect most.
        assert!(total > 7_000, "total {total} ({delivered:?})");
        // Rough TCP fairness: each flow within a factor of 3 of the mean.
        let mean = total as f64 / 3.0;
        for (i, &d) in delivered.iter().enumerate() {
            assert!(
                (d as f64) > mean / 3.0 && (d as f64) < mean * 3.0,
                "flow {i}: {d} vs mean {mean}"
            );
        }
    }

    #[test]
    fn ids_are_deterministic() {
        let (_, ids) = tcp_dumbbell(2);
        assert_eq!(ids.left_router, AgentId(0));
        assert_eq!(ids.right_router, AgentId(1));
        assert_eq!(ids.left_hosts, vec![AgentId(2), AgentId(3)]);
        assert_eq!(ids.right_hosts, vec![AgentId(4), AgentId(5)]);
    }

    #[test]
    #[should_panic(expected = "at least one host pair")]
    fn rejects_empty() {
        let mut sim = Simulator::new(1);
        let spec = DumbbellSpec { pairs: 0, ..Default::default() };
        let _ = build_dumbbell(&mut sim, &spec, |_, _| unreachable!());
    }
}
