//! Random Early Marking (REM) — Lapsley & Low's optimization-based AQM,
//! one of the router-assisted schemes the paper surveys (Section 2.2).
//!
//! REM maintains a link *price* updated from the queue backlog and the
//! arrival/capacity mismatch, and drops (or marks) arrivals with
//! probability `1 − φ^{−price}`. Unlike RED, the drop probability is
//! exponential in the congestion measure, which decouples the performance
//! from the queue length. Included as a classical baseline for comparing
//! AQM behaviours against the PELS discipline.

use crate::disc::{Discipline, DropTail, QEntry, QueueLimit};
use crate::time::{Rate, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`Rem`] queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemConfig {
    /// Price adaptation gain γ.
    pub gamma: f64,
    /// Weight α on the backlog term (packets).
    pub alpha: f64,
    /// Target backlog `b*`, packets.
    pub target_backlog: f64,
    /// Exponential base φ of the drop law (> 1).
    pub phi: f64,
    /// Link capacity, used to estimate the rate mismatch term.
    pub capacity: Rate,
    /// Price-update interval.
    pub interval: SimDuration,
}

impl Default for RemConfig {
    fn default() -> Self {
        RemConfig {
            gamma: 0.005,
            alpha: 0.1,
            target_backlog: 20.0,
            phi: 1.001,
            capacity: Rate::from_mbps(4.0),
            interval: SimDuration::from_millis(10),
        }
    }
}

/// The REM discipline: a drop-tail queue fronted by price-based dropping.
///
/// Price updates happen lazily, driven by packet arrival timestamps (the
/// discipline has no timer of its own): all intervals that elapsed since
/// the last update are applied before the arrival is considered.
#[derive(Debug)]
pub struct Rem {
    inner: DropTail,
    cfg: RemConfig,
    price: f64,
    bytes_since_update: u64,
    last_update: SimTime,
    rng: StdRng,
    /// Price-based drops performed.
    pub early_drops: u64,
}

impl Rem {
    /// Creates a REM queue with physical limit `limit`.
    ///
    /// # Panics
    ///
    /// Panics if `phi <= 1`, gains are non-positive, or the interval is zero.
    pub fn new(limit: QueueLimit, cfg: RemConfig, seed: u64) -> Self {
        assert!(cfg.phi > 1.0, "phi must exceed 1");
        assert!(cfg.gamma > 0.0 && cfg.alpha > 0.0, "gains must be positive");
        assert!(!cfg.interval.is_zero(), "interval must be positive");
        Rem {
            inner: DropTail::new(limit),
            cfg,
            price: 0.0,
            bytes_since_update: 0,
            last_update: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            early_drops: 0,
        }
    }

    /// Current link price.
    pub fn price(&self) -> f64 {
        self.price
    }

    fn advance_price(&mut self, now: SimTime) {
        let dt = self.cfg.interval;
        while now.duration_since(self.last_update) >= dt {
            self.last_update += dt;
            // Rate mismatch (packets of 500 B equivalent) over the interval.
            let arrived = self.bytes_since_update as f64 * 8.0 / dt.as_secs_f64();
            self.bytes_since_update = 0;
            let capacity = self.cfg.capacity.as_bps() as f64;
            let backlog = self.inner.len_packets() as f64;
            let gradient = self.cfg.alpha * (backlog - self.cfg.target_backlog)
                + (arrived - capacity) / 8.0 / 500.0;
            self.price = (self.price + self.cfg.gamma * gradient).max(0.0);
        }
    }

    fn drop_probability(&self) -> f64 {
        1.0 - self.cfg.phi.powf(-self.price)
    }
}

impl Discipline for Rem {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn enqueue(&mut self, entry: QEntry, now: SimTime, dropped: &mut Vec<QEntry>) {
        self.advance_price(now);
        let p = self.drop_probability();
        if p > 0.0 && self.rng.gen::<f64>() < p {
            self.early_drops += 1;
            dropped.push(entry);
            return;
        }
        // The rate-mismatch term uses the *accepted* rate, so the price has
        // a well-defined equilibrium even against unresponsive sources
        // (accepted rate -> capacity, drop rate -> overload fraction).
        self.bytes_since_update += entry.size_bytes as u64;
        self.inner.enqueue(entry, now, dropped);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QEntry> {
        self.inner.dequeue(now)
    }

    fn peek_size(&self) -> Option<u32> {
        self.inner.peek_size()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PacketSlot;

    fn ent() -> QEntry {
        QEntry::new(PacketSlot(0), 500, 0)
    }

    /// Feeds `rate_mbps` of arrivals over `[start_s, start_s + secs)` while
    /// draining at `service_mbps`, and returns (early drops, final price).
    /// Time must be monotone across calls on the same queue.
    fn drive(
        rem: &mut Rem,
        rate_mbps: f64,
        service_mbps: f64,
        start_s: f64,
        secs: f64,
    ) -> (u64, f64) {
        let mut dropped = Vec::new();
        let arrivals = (rate_mbps * 1e6 * secs / 8.0 / 500.0) as u64;
        let start_ns = (start_s * 1e9) as u64;
        let gap_ns = (secs * 1e9 / arrivals as f64) as u64;
        let service_gap_ns = (500.0 * 8.0 / (service_mbps * 1e6) * 1e9) as u64;
        let mut next_service = start_ns;
        let before = rem.early_drops;
        for k in 0..arrivals {
            let now = SimTime::from_nanos(start_ns + k * gap_ns);
            rem.enqueue(ent(), now, &mut dropped);
            while next_service <= now.as_nanos() {
                rem.dequeue(now);
                next_service += service_gap_ns;
            }
        }
        (rem.early_drops - before, rem.price())
    }

    #[test]
    fn no_congestion_no_price() {
        let mut rem = Rem::new(QueueLimit::Packets(500), RemConfig::default(), 1);
        let (drops, price) = drive(&mut rem, 2.0, 4.0, 0.0, 5.0);
        assert_eq!(drops, 0, "underload must not drop");
        assert!(price < 0.1, "price {price}");
    }

    #[test]
    fn overload_raises_price_and_drops() {
        let mut rem = Rem::new(QueueLimit::Packets(5_000), RemConfig::default(), 1);
        let (drops, price) = drive(&mut rem, 6.0, 4.0, 0.0, 10.0);
        assert!(price > 0.0);
        assert!(drops > 100, "drops {drops}");
    }

    #[test]
    fn price_decays_after_congestion_clears() {
        let mut rem = Rem::new(QueueLimit::Packets(5_000), RemConfig::default(), 1);
        drive(&mut rem, 6.0, 4.0, 0.0, 10.0);
        let high = rem.price();
        // Drain the queue, then run underloaded.
        let mut t = SimTime::from_secs_f64(10.0);
        while rem.dequeue(t).is_some() {
            t += SimDuration::from_micros(100);
        }
        drive(&mut rem, 1.0, 4.0, 20.0, 40.0);
        assert!(rem.price() < 0.5 * high, "price {} vs {high}", rem.price());
    }

    #[test]
    fn matches_loss_equilibrium_roughly() {
        // In equilibrium REM drops the overload fraction: 6 Mb/s offered on
        // 4 Mb/s capacity -> ~1/3 loss.
        let mut rem = Rem::new(QueueLimit::Packets(50_000), RemConfig::default(), 2);
        drive(&mut rem, 6.0, 4.0, 0.0, 30.0); // warm up
        let (drops, _) = drive(&mut rem, 6.0, 4.0, 30.0, 30.0);
        let offered = (6.0 * 1e6 * 30.0 / 8.0 / 500.0) as u64;
        let rate = drops as f64 / offered as f64;
        assert!((rate - 1.0 / 3.0).abs() < 0.12, "loss {rate}");
    }
}
