//! Parallel deterministic execution: topology partitioning and the
//! conservative windowed [`ShardedSimulator`].
//!
//! The engine follows classic conservative parallel discrete-event
//! simulation (PDES): the agent/link graph is split into *shards*, each
//! shard owns its own event queue, RNG stream, and packet-id space, and
//! shards only interact through link-delayed packet deliveries. Two
//! partition shapes arise in practice:
//!
//! * **Connected components** ([`Partition::components`]): the
//!   capacity-proportional and wideband chain topologies decompose into N
//!   independent source→router→receiver chains. Components never exchange
//!   events, so each runs to the deadline with zero synchronization.
//! * **Delay cuts** ([`Partition::cut`]): a shared-bottleneck dumbbell is
//!   one component, but cutting the highest-propagation-delay link tier
//!   (the 5 ms bottleneck vs 1 ms access links) yields shards whose only
//!   interaction is at least `lookahead = min cross-shard link delay` in
//!   the future. Shards then advance in lock-step windows of `lookahead`
//!   simulated time, exchanging cross-shard packet arrivals at window
//!   barriers.
//!
//! # Determinism
//!
//! A sharded run is a pure function of (topology, partition, seed):
//!
//! * The partition itself is a pure function of the topology — the worker
//!   thread count only sizes the thread pool and **never** changes the
//!   shard layout, so `--workers 1` and `--workers 8` execute the exact
//!   same per-shard event schedules and produce byte-identical results.
//! * Each shard's RNG stream is derived from the run seed and the shard
//!   index via SplitMix64 ([`stream_seed`]), and each shard allocates
//!   packet ids from a disjoint base, so no shard ever observes another
//!   shard's draws or allocations.
//! * Cross-shard events are exchanged only at window barriers and merged
//!   in `(fire time, source shard, source sequence)` order
//!   ([`sort_cross_events`]) before being scheduled into the destination
//!   queue — an order independent of thread scheduling.
//! * A single-shard partition degenerates to the plain serial
//!   [`Simulator`] byte-for-byte: same seed, same packet ids, same global
//!   event queue.
//!
//! The conservative window is safe because every cross-shard delivery made
//! at local time `τ < window_end` fires at `τ + link_delay ≥ τ + lookahead
//! ≥ window_end`: no event received at a barrier can be in a shard's past.

use crate::error::SimError;
use crate::event::Event;
use crate::faults::{FaultSchedule, GLOBAL};
use crate::packet::AgentId;
use crate::sim::{Agent, AgentLookup, Simulator};
use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Barrier};

/// Bounded depth of each worker-pair ring in relaxed mode, in *window
/// batches*. The two-barrier window protocol bounds in-flight batches per
/// ring to 2 (a sender can run at most one window ahead of a receiver's
/// drain), so 4 gives 2× headroom and `send` never blocks in steady state.
const RING_DEPTH: usize = 4;

/// How a multi-shard [`ShardedSimulator`] synchronizes its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Spawn-per-window workers plus a global barrier merge of all
    /// cross-shard events in canonical `(time, src shard, seq)` order.
    /// Byte-identical to the serial simulator at every worker count — the
    /// correctness oracle for [`ExecMode::Relaxed`].
    #[default]
    Deterministic,
    /// Persistent worker threads exchanging cross-shard events through
    /// bounded per-worker-pair rings, injected in per-ring arrival order
    /// with no global sort. Same conservative-window safety guarantees
    /// (no event is ever injected into a shard's past), but FIFO
    /// tie-break sequence numbers at the destination may differ between
    /// runs when a fast worker's batch lands one window early — so
    /// results are *not* guaranteed bit-identical to deterministic mode.
    Relaxed,
}

/// Derives the RNG seed for stream `index` from the run seed via
/// SplitMix64 — the standard stream-splitting construction: statistically
/// independent streams, and `stream_seed(seed, i)` never equals `seed`
/// itself in practice, so shard streams do not collide with the serial
/// stream.
pub fn stream_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The agent/link graph of a scenario, used only for partitioning.
///
/// Links are undirected for partitioning purposes: a full-duplex link is
/// one edge, annotated with its one-way propagation delay (the smaller of
/// the two directions if they differ — callers add one edge per direction
/// in that case and the partitioner uses the minimum crossing delay as the
/// lookahead, which is conservative).
#[derive(Debug, Clone)]
pub struct TopologyGraph {
    n_agents: usize,
    edges: Vec<(AgentId, AgentId, SimDuration)>,
}

impl TopologyGraph {
    /// Creates a graph over `n_agents` agents with no links yet.
    pub fn new(n_agents: usize) -> Self {
        TopologyGraph { n_agents, edges: Vec::new() }
    }

    /// Adds a full-duplex link between `a` and `b` with one-way
    /// propagation delay `delay`.
    pub fn add_link(&mut self, a: AgentId, b: AgentId, delay: SimDuration) {
        debug_assert!((a.0 as usize) < self.n_agents && (b.0 as usize) < self.n_agents);
        self.edges.push((a, b, delay));
    }

    /// Number of agents in the graph.
    pub fn n_agents(&self) -> usize {
        self.n_agents
    }

    /// The links added so far.
    pub fn edges(&self) -> &[(AgentId, AgentId, SimDuration)] {
        &self.edges
    }
}

/// An assignment of every agent to a shard, plus the synchronization
/// window (`lookahead`) multi-shard executions must respect.
///
/// Shard indices are contiguous, start at 0, and are numbered in order of
/// the smallest agent id they contain — a pure function of the topology,
/// never of thread scheduling.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Shard index of each agent, indexed by `AgentId`.
    pub shard_of: Vec<u32>,
    /// Number of shards.
    pub n_shards: usize,
    /// Minimum propagation delay of any cross-shard link: the conservative
    /// synchronization window. `None` when no link crosses shards (fully
    /// independent components, or a single shard).
    pub lookahead: Option<SimDuration>,
}

impl Partition {
    /// The trivial partition: everything in one shard. A
    /// [`ShardedSimulator`] built from it runs the plain serial event loop.
    pub fn serial(n_agents: usize) -> Self {
        Partition { shard_of: vec![0; n_agents], n_shards: 1, lookahead: None }
    }

    /// Connected components of the graph. Components never exchange
    /// events, so `lookahead` is `None` and shards run without barriers.
    pub fn components(g: &TopologyGraph) -> Self {
        let mut uf = UnionFind::new(g.n_agents);
        for &(a, b, _) in g.edges() {
            uf.union(a.0 as usize, b.0 as usize);
        }
        let (shard_of, n_shards) = uf.into_shards();
        Partition { shard_of, n_shards, lookahead: None }
    }

    /// Splits a connected graph by removing link-delay tiers from the
    /// largest delay downward until the remainder disconnects. The removed
    /// links that end up crossing shards define the lookahead (their
    /// minimum delay). Falls back to [`Partition::serial`] when the graph
    /// cannot be split with a positive lookahead.
    pub fn cut(g: &TopologyGraph) -> Self {
        let mut tiers: Vec<SimDuration> = g.edges().iter().map(|&(_, _, d)| d).collect();
        tiers.sort_unstable();
        tiers.dedup();
        // Remove tiers from the top down; stop at the first cut that
        // disconnects the graph.
        while let Some(&cut_below) = tiers.last() {
            let mut uf = UnionFind::new(g.n_agents);
            for &(a, b, d) in g.edges() {
                if d < cut_below {
                    uf.union(a.0 as usize, b.0 as usize);
                }
            }
            let (shard_of, n_shards) = uf.into_shards();
            if n_shards > 1 {
                let lookahead = g
                    .edges()
                    .iter()
                    .filter(|&&(a, b, _)| shard_of[a.0 as usize] != shard_of[b.0 as usize])
                    .map(|&(_, _, d)| d)
                    .min();
                match lookahead {
                    Some(d) if !d.is_zero() => {
                        return Partition { shard_of, n_shards, lookahead: Some(d) }
                    }
                    // A zero-delay cross link admits no conservative
                    // window: run serial.
                    Some(_) => return Partition::serial(g.n_agents()),
                    None => return Partition { shard_of, n_shards, lookahead: None },
                }
            }
            tiers.pop();
        }
        Partition::serial(g.n_agents())
    }

    /// The default strategy: independent components when the graph has
    /// them (zero-synchronization parallelism), otherwise a delay cut of
    /// the single component, otherwise serial.
    pub fn auto(g: &TopologyGraph) -> Self {
        let p = Self::components(g);
        if p.n_shards > 1 {
            return p;
        }
        Self::cut(g)
    }
}

/// Union-find with deterministic shard numbering.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = i;
        while cur != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        // Lower root wins: keeps numbering a function of the graph alone.
        let (lo, hi) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo as u32;
    }

    /// Consumes the structure, numbering components 0.. in order of their
    /// smallest member.
    fn into_shards(mut self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        let mut shard_of = vec![u32::MAX; n];
        let mut next = 0u32;
        for i in 0..n {
            let root = self.find(i);
            if shard_of[root] == u32::MAX {
                shard_of[root] = next;
                next += 1;
            }
            shard_of[i] = shard_of[root];
        }
        (shard_of, next as usize)
    }
}

/// Maps global agent ids to (shard, local slab slot). Shared read-only by
/// every shard.
#[derive(Debug)]
pub struct ShardMap {
    /// Shard index per agent, indexed by `AgentId`.
    pub shard_of: Vec<u32>,
    /// Local slab index per agent within its owning shard.
    pub local_of: Vec<u32>,
}

/// A packet delivery crossing a shard boundary, buffered in the source
/// shard's outbox until the next window barrier.
#[derive(Debug, Clone)]
pub struct CrossEvent {
    /// Absolute fire time (`emission time + link delay`).
    pub time: SimTime,
    /// Destination shard.
    pub dst_shard: u32,
    /// Source shard — part of the deterministic merge key.
    pub src_shard: u32,
    /// Emission sequence within the source shard's window.
    pub seq: u64,
    /// The event to schedule at the destination.
    pub event: Event,
}

/// Sorts a barrier batch into the canonical deterministic merge order:
/// `(fire time, source shard, source sequence)`. The order is a pure
/// function of the per-shard histories, so the destination queue assigns
/// the same FIFO tie-break sequence numbers regardless of how many worker
/// threads produced the batch.
pub fn sort_cross_events(batch: &mut [CrossEvent]) {
    batch.sort_by_key(|e| (e.time, e.src_shard, e.seq));
}

/// A simulator split into shards that execute in parallel with
/// bit-reproducible results. See the module docs for the execution model.
///
/// # Examples
///
/// Two disconnected ping-pong pairs run as two shards:
///
/// ```
/// use pels_netsim::packet::AgentId;
/// use pels_netsim::shard::{Partition, ShardedSimulator, TopologyGraph};
/// use pels_netsim::time::{SimDuration, SimTime};
/// # use pels_netsim::sim::{Agent, Context};
/// # use pels_netsim::packet::{FlowId, Packet};
/// # use std::any::Any;
/// # struct Echo { peer: Option<AgentId>, got: u32 }
/// # impl Agent for Echo {
/// #     fn start(&mut self, ctx: &mut Context<'_>) {
/// #         if let Some(peer) = self.peer {
/// #             let id = ctx.alloc_packet_id();
/// #             let pkt = Packet::data(FlowId(0), ctx.self_id, peer, 500).with_id(id);
/// #             ctx.deliver(peer, SimDuration::from_millis(5), pkt);
/// #         }
/// #     }
/// #     fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) { self.got += 1; }
/// #     fn as_any(&self) -> &dyn Any { self }
/// #     fn as_any_mut(&mut self) -> &mut dyn Any { self }
/// # }
/// let mut graph = TopologyGraph::new(4);
/// graph.add_link(AgentId(0), AgentId(1), SimDuration::from_millis(5));
/// graph.add_link(AgentId(2), AgentId(3), SimDuration::from_millis(5));
/// let partition = Partition::auto(&graph);
/// assert_eq!(partition.n_shards, 2);
///
/// let agents: Vec<Box<dyn Agent>> = vec![
///     Box::new(Echo { peer: Some(AgentId(1)), got: 0 }),
///     Box::new(Echo { peer: None, got: 0 }),
///     Box::new(Echo { peer: Some(AgentId(3)), got: 0 }),
///     Box::new(Echo { peer: None, got: 0 }),
/// ];
/// let mut sim = ShardedSimulator::new(42, &partition, agents);
/// sim.set_workers(2);
/// sim.run_until(SimTime::from_secs_f64(1.0));
/// assert_eq!(sim.agent::<Echo>(AgentId(1)).got, 1);
/// assert_eq!(sim.agent::<Echo>(AgentId(3)).got, 1);
/// ```
#[derive(Debug)]
pub struct ShardedSimulator {
    shards: Vec<Simulator>,
    map: Arc<ShardMap>,
    lookahead: Option<SimDuration>,
    now: SimTime,
    workers: usize,
    mode: ExecMode,
    barriers: u64,
    cross_events: u64,
    threads_spawned: u64,
}

impl ShardedSimulator {
    /// Builds a sharded simulator over `agents` (indexed by global
    /// `AgentId` in order) using `partition`.
    ///
    /// With a single-shard partition this is exactly the serial
    /// [`Simulator`]: same seed, same packet-id space, one global queue.
    /// With more shards, shard `s` draws from the SplitMix-derived stream
    /// [`stream_seed`]`(seed, s)` and allocates packet ids from base
    /// `s << 40`.
    ///
    /// # Panics
    ///
    /// Panics if `partition.shard_of.len() != agents.len()`.
    pub fn new(seed: u64, partition: &Partition, agents: Vec<Box<dyn Agent>>) -> Self {
        assert_eq!(
            partition.shard_of.len(),
            agents.len(),
            "partition covers {} agents, got {}",
            partition.shard_of.len(),
            agents.len()
        );
        let n_shards = partition.n_shards.max(1);
        let mut counters = vec![0u32; n_shards];
        let mut local_of = vec![0u32; agents.len()];
        for (g, &s) in partition.shard_of.iter().enumerate() {
            local_of[g] = counters[s as usize];
            counters[s as usize] += 1;
        }
        let map = Arc::new(ShardMap { shard_of: partition.shard_of.clone(), local_of });

        let shards = if n_shards == 1 {
            let mut sim = Simulator::new(seed);
            for a in agents {
                sim.add_agent(a);
            }
            vec![sim]
        } else {
            let mut shards: Vec<Simulator> = (0..n_shards)
                .map(|s| Simulator::new_shard(stream_seed(seed, s as u64), s as u32, map.clone()))
                .collect();
            for (g, a) in agents.into_iter().enumerate() {
                shards[map.shard_of[g] as usize].add_shard_agent(AgentId(g as u32), a);
            }
            shards
        };
        ShardedSimulator {
            shards,
            map,
            lookahead: partition.lookahead,
            now: SimTime::ZERO,
            workers: 1,
            mode: ExecMode::Deterministic,
            barriers: 0,
            cross_events: 0,
            threads_spawned: 0,
        }
    }

    /// Sets the number of worker threads used for multi-shard windows.
    /// In [`ExecMode::Deterministic`] this affects wall-clock time only —
    /// the event schedule is fixed by the partition, so results are
    /// byte-identical at every worker count.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured worker thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker threads a window execution will actually use: the
    /// configured count clamped to the shard count (a shard is the unit
    /// of parallelism; extra threads would have nothing to run).
    pub fn effective_workers(&self) -> usize {
        self.workers.min(self.shards.len()).max(1)
    }

    /// Selects the synchronization mode for multi-shard execution.
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The configured synchronization mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Total worker threads spawned so far. Stays 0 while
    /// [`ShardedSimulator::effective_workers`] is 1: single-worker windows
    /// run in the calling thread.
    pub fn threads_spawned(&self) -> u64 {
        self.threads_spawned
    }

    /// Number of shards in the partition.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The synchronization window, when shards exchange events.
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Window barriers executed so far.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Cross-shard events exchanged so far.
    pub fn cross_events(&self) -> u64 {
        self.cross_events
    }

    /// Current simulation time (the committed horizon all shards reached).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(Simulator::events_processed).sum()
    }

    /// Deepest single-shard event-queue high-water mark. (Shards peak at
    /// different instants, so the sum would overstate the simultaneous
    /// working set.)
    pub fn peak_queue_depth(&self) -> usize {
        self.shards.iter().map(Simulator::peak_queue_depth).max().unwrap_or(0)
    }

    /// Typed access to an agent by global id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the agent is not a `T`.
    pub fn agent<T: Agent>(&self, id: AgentId) -> &T {
        self.try_agent(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Typed access to an agent by global id.
    pub fn try_agent<T: Agent>(&self, id: AgentId) -> Result<&T, SimError> {
        self.owning_shard(id)?.try_agent(id)
    }

    /// Typed mutable access to an agent by global id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the agent is not a `T`.
    pub fn agent_mut<T: Agent>(&mut self, id: AgentId) -> &mut T {
        self.try_agent_mut(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Typed mutable access to an agent by global id.
    pub fn try_agent_mut<T: Agent>(&mut self, id: AgentId) -> Result<&mut T, SimError> {
        let s = self.shard_index(id)?;
        self.shards[s].try_agent_mut(id)
    }

    fn shard_index(&self, id: AgentId) -> Result<usize, SimError> {
        self.map.shard_of.get(id.0 as usize).map(|&s| s as usize).ok_or(SimError::UnknownAgent(id))
    }

    fn owning_shard(&self, id: AgentId) -> Result<&Simulator, SimError> {
        Ok(&self.shards[self.shard_index(id)?])
    }

    /// Schedules every fault in `schedule` into the owning shard's queue;
    /// simulator-global actions (control-fault policies) are broadcast to
    /// every shard, each of which applies them against its own RNG stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] (before anything is scheduled)
    /// if any action is invalid.
    pub fn try_install_faults(&mut self, schedule: &FaultSchedule) -> Result<(), SimError> {
        for ev in schedule.events() {
            crate::sim::validate_fault_action(&ev.action)?;
        }
        for ev in schedule.events() {
            let event = Event::Fault { agent: ev.agent, action: ev.action };
            if ev.agent == GLOBAL {
                for shard in &mut self.shards {
                    shard.inject(ev.at, event.clone());
                }
            } else {
                let s = self.shard_index(ev.agent)?;
                self.shards[s].inject(ev.at, event);
            }
        }
        Ok(())
    }

    /// Runs until simulated time reaches `deadline` (events at exactly
    /// `deadline` are processed), advancing shards in conservative windows
    /// and exchanging cross-shard events at each barrier.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.shards.len() == 1 {
            self.shards[0].run_until(deadline);
            self.now = deadline.max(self.now);
            return;
        }
        if self.mode == ExecMode::Relaxed && self.effective_workers() > 1 {
            self.run_until_relaxed(deadline);
            return;
        }
        let window = self.lookahead.unwrap_or(SimDuration::ZERO);
        loop {
            // Independent components (no lookahead) take one window to the
            // deadline; cut partitions step by the lookahead.
            let target = if window.is_zero() {
                deadline
            } else {
                deadline.min(self.now.saturating_add(window))
            };
            let last = target == deadline;
            self.run_shards_window(target, last);
            let moved = self.exchange(target);
            self.now = target;
            self.barriers += 1;
            if last && !moved {
                break;
            }
        }
        for shard in &mut self.shards {
            shard.advance_clock_to(deadline);
        }
    }

    /// Runs for `d` of simulated time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Advances every shard to `end`: exclusive while windows are interior
    /// (events at exactly `end` belong to the next window, after the
    /// barrier merge), inclusive on the final deadline window.
    fn run_shards_window(&mut self, end: SimTime, inclusive: bool) {
        let workers = self.workers.min(self.shards.len()).max(1);
        if workers == 1 {
            for shard in &mut self.shards {
                shard.run_window(end, inclusive);
            }
            return;
        }
        let chunk = self.shards.len().div_ceil(workers);
        let mut spawned = 0u64;
        std::thread::scope(|scope| {
            for group in self.shards.chunks_mut(chunk) {
                spawned += 1;
                scope.spawn(move || {
                    for shard in group {
                        shard.run_window(end, inclusive);
                    }
                });
            }
        });
        self.threads_spawned += spawned;
    }

    /// Relaxed multi-worker execution: worker threads persist across all
    /// windows of the run, exchanging cross-shard events through bounded
    /// per-worker-pair rings ([`RING_DEPTH`] window batches deep).
    ///
    /// Per window, each worker: runs its shards to the window end, drains
    /// their outboxes into one batch per destination worker (preserving
    /// per-shard emission order) and sends the non-empty batches, then
    /// crosses two reusable barriers. The continue/stop decision reads a
    /// cumulative moved-event counter strictly between the barriers, where
    /// no `fetch_add` can be in flight — every worker therefore reads the
    /// same value and makes the same decision. After the second barrier
    /// each worker drains its incoming rings in source-worker order and
    /// injects the events into its own shards.
    ///
    /// Safety of early injection: a batch produced in window `w+1` by a
    /// fast worker may land in a slow worker's window-`w` drain, but every
    /// cross event fires at least one lookahead past its emission window,
    /// so it is never in the receiving shard's past. Only the destination
    /// queue's FIFO tie-break sequence assignment can differ — the
    /// documented bit-identity trade of [`ExecMode::Relaxed`].
    fn run_until_relaxed(&mut self, deadline: SimTime) {
        let window = self.lookahead.unwrap_or(SimDuration::ZERO);
        let chunk = self.shards.len().div_ceil(self.effective_workers());
        // The last chunk can absorb the remainder, leaving fewer groups
        // than requested workers; barriers must count actual threads.
        let n_groups = self.shards.len().div_ceil(chunk);
        let start_now = self.now;

        // Ring matrix: rings[src][dst]; receivers regrouped per dst in
        // src order so the drain order below is fixed.
        let mut txs: Vec<Vec<SyncSender<Vec<CrossEvent>>>> =
            (0..n_groups).map(|_| Vec::with_capacity(n_groups)).collect();
        let mut rxs: Vec<Vec<Receiver<Vec<CrossEvent>>>> =
            (0..n_groups).map(|_| Vec::with_capacity(n_groups)).collect();
        for txs_row in &mut txs {
            for rxs_row in &mut rxs {
                let (tx, rx) = sync_channel(RING_DEPTH);
                txs_row.push(tx);
                rxs_row.push(rx);
            }
        }

        let barrier_a = Barrier::new(n_groups);
        let barrier_b = Barrier::new(n_groups);
        let moved_total = AtomicU64::new(0);
        let windows_run = AtomicU64::new(0);

        std::thread::scope(|scope| {
            let groups = self.shards.chunks_mut(chunk);
            for (((w, group), my_txs), my_rxs) in
                groups.enumerate().zip(txs.drain(..)).zip(rxs.drain(..))
            {
                let (barrier_a, barrier_b) = (&barrier_a, &barrier_b);
                let (moved_total, windows_run) = (&moved_total, &windows_run);
                let base = w * chunk;
                scope.spawn(move || {
                    let mut now = start_now;
                    let mut prev_total = 0u64;
                    let mut batches: Vec<Vec<CrossEvent>> =
                        (0..my_txs.len()).map(|_| Vec::new()).collect();
                    loop {
                        let target = if window.is_zero() {
                            deadline
                        } else {
                            deadline.min(now.saturating_add(window))
                        };
                        let last = target == deadline;
                        for shard in group.iter_mut() {
                            shard.run_window(target, last);
                        }
                        let mut moved = 0u64;
                        for shard in group.iter_mut() {
                            for ev in shard.drain_outbox() {
                                moved += 1;
                                let dst = (ev.dst_shard as usize / chunk).min(my_txs.len() - 1);
                                batches[dst].push(ev);
                            }
                        }
                        for (tx, batch) in my_txs.iter().zip(batches.iter_mut()) {
                            if !batch.is_empty() {
                                tx.send(std::mem::take(batch)).expect("receiver lives in scope");
                            }
                        }
                        moved_total.fetch_add(moved, Ordering::SeqCst);
                        barrier_a.wait();
                        // No worker can be past its next fetch_add here:
                        // reaching it requires passing barrier B, which
                        // requires everyone to finish this load first.
                        let total = moved_total.load(Ordering::SeqCst);
                        barrier_b.wait();
                        for rx in &my_rxs {
                            while let Ok(batch) = rx.try_recv() {
                                for ev in batch {
                                    debug_assert!(
                                        ev.time >= target,
                                        "lookahead violation: relaxed cross event at {:?} \
                                         before barrier {:?}",
                                        ev.time,
                                        target
                                    );
                                    group[ev.dst_shard as usize - base].inject(ev.time, ev.event);
                                }
                            }
                        }
                        now = target;
                        if w == 0 {
                            windows_run.fetch_add(1, Ordering::Relaxed);
                        }
                        if last && total == prev_total {
                            break;
                        }
                        prev_total = total;
                    }
                    for shard in group.iter_mut() {
                        shard.advance_clock_to(deadline);
                    }
                });
            }
        });

        self.now = deadline.max(self.now);
        self.barriers += windows_run.load(Ordering::Relaxed);
        self.cross_events += moved_total.load(Ordering::Relaxed);
        self.threads_spawned += n_groups as u64;
    }

    /// Drains every shard's outbox and schedules the events into their
    /// destination queues in canonical merge order. Returns whether any
    /// event moved.
    fn exchange(&mut self, barrier: SimTime) -> bool {
        let mut batch: Vec<CrossEvent> = Vec::new();
        for shard in &mut self.shards {
            batch.append(&mut shard.drain_outbox());
        }
        if batch.is_empty() {
            return false;
        }
        self.cross_events += batch.len() as u64;
        sort_cross_events(&mut batch);
        for ev in batch {
            debug_assert!(
                ev.time >= barrier,
                "lookahead violation: cross-shard event at {:?} before barrier {:?}",
                ev.time,
                barrier
            );
            self.shards[ev.dst_shard as usize].inject(ev.time, ev.event);
        }
        true
    }
}

impl AgentLookup for ShardedSimulator {
    fn agent_dyn(&self, id: AgentId) -> Result<&dyn Agent, SimError> {
        self.owning_shard(id)?.agent_dyn(id)
    }

    fn now(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};
    use crate::sim::Context;
    use std::any::Any;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// Sends `n` packets to `peer` at start, replies to everything it
    /// receives, and records arrival times.
    struct Chatter {
        peer: AgentId,
        n: u32,
        delay: SimDuration,
        got: Vec<(SimTime, u64)>,
    }

    impl Agent for Chatter {
        fn start(&mut self, ctx: &mut Context<'_>) {
            for seq in 0..self.n as u64 {
                let pkt = Packet::data(FlowId(0), ctx.self_id, self.peer, 500)
                    .with_seq(seq)
                    .with_id(ctx.alloc_packet_id());
                ctx.deliver(self.peer, self.delay, pkt);
            }
        }
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            self.got.push((ctx.now, p.seq));
            if p.kind == crate::packet::PacketKind::Data {
                let ack = Packet::ack_for(&p, 40).with_id(ctx.alloc_packet_id());
                ctx.deliver(ack.dst, self.delay, ack);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn pair(n: u32, delay: SimDuration) -> Vec<Box<dyn Agent>> {
        vec![
            Box::new(Chatter { peer: AgentId(1), n, delay, got: vec![] }),
            Box::new(Chatter { peer: AgentId(0), n: 0, delay, got: vec![] }),
        ]
    }

    #[test]
    fn stream_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 1, 42, u64::MAX] {
            seen.insert(seed);
            for i in 0..64 {
                assert!(seen.insert(stream_seed(seed, i)), "collision at seed={seed} i={i}");
            }
        }
    }

    #[test]
    fn components_partition_disconnected_graph() {
        let mut g = TopologyGraph::new(6);
        g.add_link(AgentId(0), AgentId(1), ms(1));
        g.add_link(AgentId(1), AgentId(2), ms(1));
        g.add_link(AgentId(3), AgentId(4), ms(1));
        let p = Partition::components(&g);
        // {0,1,2}, {3,4}, {5}: three components, numbered by smallest id.
        assert_eq!(p.n_shards, 3);
        assert_eq!(p.shard_of, vec![0, 0, 0, 1, 1, 2]);
        assert_eq!(p.lookahead, None);
    }

    #[test]
    fn cut_splits_dumbbell_at_bottleneck() {
        // src0, src1 - R1 ==5ms== R2 - dst0, dst1 (access links 1 ms).
        let mut g = TopologyGraph::new(6);
        let (r1, r2) = (AgentId(0), AgentId(1));
        g.add_link(r1, r2, ms(5));
        g.add_link(AgentId(2), r1, ms(1));
        g.add_link(AgentId(3), r1, ms(1));
        g.add_link(r2, AgentId(4), ms(1));
        g.add_link(r2, AgentId(5), ms(1));
        let p = Partition::auto(&g);
        assert_eq!(p.n_shards, 2);
        assert_eq!(p.lookahead, Some(ms(5)));
        assert_eq!(p.shard_of[r1.0 as usize], p.shard_of[2]);
        assert_eq!(p.shard_of[r2.0 as usize], p.shard_of[4]);
        assert_ne!(p.shard_of[r1.0 as usize], p.shard_of[r2.0 as usize]);
    }

    #[test]
    fn cut_refuses_zero_delay_graphs() {
        let mut g = TopologyGraph::new(2);
        g.add_link(AgentId(0), AgentId(1), SimDuration::ZERO);
        let p = Partition::cut(&g);
        assert_eq!(p.n_shards, 1);
    }

    #[test]
    fn single_shard_matches_serial_simulator_exactly() {
        let agents = || pair(5, ms(3));
        let mut serial = Simulator::new(7);
        for a in agents() {
            serial.add_agent(a);
        }
        serial.run_until(SimTime::from_secs_f64(1.0));

        let p = Partition::serial(2);
        let mut sharded = ShardedSimulator::new(7, &p, agents());
        sharded.run_until(SimTime::from_secs_f64(1.0));

        assert_eq!(sharded.n_shards(), 1);
        assert_eq!(sharded.events_processed(), serial.events_processed());
        assert_eq!(
            sharded.agent::<Chatter>(AgentId(1)).got,
            serial.agent::<Chatter>(AgentId(1)).got
        );
        assert_eq!(
            sharded.agent::<Chatter>(AgentId(0)).got,
            serial.agent::<Chatter>(AgentId(0)).got
        );
    }

    #[test]
    fn windowed_execution_is_worker_invariant() {
        // One cut pair: agents 0 and 1 in different shards, 4 ms lookahead.
        let mut g = TopologyGraph::new(2);
        g.add_link(AgentId(0), AgentId(1), ms(4));
        let p = Partition::cut(&g);
        assert_eq!(p.n_shards, 2);
        assert_eq!(p.lookahead, Some(ms(4)));

        let run = |workers: usize| {
            let mut sim = ShardedSimulator::new(11, &p, pair(20, ms(4)));
            sim.set_workers(workers);
            sim.run_until(SimTime::from_secs_f64(2.0));
            (
                sim.agent::<Chatter>(AgentId(0)).got.clone(),
                sim.agent::<Chatter>(AgentId(1)).got.clone(),
                sim.events_processed(),
            )
        };
        let base = run(1);
        assert_eq!(base, run(2));
        assert_eq!(base, run(8));
        // Every data packet arrived and was acked.
        assert_eq!(base.1.len(), 20);
        assert_eq!(base.0.len(), 20);
    }

    #[test]
    fn windowed_execution_moves_cross_events_and_counts_barriers() {
        let mut g = TopologyGraph::new(2);
        g.add_link(AgentId(0), AgentId(1), ms(4));
        let p = Partition::cut(&g);
        let mut sim = ShardedSimulator::new(3, &p, pair(4, ms(4)));
        sim.run_until(SimTime::from_secs_f64(0.1));
        assert_eq!(sim.cross_events(), 8, "4 data + 4 acks cross the cut");
        assert!(sim.barriers() >= 25, "0.1 s / 4 ms lookahead");
        assert_eq!(sim.now(), SimTime::from_secs_f64(0.1));
    }

    #[test]
    fn component_shards_match_serial_per_agent_history() {
        // Two disconnected pairs; serial and component-sharded runs must
        // agree on every per-agent observation (each pair is causally
        // independent, and no agent draws the global RNG).
        let agents = || -> Vec<Box<dyn Agent>> {
            vec![
                Box::new(Chatter { peer: AgentId(1), n: 3, delay: ms(2), got: vec![] }),
                Box::new(Chatter { peer: AgentId(0), n: 0, delay: ms(2), got: vec![] }),
                Box::new(Chatter { peer: AgentId(3), n: 5, delay: ms(7), got: vec![] }),
                Box::new(Chatter { peer: AgentId(2), n: 0, delay: ms(7), got: vec![] }),
            ]
        };
        let mut serial = Simulator::new(9);
        for a in agents() {
            serial.add_agent(a);
        }
        serial.run_until(SimTime::from_secs_f64(1.0));

        let mut g = TopologyGraph::new(4);
        g.add_link(AgentId(0), AgentId(1), ms(2));
        g.add_link(AgentId(2), AgentId(3), ms(7));
        let p = Partition::auto(&g);
        assert_eq!(p.n_shards, 2);
        let mut sharded = ShardedSimulator::new(9, &p, agents());
        sharded.set_workers(2);
        sharded.run_until(SimTime::from_secs_f64(1.0));

        for i in 0..4u32 {
            assert_eq!(
                sharded.agent::<Chatter>(AgentId(i)).got,
                serial.agent::<Chatter>(AgentId(i)).got,
                "agent {i} history differs"
            );
        }
        assert_eq!(sharded.events_processed(), serial.events_processed());
    }

    #[test]
    fn relaxed_mode_matches_deterministic_on_cut_pair() {
        // Two shards over a 4 ms cut. The relaxed engine must deliver the
        // same per-agent histories here: with one ring per direction and
        // lockstep windows there is no cross-ring interleaving to perturb
        // FIFO tie-breaks in this topology.
        let mut g = TopologyGraph::new(2);
        g.add_link(AgentId(0), AgentId(1), ms(4));
        let p = Partition::cut(&g);
        assert_eq!(p.n_shards, 2);

        let run = |mode: ExecMode, workers: usize| {
            let mut sim = ShardedSimulator::new(11, &p, pair(20, ms(4)));
            sim.set_workers(workers);
            sim.set_mode(mode);
            sim.run_until(SimTime::from_secs_f64(2.0));
            (
                sim.agent::<Chatter>(AgentId(0)).got.clone(),
                sim.agent::<Chatter>(AgentId(1)).got.clone(),
                sim.events_processed(),
                sim.cross_events(),
            )
        };
        let oracle = run(ExecMode::Deterministic, 1);
        assert_eq!(oracle, run(ExecMode::Relaxed, 2));
        assert_eq!(oracle.1.len(), 20);
    }

    #[test]
    fn relaxed_mode_handles_independent_components() {
        // No lookahead: one window to the deadline, no cross events.
        let mut g = TopologyGraph::new(4);
        g.add_link(AgentId(0), AgentId(1), ms(2));
        g.add_link(AgentId(2), AgentId(3), ms(7));
        let p = Partition::auto(&g);
        assert_eq!(p.n_shards, 2);
        let agents = || -> Vec<Box<dyn Agent>> {
            vec![
                Box::new(Chatter { peer: AgentId(1), n: 3, delay: ms(2), got: vec![] }),
                Box::new(Chatter { peer: AgentId(0), n: 0, delay: ms(2), got: vec![] }),
                Box::new(Chatter { peer: AgentId(3), n: 5, delay: ms(7), got: vec![] }),
                Box::new(Chatter { peer: AgentId(2), n: 0, delay: ms(7), got: vec![] }),
            ]
        };
        let mut det = ShardedSimulator::new(9, &p, agents());
        det.run_until(SimTime::from_secs_f64(1.0));
        let mut rel = ShardedSimulator::new(9, &p, agents());
        rel.set_workers(2);
        rel.set_mode(ExecMode::Relaxed);
        rel.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(rel.cross_events(), 0);
        for i in 0..4u32 {
            assert_eq!(
                rel.agent::<Chatter>(AgentId(i)).got,
                det.agent::<Chatter>(AgentId(i)).got,
                "agent {i} history differs"
            );
        }
    }

    #[test]
    fn relaxed_mode_survives_worker_counts_exceeding_groups() {
        // 4 shards, 3 workers: chunks of 2 leave only 2 groups; barriers
        // and rings must size to the actual thread count, not the request.
        let mut g = TopologyGraph::new(8);
        for pair_idx in 0..4u32 {
            g.add_link(AgentId(pair_idx * 2), AgentId(pair_idx * 2 + 1), ms(3));
        }
        let p = Partition::components(&g);
        assert_eq!(p.n_shards, 4);
        let agents = || -> Vec<Box<dyn Agent>> {
            (0..4u32)
                .flat_map(|i| {
                    vec![
                        Box::new(Chatter {
                            peer: AgentId(i * 2 + 1),
                            n: 2,
                            delay: ms(3),
                            got: vec![],
                        }) as Box<dyn Agent>,
                        Box::new(Chatter { peer: AgentId(i * 2), n: 0, delay: ms(3), got: vec![] }),
                    ]
                })
                .collect()
        };
        let mut sim = ShardedSimulator::new(5, &p, agents());
        sim.set_workers(3);
        sim.set_mode(ExecMode::Relaxed);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.threads_spawned(), 2, "2 groups of 2 shards");
        for i in 0..4u32 {
            assert_eq!(sim.agent::<Chatter>(AgentId(i * 2 + 1)).got.len(), 2);
        }
    }

    #[test]
    fn single_worker_windows_spawn_no_threads() {
        let mut g = TopologyGraph::new(2);
        g.add_link(AgentId(0), AgentId(1), ms(4));
        let p = Partition::cut(&g);
        for mode in [ExecMode::Deterministic, ExecMode::Relaxed] {
            let mut sim = ShardedSimulator::new(11, &p, pair(5, ms(4)));
            sim.set_workers(1);
            sim.set_mode(mode);
            sim.run_until(SimTime::from_secs_f64(1.0));
            assert_eq!(sim.threads_spawned(), 0, "{mode:?} with one worker must run in-thread");
            assert_eq!(sim.effective_workers(), 1);
        }
        // Multi-worker deterministic windows do spawn (and say so).
        let mut sim = ShardedSimulator::new(11, &p, pair(5, ms(4)));
        sim.set_workers(2);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert!(sim.threads_spawned() > 0);
    }

    #[test]
    fn faults_route_to_owning_shards() {
        let mut g = TopologyGraph::new(2);
        g.add_link(AgentId(0), AgentId(1), ms(4));
        let p = Partition::cut(&g);
        let mut sim = ShardedSimulator::new(3, &p, pair(2, ms(4)));
        let mut faults = FaultSchedule::new();
        faults.control_fault_window(
            crate::faults::ControlFaultPolicy::drop_fraction(1.0),
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
        );
        sim.try_install_faults(&faults).expect("valid schedule");
        sim.run_until(SimTime::from_secs_f64(2.0));
        // Data still arrives at 1, but every ACK back to 0 is dropped by
        // shard 0's control policy.
        assert_eq!(sim.agent::<Chatter>(AgentId(1)).got.len(), 2);
        assert_eq!(sim.agent::<Chatter>(AgentId(0)).got.len(), 0);
    }
}
