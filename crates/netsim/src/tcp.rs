//! Simplified TCP Reno source and sink, used as cross traffic.
//!
//! The PELS paper shares the bottleneck between the video (PELS) queue and an
//! "Internet" FIFO queue via WRR; TCP flows fill the Internet share. Because
//! the two queues are isolated by WRR, only the *presence* of saturating
//! cross traffic matters (paper Section 6.1), so this model implements the
//! Reno essentials at packet granularity: slow start, congestion avoidance,
//! triple-duplicate-ACK fast retransmit with fast recovery, and RTO with
//! exponential backoff.

use crate::fasthash::FastMap;
use crate::packet::{AgentId, FlowId, Packet, PacketKind};
use crate::port::Port;
use crate::sim::{Agent, Context};
use crate::time::{SimDuration, SimTime};
use std::any::Any;
use std::collections::BTreeSet;

const INITIAL_RTO: SimDuration = SimDuration::from_millis(1000);
const MIN_RTO: SimDuration = SimDuration::from_millis(200);

/// A greedy (always-backlogged) TCP Reno source.
///
/// Sequence numbers count packets, not bytes; every data packet has the same
/// size. The source sends through its access-link [`Port`] toward `dst`.
#[derive(Debug)]
pub struct TcpSource {
    port: Port,
    dst: AgentId,
    flow: FlowId,
    pkt_size: u32,
    start_at: SimDuration,
    /// Congestion window, packets (fractional during congestion avoidance).
    cwnd: f64,
    ssthresh: f64,
    next_seq: u64,
    snd_una: u64,
    dup_acks: u32,
    recover: u64,
    in_recovery: bool,
    rto: SimDuration,
    rto_epoch: u64,
    sent_times: FastMap<u64, SimTime>,
    srtt: Option<f64>,
    /// Total packets acknowledged (for goodput accounting).
    pub acked_packets: u64,
    /// Number of RTO events.
    pub timeouts: u64,
    /// Number of fast retransmits.
    pub fast_retransmits: u64,
}

impl TcpSource {
    /// Creates a source that starts transmitting `start_at` after time zero.
    pub fn new(
        port: Port,
        flow: FlowId,
        dst: AgentId,
        pkt_size: u32,
        start_at: SimDuration,
    ) -> Self {
        TcpSource {
            port,
            dst,
            flow,
            pkt_size,
            start_at,
            cwnd: 2.0,
            ssthresh: 64.0,
            next_seq: 0,
            snd_una: 0,
            dup_acks: 0,
            recover: 0,
            in_recovery: false,
            rto: INITIAL_RTO,
            rto_epoch: 0,
            sent_times: FastMap::default(),
            srtt: None,
            acked_packets: 0,
            timeouts: 0,
            fast_retransmits: 0,
        }
    }

    /// Current congestion window in packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Smoothed RTT estimate in seconds, once measured.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    fn inflight(&self) -> u64 {
        self.next_seq - self.snd_una
    }

    fn transmit(&mut self, seq: u64, ctx: &mut Context<'_>) {
        let mut pkt = Packet::data(self.flow, ctx.self_id, self.dst, self.pkt_size)
            .with_seq(seq)
            .with_id(ctx.alloc_packet_id());
        pkt.sent_at = ctx.now;
        self.sent_times.entry(seq).or_insert(ctx.now);
        self.port.send(pkt, ctx);
    }

    fn send_allowed(&mut self, ctx: &mut Context<'_>) {
        while (self.inflight() as f64) < self.cwnd {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.transmit(seq, ctx);
        }
    }

    fn arm_rto(&mut self, ctx: &mut Context<'_>) {
        self.rto_epoch += 1;
        ctx.schedule_timer(self.rto, self.rto_epoch);
    }

    fn on_new_ack(&mut self, ack_no: u64, ctx: &mut Context<'_>) {
        let newly = ack_no - self.snd_una;
        self.acked_packets += newly;
        // RTT sample from the oldest acknowledged packet (Karn's rule is
        // approximated by only sampling never-retransmitted entries, which
        // we drop on retransmit).
        if let Some(t) = self.sent_times.remove(&self.snd_una) {
            let sample = ctx.now.duration_since(t).as_secs_f64();
            self.srtt = Some(match self.srtt {
                None => sample,
                Some(s) => 0.875 * s + 0.125 * sample,
            });
            let srtt = self.srtt.unwrap();
            self.rto = SimDuration::from_secs_f64((2.0 * srtt).max(MIN_RTO.as_secs_f64()));
        }
        for seq in self.snd_una..ack_no {
            self.sent_times.remove(&seq);
        }
        self.snd_una = ack_no;
        self.dup_acks = 0;
        if self.in_recovery {
            if ack_no > self.recover {
                // Full acknowledgment: leave recovery.
                self.in_recovery = false;
                self.cwnd = self.ssthresh;
            } else {
                // NewReno partial ACK: the next hole is already lost —
                // retransmit it immediately instead of waiting for an RTO.
                self.sent_times.remove(&self.snd_una);
                self.transmit(self.snd_una, ctx);
            }
        } else if self.cwnd < self.ssthresh {
            self.cwnd += newly as f64; // slow start
        } else {
            self.cwnd += newly as f64 / self.cwnd; // congestion avoidance
        }
        self.arm_rto(ctx);
        self.send_allowed(ctx);
    }

    fn on_dup_ack(&mut self, ctx: &mut Context<'_>) {
        self.dup_acks += 1;
        if self.dup_acks == 3 && !self.in_recovery {
            self.fast_retransmits += 1;
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
            self.in_recovery = true;
            self.recover = self.next_seq;
            self.sent_times.remove(&self.snd_una);
            self.transmit(self.snd_una, ctx);
        } else if self.in_recovery {
            // Window inflation: each further dup ACK signals a packet has
            // left the network, so new data may be clocked out.
            self.cwnd += 1.0;
            self.send_allowed(ctx);
        }
    }
}

impl Agent for TcpSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        // Token 0 is the start kick; RTO epochs start at 1.
        ctx.schedule_timer(self.start_at, 0);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if packet.kind != PacketKind::Ack || packet.flow != self.flow {
            return;
        }
        let ack_no = packet.ack_no;
        if ack_no > self.snd_una {
            self.on_new_ack(ack_no, ctx);
        } else if ack_no == self.snd_una && self.inflight() > 0 {
            self.on_dup_ack(ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if token == 0 {
            self.send_allowed(ctx);
            self.arm_rto(ctx);
            return;
        }
        if token != self.rto_epoch {
            return; // stale timer
        }
        if self.inflight() == 0 {
            return;
        }
        // Retransmission timeout.
        self.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.rto = SimDuration::from_secs_f64((self.rto.as_secs_f64() * 2.0).min(60.0));
        self.sent_times.remove(&self.snd_una);
        self.transmit(self.snd_una, ctx);
        self.arm_rto(ctx);
    }

    fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
        self.port.on_tx_complete(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The receiving side of a [`TcpSource`]: generates cumulative ACKs.
#[derive(Debug)]
pub struct TcpSink {
    port: Port,
    flow: FlowId,
    next_expected: u64,
    out_of_order: BTreeSet<u64>,
    /// Total data packets received (including out-of-order).
    pub received_packets: u64,
}

impl TcpSink {
    /// Creates a sink answering flow `flow` through `port`.
    pub fn new(port: Port, flow: FlowId) -> Self {
        TcpSink { port, flow, next_expected: 0, out_of_order: BTreeSet::new(), received_packets: 0 }
    }

    /// Highest in-order packet count delivered to the "application".
    pub fn delivered(&self) -> u64 {
        self.next_expected
    }
}

impl Agent for TcpSink {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if packet.kind != PacketKind::Data || packet.flow != self.flow {
            return;
        }
        self.received_packets += 1;
        if packet.seq == self.next_expected {
            self.next_expected += 1;
            while self.out_of_order.remove(&self.next_expected) {
                self.next_expected += 1;
            }
        } else if packet.seq > self.next_expected {
            self.out_of_order.insert(packet.seq);
        }
        let mut ack = Packet::ack_for(&packet, 40).with_id(ctx.alloc_packet_id());
        ack.ack_no = self.next_expected;
        ack.sent_at = ctx.now;
        self.port.send(ack, ctx);
    }

    fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
        self.port.on_tx_complete(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disc::{DropTail, QueueLimit};
    use crate::router::{RouteTable, Router};
    use crate::sim::Simulator;
    use crate::time::{Rate, SimTime};

    /// Builds: src(0) -> router(1) -> sink(2), with the reverse path
    /// routed through the same router.
    fn build(bottleneck_kbps: f64, qlen: usize) -> (Simulator, AgentId, AgentId) {
        let src_id = AgentId(0);
        let router_id = AgentId(1);
        let sink_id = AgentId(2);
        let access = Rate::from_mbps(10.0);
        let delay = SimDuration::from_millis(5);

        let mut sim = Simulator::new(7);
        let src_port = Port::new(
            0,
            router_id,
            access,
            delay,
            Box::new(DropTail::new(QueueLimit::Packets(1000))),
        );
        sim.add_agent(Box::new(TcpSource::new(
            src_port,
            FlowId(1),
            sink_id,
            1000,
            SimDuration::ZERO,
        )));

        let mut routes = RouteTable::new();
        routes.add(sink_id, 0).add(src_id, 1);
        let to_sink = Port::new(
            0,
            sink_id,
            Rate::from_kbps(bottleneck_kbps),
            delay,
            Box::new(DropTail::new(QueueLimit::Packets(qlen))),
        );
        let to_src =
            Port::new(1, src_id, access, delay, Box::new(DropTail::new(QueueLimit::Packets(1000))));
        sim.add_agent(Box::new(Router::new(vec![to_sink, to_src], routes)));

        let sink_port = Port::new(
            0,
            router_id,
            access,
            delay,
            Box::new(DropTail::new(QueueLimit::Packets(1000))),
        );
        sim.add_agent(Box::new(TcpSink::new(sink_port, FlowId(1))));
        (sim, src_id, sink_id)
    }

    #[test]
    fn fills_the_bottleneck() {
        let (mut sim, src, sink) = build(1000.0, 50);
        sim.run_until(SimTime::from_secs_f64(30.0));
        let delivered = sim.agent::<TcpSink>(sink).delivered();
        // 1 Mb/s for 30 s = 3.75 MB = 3750 packets of 1000 B. Expect most
        // of it (slow start ramp + loss recovery overhead allowed).
        assert!(delivered > 3200, "delivered only {delivered} packets (expected near 3750)");
        let srtt = sim.agent::<TcpSource>(src).srtt().unwrap();
        assert!(srtt > 0.015, "srtt {srtt} too small");
    }

    #[test]
    fn recovers_from_loss_with_fast_retransmit() {
        let (mut sim, src, _sink) = build(500.0, 8);
        sim.run_until(SimTime::from_secs_f64(30.0));
        let source = sim.agent::<TcpSource>(src);
        assert!(
            source.fast_retransmits > 0,
            "a small buffer at 500 kb/s must force fast retransmits"
        );
        // The connection keeps making progress despite drops.
        assert!(source.acked_packets > 1000);
    }

    #[test]
    fn in_order_delivery_despite_drops() {
        let (mut sim, _src, sink) = build(500.0, 5);
        sim.run_until(SimTime::from_secs_f64(20.0));
        let s = sim.agent::<TcpSink>(sink);
        // Everything the application saw was strictly in order (cumulative
        // counter only moves on contiguous data).
        assert!(s.delivered() > 0);
        assert!(s.delivered() <= s.received_packets);
    }

    #[test]
    fn delayed_start_sends_nothing_early() {
        let (mut sim, _src, sink) = build(1000.0, 50);
        // Rebuild with a delayed source is cumbersome; instead verify the
        // clock gating by checking nothing is delivered in the first 4 ms
        // (2x 5 ms propagation + serialization means earliest > 10 ms).
        sim.run_until(SimTime::from_secs_f64(0.004));
        assert_eq!(sim.agent::<TcpSink>(sink).delivered(), 0);
    }
}
