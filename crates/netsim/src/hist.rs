//! A logarithmic-bucket histogram for latency-like quantities.
//!
//! Delays in this workspace span five orders of magnitude (sub-millisecond
//! green service to multi-second red starvation), so buckets grow
//! geometrically: `bucket(v) = floor(log(v / v_min) / log(growth))`.
//! Quantile estimates are exact to within one bucket (a relative error of
//! `growth - 1`).

use serde::{Deserialize, Serialize};

/// A histogram with geometrically growing buckets.
///
/// # Examples
///
/// ```
/// use pels_netsim::hist::Histogram;
///
/// let mut h = Histogram::new(1e-4, 1.2);
/// for i in 1..=100 {
///     h.record(i as f64 * 0.001); // 1..100 ms
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((0.04..0.07).contains(&p50));
/// assert_eq!(h.count(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    v_min: f64,
    log_growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram whose first bucket starts at `v_min` and whose
    /// bucket boundaries grow by factor `growth`.
    ///
    /// # Panics
    ///
    /// Panics if `v_min <= 0` or `growth <= 1`.
    pub fn new(v_min: f64, growth: f64) -> Self {
        assert!(v_min > 0.0 && v_min.is_finite(), "v_min must be positive");
        assert!(growth > 1.0 && growth.is_finite(), "growth must exceed 1");
        Histogram { v_min, log_growth: growth.ln(), counts: Vec::new(), underflow: 0, total: 0 }
    }

    /// A histogram suited to network delays: 10 µs floor, 10% buckets.
    pub fn for_delays() -> Self {
        Histogram::new(1e-5, 1.1)
    }

    /// Records one observation. Non-finite or negative values are ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        self.total += 1;
        if v < self.v_min {
            self.underflow += 1;
            return;
        }
        let bucket = ((v / self.v_min).ln() / self.log_growth) as usize;
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Lower edge of bucket `i`.
    fn bucket_low(&self, i: usize) -> f64 {
        self.v_min * (self.log_growth * i as f64).exp()
    }

    /// Estimates quantile `q` (in `[0, 1]`) as the geometric midpoint of the
    /// bucket containing it. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]: {q}");
        if self.total == 0 {
            return None;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(self.v_min / 2.0);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let lo = self.bucket_low(i);
                return Some(lo * self.log_growth.exp().sqrt());
            }
        }
        Some(self.bucket_low(self.counts.len()))
    }

    /// Merges another histogram with identical parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(self.try_merge(other), "histograms must share parameters to merge");
    }

    /// Merges another histogram if its parameters match; returns whether the
    /// merge happened. The non-panicking form of [`Histogram::merge`] for
    /// callers combining histograms of unknown provenance (e.g. telemetry
    /// snapshots).
    #[must_use]
    pub fn try_merge(&mut self, other: &Histogram) -> bool {
        if (self.v_min - other.v_min).abs() >= 1e-12
            || (self.log_growth - other.log_growth).abs() >= 1e-12
        {
            return false;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_true_values() {
        let mut h = Histogram::new(1e-4, 1.05);
        for i in 1..=1000 {
            h.record(i as f64 * 0.001);
        }
        for (q, expect) in [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let est = h.quantile(q).unwrap();
            assert!((est / expect - 1.0).abs() < 0.06, "q={q}: {est} vs {expect}");
        }
    }

    #[test]
    fn empty_and_underflow() {
        let mut h = Histogram::new(1.0, 2.0);
        assert_eq!(h.quantile(0.5), None);
        h.record(0.001); // below v_min
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5).unwrap() < 1.0);
    }

    #[test]
    fn ignores_garbage() {
        let mut h = Histogram::for_delays();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_matches_combined_stream() {
        let mut a = Histogram::for_delays();
        let mut b = Histogram::for_delays();
        let mut whole = Histogram::for_delays();
        for i in 1..=500 {
            let v = i as f64 * 2e-4;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.25, 0.5, 0.75, 0.95] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "share parameters")]
    fn merge_rejects_mismatched() {
        let mut a = Histogram::new(1.0, 2.0);
        let b = Histogram::new(1.0, 3.0);
        a.merge(&b);
    }

    #[test]
    fn try_merge_reports_mismatch_without_panicking() {
        let mut a = Histogram::new(1.0, 2.0);
        let b = Histogram::new(1.0, 3.0);
        a.record(5.0);
        assert!(!a.try_merge(&b));
        assert_eq!(a.count(), 1, "failed merge must leave the receiver untouched");
    }

    #[test]
    fn wide_range_delays() {
        let mut h = Histogram::for_delays();
        h.record(2e-5); // 20 us
        h.record(2e-3); // 2 ms
        h.record(2.0); // 2 s
        assert_eq!(h.count(), 3);
        assert!(h.quantile(1.0).unwrap() > 1.0);
        assert!(h.quantile(0.0).unwrap() < 1e-4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Quantile estimates are within one bucket (10%) of the exact
        /// empirical quantile, for any data.
        #[test]
        fn quantile_accuracy(mut data in proptest::collection::vec(1e-5f64..10.0, 10..300)) {
            let mut h = Histogram::for_delays();
            for &v in &data {
                h.record(v);
            }
            data.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.1, 0.5, 0.9] {
                let est = h.quantile(q).unwrap();
                let rank = ((q * data.len() as f64).ceil() as usize).clamp(1, data.len());
                let exact = data[rank - 1];
                prop_assert!(
                    est > exact / 1.22 && est < exact * 1.22,
                    "q={}: est {} exact {}", q, est, exact
                );
            }
        }
    }
}
