//! Packets and their headers.
//!
//! A [`Packet`] is a plain struct: in a simulator, protocol headers are just
//! fields. The fields are deliberately a superset of what every subsystem
//! needs — e.g. [`Packet::class`] drives priority classification inside queue
//! disciplines, and [`Packet::feedback`] carries the router-computed
//! congestion label `(router id, epoch z, p)` of the PELS framework (the
//! paper's Section 5.2).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an agent (host or router) registered with the simulator.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AgentId(pub u32);

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent#{}", self.0)
    }
}

/// Identifier of an end-to-end flow.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FlowId(pub u32);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// Globally unique packet identifier, assigned at creation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PacketId(pub u64);

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Application payload (video or cross-traffic data).
    Data,
    /// An acknowledgment travelling back to the source.
    Ack,
    /// A negative acknowledgment requesting retransmission of the packet
    /// identified by the frame tag (used by the ARQ comparator).
    Nack,
}

/// Congestion feedback label `(router ID, epoch z, packet loss p)` stamped by
/// AQM routers into every passing packet (paper Eq. 11 and Section 5.2).
///
/// Two loss figures travel together:
///
/// * [`Feedback::loss`] — Eq. 11's `p = (R - C)/R` over *all* traffic of the
///   queue, **signed**: negative values signal spare capacity, which is what
///   lets Kelly-style control claim bandwidth multiplicatively (the
///   "exponential" ramp of the paper's Fig. 9).
/// * [`Feedback::fgs_loss`] — the loss borne by the FGS *enhancement* layer
///   (classes yellow/red). Strict priority protects green, so all overload
///   falls on the enhancement layer; the γ-controller (Eq. 4) is defined on
///   exactly this quantity ("the measured average packet loss in the entire
///   FGS layer", Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Feedback {
    /// Identifier of the router that produced this label.
    pub router: AgentId,
    /// The router's local epoch number `z`; sources ignore stale epochs.
    pub epoch: u64,
    /// Signed total-queue loss `p = (R - C)/R`, in `(-inf, 1)`.
    pub loss: f64,
    /// Enhancement-layer (FGS) loss, in `[0, 1]`.
    pub fgs_loss: f64,
}

impl Feedback {
    /// Creates a feedback label.
    ///
    /// # Panics
    ///
    /// Panics if `loss >= 1`, `fgs_loss` is outside `[0, 1]`, or either is
    /// not finite.
    pub fn new(router: AgentId, epoch: u64, loss: f64, fgs_loss: f64) -> Self {
        assert!(loss.is_finite() && loss < 1.0, "invalid loss value: {loss}");
        assert!(
            fgs_loss.is_finite() && (0.0..=1.0).contains(&fgs_loss),
            "invalid fgs loss value: {fgs_loss}"
        );
        Feedback { router, epoch, loss, fgs_loss }
    }
}

/// Position of a packet inside a video frame (used by the FGS decoder to
/// reconstruct per-frame reception maps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameTag {
    /// Frame index within the flow (0-based).
    pub frame: u64,
    /// Packet index within the frame (0-based; base-layer packets first).
    pub index: u16,
    /// Total packets this frame was transmitted with.
    pub total: u16,
    /// How many of those packets carry the base layer.
    pub base: u16,
}

/// A simulated packet.
///
/// # Examples
///
/// ```
/// use pels_netsim::packet::{Packet, PacketKind, FlowId, AgentId};
///
/// let pkt = Packet::data(FlowId(1), AgentId(0), AgentId(3), 500);
/// assert_eq!(pkt.size_bytes, 500);
/// assert_eq!(pkt.kind, PacketKind::Data);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Globally unique id (0 until assigned by [`Packet::with_id`] or a source).
    pub id: PacketId,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Originating agent.
    pub src: AgentId,
    /// Destination agent (routers forward based on this field).
    pub dst: AgentId,
    /// Size on the wire, bytes (headers included).
    pub size_bytes: u32,
    /// Payload type.
    pub kind: PacketKind,
    /// Priority class used by classifying queue disciplines.
    /// Convention in this workspace: 0 = green, 1 = yellow, 2 = red,
    /// 3 = best-effort Internet traffic.
    pub class: u8,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Video-frame tag, when the packet carries FGS data.
    pub frame: Option<FrameTag>,
    /// Time the packet left its source.
    pub sent_at: SimTime,
    /// Congestion feedback stamped by routers along the path (data packets)
    /// or echoed back to the source (ACKs).
    pub feedback: Option<Feedback>,
    /// For ACKs: the id of the data packet being acknowledged.
    pub acks: Option<PacketId>,
    /// For ACKs: cumulative acknowledgment number (used by the TCP model).
    pub ack_no: u64,
    /// The sender's rate (bits/s) when this packet left the source, echoed
    /// back in ACKs. MKC applies its update to this *old* rate — the
    /// `r(k − D)` base of Eq. 8, which is what makes its stability
    /// independent of feedback delay (paper reference [34]).
    pub rate_echo: f64,
}

impl Packet {
    /// Creates a data packet with default class 3 (best-effort).
    pub fn data(flow: FlowId, src: AgentId, dst: AgentId, size_bytes: u32) -> Self {
        Packet {
            id: PacketId(0),
            flow,
            src,
            dst,
            size_bytes,
            kind: PacketKind::Data,
            class: 3,
            seq: 0,
            frame: None,
            sent_at: SimTime::ZERO,
            feedback: None,
            acks: None,
            ack_no: 0,
            rate_echo: 0.0,
        }
    }

    /// Creates an ACK for `data`, addressed back to its source.
    ///
    /// The ACK echoes the data packet's feedback label so that the source
    /// receives the freshest router state (paper Section 5.2).
    pub fn ack_for(data: &Packet, size_bytes: u32) -> Self {
        Packet {
            id: PacketId(0),
            flow: data.flow,
            src: data.dst,
            dst: data.src,
            size_bytes,
            kind: PacketKind::Ack,
            class: data.class,
            seq: data.seq,
            frame: data.frame,
            sent_at: SimTime::ZERO,
            feedback: data.feedback,
            acks: Some(data.id),
            ack_no: 0,
            rate_echo: data.rate_echo,
        }
    }

    /// Sets the globally unique id (builder style).
    pub fn with_id(mut self, id: PacketId) -> Self {
        self.id = id;
        self
    }

    /// Sets the priority class (builder style).
    pub fn with_class(mut self, class: u8) -> Self {
        self.class = class;
        self
    }

    /// Sets the per-flow sequence number (builder style).
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the frame tag (builder style).
    pub fn with_frame(mut self, tag: FrameTag) -> Self {
        self.frame = Some(tag);
        self
    }

    /// Size of the packet in bits.
    pub fn size_bits(&self) -> u64 {
        self.size_bytes as u64 * 8
    }

    /// Applies a router's feedback label using the *max-loss override* rule:
    /// the label in the header is replaced only if the new label reports
    /// strictly larger loss, or if no label is present yet, or if the label
    /// belongs to the same router (which refreshes its own epoch).
    ///
    /// This implements the multi-bottleneck rule of Section 5.2: "each router
    /// compares its `p_l` with that inside arriving packets and overrides the
    /// existing value only if its packet loss is larger".
    pub fn stamp_feedback(&mut self, label: Feedback) {
        match self.feedback {
            None => self.feedback = Some(label),
            Some(cur) if cur.router == label.router => self.feedback = Some(label),
            Some(cur) if label.loss > cur.loss => self.feedback = Some(label),
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::data(FlowId(7), AgentId(1), AgentId(2), 500)
    }

    #[test]
    fn data_constructor_defaults() {
        let p = pkt();
        assert_eq!(p.kind, PacketKind::Data);
        assert_eq!(p.class, 3);
        assert_eq!(p.size_bits(), 4000);
        assert!(p.feedback.is_none());
    }

    #[test]
    fn ack_reverses_direction_and_echoes_feedback() {
        let mut p = pkt().with_id(PacketId(42)).with_seq(9);
        p.stamp_feedback(Feedback::new(AgentId(5), 3, 0.25, 0.3));
        let ack = Packet::ack_for(&p, 40);
        assert_eq!(ack.src, p.dst);
        assert_eq!(ack.dst, p.src);
        assert_eq!(ack.kind, PacketKind::Ack);
        assert_eq!(ack.acks, Some(PacketId(42)));
        assert_eq!(ack.seq, 9);
        let fb = ack.feedback.expect("ack echoes feedback");
        assert_eq!(fb.epoch, 3);
        assert_eq!(fb.router, AgentId(5));
    }

    #[test]
    fn stamp_feedback_max_override() {
        let mut p = pkt();
        p.stamp_feedback(Feedback::new(AgentId(1), 1, 0.10, 0.1));
        // A different router with smaller loss must NOT override.
        p.stamp_feedback(Feedback::new(AgentId(2), 8, 0.05, 0.05));
        assert_eq!(p.feedback.unwrap().router, AgentId(1));
        // A different router with larger loss overrides.
        p.stamp_feedback(Feedback::new(AgentId(2), 9, 0.20, 0.2));
        assert_eq!(p.feedback.unwrap().router, AgentId(2));
        // The same router always refreshes its own label, even downward.
        p.stamp_feedback(Feedback::new(AgentId(2), 10, 0.01, 0.0));
        let fb = p.feedback.unwrap();
        assert_eq!(fb.epoch, 10);
        assert!((fb.loss - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid loss")]
    fn feedback_rejects_invalid_loss() {
        let _ = Feedback::new(AgentId(0), 0, 1.5, 0.0);
    }

    #[test]
    fn builder_setters() {
        let tag = FrameTag { frame: 3, index: 5, total: 126, base: 21 };
        let p = pkt().with_class(1).with_seq(77).with_frame(tag).with_id(PacketId(8));
        assert_eq!(p.class, 1);
        assert_eq!(p.seq, 77);
        assert_eq!(p.frame, Some(tag));
        assert_eq!(p.id, PacketId(8));
    }
}
