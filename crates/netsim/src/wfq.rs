//! Weighted Fair Queueing (Demers, Keshav & Shenker — the paper's
//! reference [6]).
//!
//! WFQ approximates bit-level processor sharing by stamping each arriving
//! packet with a *virtual finish time* and always serving the smallest
//! stamp. Compared to the DRR realization of WRR ([`crate::disc::Wrr`]),
//! WFQ gives tighter short-term fairness at the cost of a priority queue
//! per scheduling decision. Provided as an alternative inter-class
//! scheduler for the PELS/Internet split.

use crate::disc::{Discipline, QEntry};
use crate::time::SimTime;

/// A queued entry with its virtual finish stamp.
#[derive(Debug)]
struct Stamped {
    finish: u64,
    entry: QEntry,
}

/// A WFQ scheduler over `N` classes with per-class weights, classified by a
/// caller-supplied function (out-of-range indices clamp to the last class).
///
/// Each class keeps its own FIFO (with a per-class packet limit — per-class
/// buffering is what preserves the weighted shares under overload); the
/// scheduler serves the class whose head has the smallest virtual finish
/// stamp. Virtual time advances to the served stamp; a class's next packet
/// is stamped `max(V, last_finish_class) + size/weight`.
#[derive(Debug)]
pub struct Wfq {
    classes: Vec<std::collections::VecDeque<Stamped>>,
    weights: Vec<u32>,
    classify: fn(&QEntry) -> usize,
    last_finish: Vec<u64>,
    virtual_time: u64,
    bytes: u64,
    packets: usize,
    limit_per_class: usize,
}

impl Wfq {
    /// Creates a WFQ scheduler with `limit_per_class` packets of buffer per
    /// class.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is zero, or the limit is 0.
    pub fn new(weights: Vec<u32>, classify: fn(&QEntry) -> usize, limit_per_class: usize) -> Self {
        assert!(!weights.is_empty(), "wfq needs at least one class");
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        assert!(limit_per_class > 0, "limit must be positive");
        let n = weights.len();
        Wfq {
            classes: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            weights,
            classify,
            last_finish: vec![0; n],
            virtual_time: 0,
            bytes: 0,
            packets: 0,
            limit_per_class,
        }
    }

    fn class_of(&self, entry: &QEntry) -> usize {
        ((self.classify)(entry)).min(self.weights.len() - 1)
    }

    /// Queued packets in class `i`.
    pub fn class_len_packets(&self, i: usize) -> usize {
        self.classes[i].len()
    }
}

impl Discipline for Wfq {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn enqueue(&mut self, entry: QEntry, _now: SimTime, dropped: &mut Vec<QEntry>) {
        let class = self.class_of(&entry);
        if self.classes[class].len() >= self.limit_per_class {
            dropped.push(entry);
            return;
        }
        // Scale sizes so small weights don't lose precision: finish times
        // are in units of bytes * 1024 / weight.
        let start = self.virtual_time.max(self.last_finish[class]);
        let finish = start + (entry.size_bytes as u64 * 1024) / self.weights[class] as u64;
        self.last_finish[class] = finish;
        self.bytes += entry.size_bytes as u64;
        self.packets += 1;
        self.classes[class].push_back(Stamped { finish, entry });
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<QEntry> {
        let best = self
            .classes
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.front().map(|s| (s.finish, i)))
            .min()?;
        let s = self.classes[best.1].pop_front().expect("head exists");
        self.virtual_time = s.finish;
        self.bytes -= s.entry.size_bytes as u64;
        self.packets -= 1;
        Some(s.entry)
    }

    fn peek_size(&self) -> Option<u32> {
        self.classes
            .iter()
            .filter_map(|q| q.front().map(|s| (s.finish, s.entry.size_bytes)))
            .min()
            .map(|(_, size)| size)
    }

    fn len_packets(&self) -> usize {
        self.packets
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PacketSlot;

    fn ent(class: u8, size: u32, seq: u32) -> QEntry {
        QEntry::new(PacketSlot(seq), size, class)
    }

    fn classify(e: &QEntry) -> usize {
        e.class as usize
    }

    #[test]
    fn equal_weights_alternate() {
        let mut q = Wfq::new(vec![1, 1], classify, 1000);
        let mut d = Vec::new();
        for i in 0..10 {
            q.enqueue(ent(0, 500, 2 * i), SimTime::ZERO, &mut d);
            q.enqueue(ent(1, 500, 2 * i + 1), SimTime::ZERO, &mut d);
        }
        let mut counts = [0u32; 2];
        for k in 0..10 {
            let e = q.dequeue(SimTime::ZERO).unwrap();
            counts[e.class as usize] += 1;
            // Never more than one ahead.
            let diff = (counts[0] as i64 - counts[1] as i64).abs();
            assert!(diff <= 1, "step {k}: {counts:?}");
        }
    }

    #[test]
    fn weights_control_byte_shares() {
        let mut q = Wfq::new(vec![3, 1], classify, 10_000);
        let mut d = Vec::new();
        for i in 0..400 {
            q.enqueue(ent(0, 500, 2 * i), SimTime::ZERO, &mut d);
            q.enqueue(ent(1, 500, 2 * i + 1), SimTime::ZERO, &mut d);
        }
        let mut class0 = 0u32;
        for _ in 0..200 {
            if q.dequeue(SimTime::ZERO).unwrap().class == 0 {
                class0 += 1;
            }
        }
        assert!((148..=152).contains(&class0), "3:1 split, got {class0}/200");
    }

    #[test]
    fn work_conserving_when_one_class_idle() {
        let mut q = Wfq::new(vec![1, 1], classify, 100);
        let mut d = Vec::new();
        for i in 0..5 {
            q.enqueue(ent(1, 500, i), SimTime::ZERO, &mut d);
        }
        for _ in 0..5 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().class, 1);
        }
        assert!(q.dequeue(SimTime::ZERO).is_none());
    }

    #[test]
    fn late_arrivals_do_not_starve() {
        // Class 1 arrives after class 0 built a backlog: its first packet's
        // start time is the current virtual time, not zero, so it gets
        // served promptly rather than owing "virtual debt".
        let mut q = Wfq::new(vec![1, 1], classify, 1000);
        let mut d = Vec::new();
        for i in 0..50 {
            q.enqueue(ent(0, 500, i), SimTime::ZERO, &mut d);
        }
        for _ in 0..25 {
            q.dequeue(SimTime::ZERO);
        }
        q.enqueue(ent(1, 500, 99), SimTime::ZERO, &mut d);
        // The newcomer is served within two departures.
        let a = q.dequeue(SimTime::ZERO).unwrap();
        let b = q.dequeue(SimTime::ZERO).unwrap();
        assert!(a.class == 1 || b.class == 1);
    }

    #[test]
    fn respects_per_class_limit() {
        let mut q = Wfq::new(vec![1, 1], classify, 3);
        let mut d = Vec::new();
        for i in 0..5 {
            q.enqueue(ent(0, 500, i), SimTime::ZERO, &mut d);
        }
        // Class 0 full at 3; class 1 untouched and still accepting.
        assert_eq!(q.len_packets(), 3);
        assert_eq!(d.len(), 2);
        assert_eq!(q.len_bytes(), 1500);
        q.enqueue(ent(1, 500, 9), SimTime::ZERO, &mut d);
        assert_eq!(q.len_packets(), 4);
        assert_eq!(q.class_len_packets(1), 1);
    }

    #[test]
    fn fifo_within_a_class() {
        let mut q = Wfq::new(vec![1], classify, 100);
        let mut d = Vec::new();
        for i in 0..10 {
            q.enqueue(ent(0, 500, i), SimTime::ZERO, &mut d);
        }
        for expect in 0..10 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().slot, PacketSlot(expect));
        }
    }
}

#[cfg(test)]
mod sim_tests {
    use super::*;
    use crate::cbr::{CbrConfig, CbrSource};
    use crate::packet::{AgentId, FlowId, Packet, PacketKind};
    use crate::port::Port;
    use crate::router::{RouteTable, Router};
    use crate::sim::{Agent, Context, Simulator};
    use crate::time::{Rate, SimDuration, SimTime};
    use std::any::Any;

    struct ClassCounter {
        got: [u64; 4],
    }
    impl Agent for ClassCounter {
        fn on_packet(&mut self, p: Packet, _ctx: &mut Context<'_>) {
            if p.kind == PacketKind::Data {
                self.got[p.class.min(3) as usize] += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn wfq_port_splits_a_real_bottleneck_by_weight() {
        // Two CBR sources (classes 0 and 1) each offer 4 Mb/s into a
        // 2 Mb/s bottleneck scheduled by WFQ with weights 3:1: deliveries
        // split ~3:1.
        let mut sim = Simulator::new(4);
        let router_id = AgentId(0);
        let sink_id = AgentId(1);
        let wfq = Box::new(Wfq::new(vec![3, 1], |e| e.class as usize, 200));
        let bottleneck =
            Port::new(0, sink_id, Rate::from_mbps(2.0), SimDuration::from_millis(1), wfq);
        let mut routes = RouteTable::new();
        routes.add(sink_id, 0);
        sim.add_agent(Box::new(Router::new(vec![bottleneck], routes)));
        sim.add_agent(Box::new(ClassCounter { got: [0; 4] }));
        for class in [0u8, 1] {
            let q = Box::new(crate::disc::DropTail::new(crate::disc::QueueLimit::Packets(10)));
            let port =
                Port::new(0, router_id, Rate::from_mbps(10.0), SimDuration::from_millis(1), q);
            let cfg =
                CbrConfig::new(FlowId(class as u32), sink_id, Rate::from_mbps(4.0), 500, class);
            sim.add_agent(Box::new(CbrSource::new(cfg, port)));
        }
        sim.run_until(SimTime::from_secs_f64(20.0));
        let got = sim.agent::<ClassCounter>(sink_id).got;
        let ratio = got[0] as f64 / got[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "3:1 WFQ split, measured {ratio} ({got:?})");
        // Total throughput ~ 2 Mb/s = 500 pkt/s.
        let total = got[0] + got[1];
        assert!((total as f64 - 10_000.0).abs() < 500.0, "total {total}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::event::PacketSlot;
    use proptest::prelude::*;

    proptest! {
        /// Conservation and per-class FIFO order for arbitrary arrivals.
        /// Slots stand in for sequence numbers: they increase with arrival
        /// order, so per-class slot order is per-class FIFO order.
        #[test]
        fn conserves_and_keeps_class_order(
            arrivals in proptest::collection::vec((0u8..3, 100u32..1500), 1..200)
        ) {
            let mut q = Wfq::new(vec![2, 1, 1], |e| e.class as usize, 24);
            let mut dropped = Vec::new();
            let mut enq = 0usize;
            for (i, &(class, size)) in arrivals.iter().enumerate() {
                let e = QEntry::new(PacketSlot(i as u32), size, class);
                let before = dropped.len();
                q.enqueue(e, SimTime::ZERO, &mut dropped);
                if dropped.len() == before {
                    enq += 1;
                }
            }
            let mut last_slot = [None::<u32>; 3];
            let mut deq = 0usize;
            while let Some(e) = q.dequeue(SimTime::ZERO) {
                deq += 1;
                let c = e.class as usize;
                if let Some(last) = last_slot[c] {
                    prop_assert!(e.slot.0 > last, "class {} out of order", c);
                }
                last_slot[c] = Some(e.slot.0);
            }
            prop_assert_eq!(deq, enq);
            prop_assert_eq!(q.len_bytes(), 0);
        }
    }
}
