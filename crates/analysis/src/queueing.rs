//! Classical queueing formulas used to validate the packet simulator.
//!
//! `pels-netsim` claims to model links as fixed-rate servers with FIFO
//! queues; these closed forms (M/M/1, M/D/1, Pollaczek–Khinchine) predict
//! its behaviour under Poisson arrivals exactly, so the integration tests
//! can calibrate the simulator against eighty-year-old ground truth.

/// Utilization `ρ = λ·E[S]`.
///
/// # Panics
///
/// Panics if inputs are non-positive or not finite.
pub fn utilization(lambda: f64, mean_service_s: f64) -> f64 {
    assert!(lambda > 0.0 && lambda.is_finite(), "lambda must be positive");
    assert!(mean_service_s > 0.0 && mean_service_s.is_finite(), "service time must be positive");
    lambda * mean_service_s
}

/// M/M/1 mean time in system: `W = 1 / (μ − λ)`.
///
/// # Panics
///
/// Panics unless `0 < λ < μ`.
pub fn mm1_mean_sojourn(lambda: f64, mu: f64) -> f64 {
    assert!(lambda > 0.0 && mu > lambda, "need 0 < lambda < mu");
    1.0 / (mu - lambda)
}

/// M/M/1 mean number in system: `L = ρ / (1 − ρ)`.
pub fn mm1_mean_in_system(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "rho must be in [0,1): {rho}");
    rho / (1.0 - rho)
}

/// Pollaczek–Khinchine mean *waiting* time for M/G/1:
/// `Wq = λ·E[S²] / (2(1−ρ))`.
///
/// # Panics
///
/// Panics if `ρ >= 1` or inputs are invalid.
pub fn mg1_mean_wait(lambda: f64, mean_service_s: f64, second_moment_service: f64) -> f64 {
    let rho = utilization(lambda, mean_service_s);
    assert!(rho < 1.0, "unstable queue: rho = {rho}");
    assert!(second_moment_service >= mean_service_s * mean_service_s, "E[S^2] >= E[S]^2");
    lambda * second_moment_service / (2.0 * (1.0 - rho))
}

/// M/D/1 mean sojourn (deterministic service `s`):
/// `W = s + λ s² / (2(1−ρ))`.
pub fn md1_mean_sojourn(lambda: f64, service_s: f64) -> f64 {
    service_s + mg1_mean_wait(lambda, service_s, service_s * service_s)
}

/// M/M/1 mean sojourn via P-K (cross-check: exponential service has
/// `E[S²] = 2/μ²`).
pub fn mm1_mean_sojourn_pk(lambda: f64, mu: f64) -> f64 {
    1.0 / mu + mg1_mean_wait(lambda, 1.0 / mu, 2.0 / (mu * mu))
}

/// Erlang-B blocking probability for an M/M/c/c loss system, evaluated with
/// the numerically stable recurrence `B(0)=1; B(c)=aB(c-1)/(c+aB(c-1))`.
pub fn erlang_b(offered_erlangs: f64, servers: u32) -> f64 {
    assert!(offered_erlangs > 0.0 && offered_erlangs.is_finite(), "load must be positive");
    let a = offered_erlangs;
    let mut b = 1.0;
    for c in 1..=servers {
        b = a * b / (c as f64 + a * b);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_values() {
        // λ = 8/s, μ = 10/s: ρ = 0.8, L = 4, W = 0.5 s.
        assert!((utilization(8.0, 0.1) - 0.8).abs() < 1e-12);
        assert!((mm1_mean_in_system(0.8) - 4.0).abs() < 1e-12);
        assert!((mm1_mean_sojourn(8.0, 10.0) - 0.5).abs() < 1e-12);
        // P-K agrees with the direct formula.
        assert!((mm1_mean_sojourn_pk(8.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn md1_is_half_the_mm1_wait() {
        // Deterministic service halves the queueing delay term.
        let lambda = 8.0;
        let s = 0.1;
        let md1_wait = md1_mean_sojourn(lambda, s) - s;
        let mm1_wait = mm1_mean_sojourn(lambda, 10.0) - s;
        assert!((md1_wait - 0.5 * mm1_wait).abs() < 1e-12);
    }

    #[test]
    fn little_law_consistency() {
        // L = λ W for M/M/1.
        let (lambda, mu) = (3.0, 5.0);
        let w = mm1_mean_sojourn(lambda, mu);
        let l = mm1_mean_in_system(lambda / mu);
        assert!((l - lambda * w).abs() < 1e-12);
    }

    #[test]
    fn erlang_b_known_table_values() {
        // Classic traffic-table entries.
        assert!((erlang_b(1.0, 1) - 0.5).abs() < 1e-12);
        // A = 2 E, c = 2: B = 2/5.
        assert!((erlang_b(2.0, 2) - 0.4).abs() < 1e-12);
        // Light load, many servers: blocking ~ 0.
        assert!(erlang_b(0.1, 10) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "unstable queue")]
    fn pk_rejects_overload() {
        let _ = mg1_mean_wait(11.0, 0.1, 0.01);
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1 for perfectly equal shares,
/// `1/n` when one flow takes everything.
///
/// # Examples
///
/// ```
/// use pels_analysis::queueing::jain_index;
///
/// assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
/// assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `shares` is empty or contains negative/non-finite values.
pub fn jain_index(shares: &[f64]) -> f64 {
    assert!(!shares.is_empty(), "need at least one share");
    assert!(
        shares.iter().all(|x| x.is_finite() && *x >= 0.0),
        "shares must be non-negative and finite"
    );
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0; // all-zero allocation is (vacuously) equal
    }
    sum * sum / (shares.len() as f64 * sum_sq)
}

#[cfg(test)]
mod jain_tests {
    use super::jain_index;

    #[test]
    fn bounds_and_known_values() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[4.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // 2:1 between two flows: (3)^2 / (2*5) = 0.9.
        assert!((jain_index(&[2.0, 1.0]) - 0.9).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one share")]
    fn rejects_empty() {
        let _ = jain_index(&[]);
    }
}
