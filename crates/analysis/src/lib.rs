//! # pels-analysis — closed-form models and stability analysis
//!
//! The analytical half of the PELS paper:
//!
//! * [`useful`] — Section 3's closed forms: expected useful packets under
//!   Bernoulli loss (Lemma 1, Eq. 1–2), best-effort utility (Eq. 3), the
//!   optimal preferential benchmark, and the PELS utility lower bound
//!   (Eq. 6) with the γ fixed point (Lemma 4).
//! * [`montecarlo`] — the empirical counterparts (Table 1's "Simulations"
//!   column) and per-frame drop-pattern generators (Fig. 3).
//! * [`stability`] — difference-equation simulators for the γ-controller
//!   (Lemmas 2–3, Fig. 5) and the MKC congestion controller (Lemmas 5–6),
//!   including stability-region scans of σ and β.
//! * [`lossmodel`] — the Bernoulli channel and loss-burst statistics
//!   justifying the exponential-tail assumption.
//! * [`queueing`] — M/M/1 / M/D/1 / Erlang-B closed forms used to calibrate
//!   the packet simulator against textbook ground truth.
//!
//! ```
//! use pels_analysis::useful::{best_effort_utility, pels_utility_lower_bound};
//!
//! // At 10% loss and 100-packet frames, best-effort video is ~10% useful;
//! // PELS guarantees ~96%.
//! assert!(best_effort_utility(0.1, 100) < 0.11);
//! assert!(pels_utility_lower_bound(0.1, 0.75) > 0.96);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lossmodel;
pub mod montecarlo;
pub mod queueing;
pub mod stability;
pub mod useful;
