//! Loss-process models.
//!
//! The paper argues (Section 3) that AQM-enabled networks produce
//! near-independent drops, so it models loss as i.i.d. Bernoulli — giving
//! *geometric* (exponential-tail) loss-burst lengths, in contrast to the
//! heavy-tailed bursts of FIFO drop-tail queues. This module provides the
//! Bernoulli channel and burst-length statistics used to check that
//! assumption against the packet simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An i.i.d. Bernoulli loss channel.
///
/// # Examples
///
/// ```
/// use pels_analysis::lossmodel::BernoulliChannel;
///
/// let mut ch = BernoulliChannel::new(0.1, 42);
/// let lost = (0..10_000).filter(|_| ch.is_lost()).count();
/// assert!((lost as f64 / 10_000.0 - 0.1).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct BernoulliChannel {
    p: f64,
    rng: StdRng,
}

impl BernoulliChannel {
    /// Creates a channel with loss probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "invalid probability: {p}");
        BernoulliChannel { p, rng: StdRng::seed_from_u64(seed) }
    }

    /// Draws the fate of the next packet: `true` = lost.
    pub fn is_lost(&mut self) -> bool {
        self.rng.gen::<f64>() < self.p
    }

    /// The configured loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.p
    }
}

/// Distribution of loss-burst lengths observed in a loss indicator sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BurstStats {
    /// `counts[k-1]` = number of bursts of exactly `k` consecutive losses.
    pub counts: Vec<u64>,
}

impl BurstStats {
    /// Extracts burst lengths from a loss sequence (`true` = lost).
    pub fn from_sequence(seq: impl IntoIterator<Item = bool>) -> Self {
        let mut counts: Vec<u64> = Vec::new();
        let mut run = 0usize;
        let record = |run: usize, counts: &mut Vec<u64>| {
            if run > 0 {
                if counts.len() < run {
                    counts.resize(run, 0);
                }
                counts[run - 1] += 1;
            }
        };
        for lost in seq {
            if lost {
                run += 1;
            } else {
                record(run, &mut counts);
                run = 0;
            }
        }
        record(run, &mut counts);
        BurstStats { counts }
    }

    /// Total number of bursts.
    pub fn total_bursts(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Empirical probability of a burst having length `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.counts.len() || self.total_bursts() == 0 {
            0.0
        } else {
            self.counts[k - 1] as f64 / self.total_bursts() as f64
        }
    }

    /// Mean burst length.
    pub fn mean(&self) -> f64 {
        let total = self.total_bursts();
        if total == 0 {
            return 0.0;
        }
        self.counts.iter().enumerate().map(|(i, &c)| (i as f64 + 1.0) * c as f64).sum::<f64>()
            / total as f64
    }

    /// Fits a geometric tail: estimates `r` in `P(len = k) ∝ r^(k-1)` by the
    /// mean (`mean = 1/(1-r)`). Bernoulli loss `p` predicts `r = p`.
    pub fn geometric_ratio(&self) -> f64 {
        let m = self.mean();
        if m <= 1.0 {
            0.0
        } else {
            1.0 - 1.0 / m
        }
    }
}

/// Theoretical burst-length PMF under Bernoulli loss `p`:
/// `P(len = k) = (1-p) p^(k-1)` (geometric).
pub fn geometric_burst_pmf(p: f64, k: usize) -> f64 {
    assert!((0.0..1.0).contains(&p), "loss must be in [0,1): {p}");
    assert!(k >= 1, "burst length starts at 1");
    (1.0 - p) * p.powi(k as i32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_extraction() {
        // losses: [1,1,0,1,0,0,1,1,1] -> bursts 2,1,3.
        let seq = [true, true, false, true, false, false, true, true, true];
        let b = BurstStats::from_sequence(seq);
        assert_eq!(b.total_bursts(), 3);
        assert_eq!(b.counts, vec![1, 1, 1]);
        assert!((b.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn trailing_burst_is_counted() {
        let b = BurstStats::from_sequence([false, true, true]);
        assert_eq!(b.total_bursts(), 1);
        assert_eq!(b.pmf(2), 1.0);
    }

    #[test]
    fn no_losses_no_bursts() {
        let b = BurstStats::from_sequence([false; 10]);
        assert_eq!(b.total_bursts(), 0);
        assert_eq!(b.mean(), 0.0);
        assert_eq!(b.geometric_ratio(), 0.0);
    }

    #[test]
    fn bernoulli_bursts_are_geometric() {
        let mut ch = BernoulliChannel::new(0.3, 5);
        let seq: Vec<bool> = (0..200_000).map(|_| ch.is_lost()).collect();
        let b = BurstStats::from_sequence(seq);
        // Mean burst length = 1/(1-p) ~ 1.4286.
        assert!((b.mean() - 1.0 / 0.7).abs() < 0.02, "mean {}", b.mean());
        // Empirical ratio tracks p.
        assert!((b.geometric_ratio() - 0.3).abs() < 0.02);
        // PMF matches the geometric law at small k.
        for k in 1..=4 {
            let expect = geometric_burst_pmf(0.3, k);
            assert!((b.pmf(k) - expect).abs() < 0.01, "k={k}: {} vs {expect}", b.pmf(k));
        }
    }

    #[test]
    fn geometric_pmf_sums_to_one() {
        let total: f64 = (1..200).map(|k| geometric_burst_pmf(0.4, k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn channel_is_deterministic_per_seed() {
        let mut a = BernoulliChannel::new(0.5, 1);
        let mut b = BernoulliChannel::new(0.5, 1);
        for _ in 0..100 {
            assert_eq!(a.is_lost(), b.is_lost());
        }
    }
}

/// A two-state Gilbert loss channel: in the *good* state packets survive,
/// in the *bad* state they are lost; state transitions are Markovian. This
/// is the standard model of the bursty (heavy-tailed-ish) losses a FIFO
/// drop-tail queue produces — the contrast to the Bernoulli model the paper
/// adopts for AQM-enabled paths (Section 3).
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    /// P(good -> bad) per packet.
    p_gb: f64,
    /// P(bad -> good) per packet.
    p_bg: f64,
    in_bad: bool,
    rng: StdRng,
}

impl GilbertElliott {
    /// Creates a channel from raw transition probabilities.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities lie in `(0, 1]`.
    pub fn new(p_gb: f64, p_bg: f64, seed: u64) -> Self {
        assert!(p_gb > 0.0 && p_gb <= 1.0, "p_gb must be in (0,1]: {p_gb}");
        assert!(p_bg > 0.0 && p_bg <= 1.0, "p_bg must be in (0,1]: {p_bg}");
        GilbertElliott { p_gb, p_bg, in_bad: false, rng: StdRng::seed_from_u64(seed) }
    }

    /// Creates a channel with a given long-run average loss and mean loss
    /// burst length (`mean_burst = 1/p_bg`). Bernoulli loss `p` corresponds
    /// to `mean_burst = 1/(1-p)`; a mean burst of exactly 1 forbids
    /// consecutive losses (sub-Bernoulli burstiness).
    ///
    /// # Panics
    ///
    /// Panics if `avg_loss` is outside `(0, 1)` or `mean_burst < 1`, or the
    /// pair is infeasible (`avg_loss` too large for the requested burst).
    pub fn with_average_loss(avg_loss: f64, mean_burst: f64, seed: u64) -> Self {
        assert!(avg_loss > 0.0 && avg_loss < 1.0, "avg loss must be in (0,1): {avg_loss}");
        assert!(mean_burst >= 1.0, "mean burst must be at least 1: {mean_burst}");
        let p_bg = 1.0 / mean_burst;
        // pi_bad = p_gb / (p_gb + p_bg) = avg_loss  =>  p_gb = avg p_bg/(1-avg).
        let p_gb = avg_loss * p_bg / (1.0 - avg_loss);
        assert!(p_gb <= 1.0, "infeasible (avg_loss, mean_burst) pair");
        GilbertElliott::new(p_gb, p_bg, seed)
    }

    /// Draws the fate of the next packet: `true` = lost.
    pub fn is_lost(&mut self) -> bool {
        // Transition first, then the state decides the fate.
        let u: f64 = self.rng.gen();
        self.in_bad = if self.in_bad { u >= self.p_bg } else { u < self.p_gb };
        self.in_bad
    }

    /// Long-run average loss implied by the transition probabilities.
    pub fn average_loss(&self) -> f64 {
        self.p_gb / (self.p_gb + self.p_bg)
    }

    /// Mean loss-burst length (`1/p_bg`).
    pub fn mean_burst(&self) -> f64 {
        1.0 / self.p_bg
    }
}

#[cfg(test)]
mod gilbert_tests {
    use super::*;

    #[test]
    fn long_run_loss_matches_target() {
        let mut ch = GilbertElliott::with_average_loss(0.1, 5.0, 3);
        assert!((ch.average_loss() - 0.1).abs() < 1e-12);
        let lost = (0..500_000).filter(|_| ch.is_lost()).count();
        let rate = lost as f64 / 500_000.0;
        assert!((rate - 0.1).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn bursts_match_mean_burst() {
        let mut ch = GilbertElliott::with_average_loss(0.1, 5.0, 7);
        let seq: Vec<bool> = (0..500_000).map(|_| ch.is_lost()).collect();
        let b = BurstStats::from_sequence(seq);
        assert!((b.mean() - 5.0).abs() < 0.3, "burst mean {}", b.mean());
    }

    #[test]
    fn bernoulli_corresponds_to_burst_one_over_one_minus_p() {
        // With mean_burst = 1/(1-p) the chain's stay-bad probability equals
        // p, which is exactly Bernoulli(p): the loss flags are i.i.d.
        let p = 0.2;
        let mut ch = GilbertElliott::with_average_loss(p, 1.0 / (1.0 - p), 9);
        let seq: Vec<bool> = (0..300_000).map(|_| ch.is_lost()).collect();
        let b = BurstStats::from_sequence(seq);
        assert!((b.mean() - 1.25).abs() < 0.02, "burst mean {}", b.mean());
        // Compare burst PMF with the geometric law at small k.
        for k in 1..=3 {
            let expect = geometric_burst_pmf(p, k);
            assert!((b.pmf(k) - expect).abs() < 0.01, "k={k}");
        }
    }

    #[test]
    fn bursty_loss_helps_prefix_decoding() {
        // At equal average loss, clustering the losses lengthens the
        // gap-free prefix: E[Y] under bursty loss exceeds the Bernoulli
        // E[Y] of Eq. 2. (The paper's Bernoulli assumption is therefore
        // the *conservative* case for the best-effort analysis.)
        let h = 100u32;
        let p = 0.1;
        let trials = 30_000;
        let mut ge = GilbertElliott::with_average_loss(p, 8.0, 11);
        let mut sum = 0u64;
        for _ in 0..trials {
            let mut useful = 0u64;
            for _ in 0..h {
                if ge.is_lost() {
                    break;
                }
                useful += 1;
            }
            // Burn the rest of the frame to keep channel state realistic.
            for _ in useful..h as u64 {
                ge.is_lost();
            }
            sum += useful;
        }
        let ge_mean = sum as f64 / trials as f64;
        let bernoulli = crate::useful::expected_useful_fixed(p, h);
        assert!(
            ge_mean > 1.5 * bernoulli,
            "bursty E[Y] {ge_mean:.2} should exceed Bernoulli {bernoulli:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn rejects_infeasible_pair() {
        // Feasibility requires avg <= burst/(1+burst): 0.95 needs burst >= 19.
        let _ = GilbertElliott::with_average_loss(0.95, 10.0, 0);
    }
}
