//! Monte-Carlo cross-validation of the closed forms (the "Simulations"
//! column of the paper's Table 1), plus drop-pattern generators for Fig. 3.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Monte-Carlo estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of trials.
    pub trials: u64,
}

/// Simulates `trials` frames of `h` packets under Bernoulli loss `p` and
/// measures the mean number of useful (prefix-consecutive) packets —
/// the empirical counterpart of Eq. (2).
///
/// # Examples
///
/// ```
/// use pels_analysis::montecarlo::simulate_useful_fixed;
/// use pels_analysis::useful::expected_useful_fixed;
///
/// let est = simulate_useful_fixed(0.1, 100, 20_000, 42);
/// let model = expected_useful_fixed(0.1, 100);
/// assert!((est.mean - model).abs() < 4.0 * est.std_error + 0.05);
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`, `h == 0`, or `trials == 0`.
pub fn simulate_useful_fixed(p: f64, h: u32, trials: u64, seed: u64) -> Estimate {
    assert!((0.0..=1.0).contains(&p), "loss must be in [0,1]: {p}");
    assert!(h > 0 && trials > 0, "need h > 0 and trials > 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..trials {
        let mut useful = 0u32;
        for _ in 0..h {
            if rng.gen::<f64>() < p {
                break;
            }
            useful += 1;
        }
        let y = useful as f64;
        sum += y;
        sum_sq += y * y;
    }
    let n = trials as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    Estimate { mean, std_error: (var / n).sqrt(), trials }
}

/// Simulates the mean number of *received* packets per frame (`H(1-p)`).
pub fn simulate_received_fixed(p: f64, h: u32, trials: u64, seed: u64) -> Estimate {
    assert!((0.0..=1.0).contains(&p), "loss must be in [0,1]: {p}");
    assert!(h > 0 && trials > 0, "need h > 0 and trials > 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..trials {
        let received = (0..h).filter(|_| rng.gen::<f64>() >= p).count() as f64;
        sum += received;
        sum_sq += received * received;
    }
    let n = trials as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    Estimate { mean, std_error: (var / n).sqrt(), trials }
}

/// A per-position drop map of one frame: `true` = packet lost.
pub type DropMap = Vec<bool>;

/// Fig. 3 (left): a frame of `h` packets under *random* loss `p`.
pub fn random_drop_pattern(p: f64, h: u32, seed: u64) -> DropMap {
    assert!((0.0..=1.0).contains(&p), "loss must be in [0,1]: {p}");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..h).map(|_| rng.gen::<f64>() < p).collect()
}

/// Fig. 3 (right): the *ideal* preferential pattern — the same number of
/// drops, but all taken from the top of the frame.
pub fn ideal_drop_pattern(drops: u32, h: u32) -> DropMap {
    assert!(drops <= h, "cannot drop more than the frame size");
    (0..h).map(|i| i >= h - drops).collect()
}

/// Number of useful (prefix) packets in a drop map.
pub fn useful_in(map: &DropMap) -> u32 {
    map.iter().take_while(|&&lost| !lost).count() as u32
}

/// Number of received packets in a drop map.
pub fn received_in(map: &DropMap) -> u32 {
    map.iter().filter(|&&lost| !lost).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::useful::{expected_useful_fixed, optimal_useful};

    #[test]
    fn matches_table1_model_within_error() {
        // Reproduce all three rows of Table 1.
        for (p, expect) in [(0.0001, 99.49), (0.01, 62.76), (0.1, 8.99)] {
            let est = simulate_useful_fixed(p, 100, 100_000, 7);
            assert!(
                (est.mean - expect).abs() < 5.0 * est.std_error.max(0.01),
                "p={p}: simulated {} vs model {expect}",
                est.mean
            );
        }
    }

    #[test]
    fn received_matches_h_times_1_minus_p() {
        let est = simulate_received_fixed(0.1, 100, 50_000, 3);
        assert!((est.mean - 90.0).abs() < 0.2, "mean {}", est.mean);
    }

    #[test]
    fn ideal_pattern_is_fully_useful() {
        let map = ideal_drop_pattern(25, 126);
        assert_eq!(useful_in(&map), 101);
        assert_eq!(received_in(&map), 101);
    }

    #[test]
    fn random_pattern_wastes_received_packets() {
        let map = random_drop_pattern(0.25, 126, 5);
        // Useful is a prefix; with 25% loss it is almost surely much
        // shorter than what was received.
        assert!(useful_in(&map) < received_in(&map));
    }

    #[test]
    fn zero_loss_is_all_useful() {
        let map = random_drop_pattern(0.0, 50, 1);
        assert_eq!(useful_in(&map), 50);
        let est = simulate_useful_fixed(1e-12, 50, 100, 1);
        assert!((est.mean - 50.0).abs() < 1e-6);
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let a = simulate_useful_fixed(0.1, 100, 1_000, 11);
        let b = simulate_useful_fixed(0.1, 100, 1_000, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn useful_dominated_by_model_bounds() {
        let est = simulate_useful_fixed(0.2, 200, 20_000, 13);
        assert!(est.mean <= optimal_useful(0.2, 200));
        assert!((est.mean - expected_useful_fixed(0.2, 200)).abs() < 0.1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The simulated mean always lies within the logical bounds
        /// [0, H] and tracks the closed form within 6 standard errors.
        #[test]
        fn simulation_tracks_model(p in 0.01f64..0.5, h in 1u32..300, seed in 0u64..1000) {
            let est = simulate_useful_fixed(p, h, 3_000, seed);
            prop_assert!(est.mean >= 0.0 && est.mean <= h as f64);
            let model = crate::useful::expected_useful_fixed(p, h);
            prop_assert!(
                (est.mean - model).abs() < 6.0 * est.std_error + 0.2,
                "p={} h={} sim={} model={}", p, h, est.mean, model
            );
        }
    }
}
