//! Difference-equation simulators for the paper's stability results
//! (Lemmas 2–6).
//!
//! These iterate the controllers *as equations*, outside the packet
//! simulator, which is how the paper's Fig. 5 is produced and how the
//! stability boundaries (`σ < 2` for the γ-controller, `β < 2` for MKC) can
//! be scanned empirically.

/// Iterates the γ-controller recurrence (Eq. 4 for `delay == 1`, Eq. 5 for
/// arbitrary feedback delay `D`):
///
/// `γ(k) = γ(k-D) + σ (p(k-D)/p_thr − γ(k-D))`
///
/// `loss(k)` supplies the measured FGS-layer loss at step `k`. The iteration
/// is *unclamped* so divergence is observable; the production controller in
/// `pels-core` clamps to `[γ_low, 1]`.
///
/// Returns the trajectory `γ(0), …, γ(steps)`.
///
/// # Examples
///
/// ```
/// use pels_analysis::stability::gamma_trajectory;
///
/// // Paper Fig. 5: p = 0.5, p_thr = 0.75, σ = 0.5 converges to 2/3.
/// let traj = gamma_trajectory(0.5, 0.5, 0.75, 1, 200, |_| 0.5);
/// assert!((traj.last().unwrap() - 2.0 / 3.0).abs() < 1e-6);
/// ```
///
/// # Panics
///
/// Panics if `p_thr` is outside `(0, 1]` or `delay == 0`.
pub fn gamma_trajectory(
    gamma0: f64,
    sigma: f64,
    p_thr: f64,
    delay: usize,
    steps: usize,
    loss: impl Fn(usize) -> f64,
) -> Vec<f64> {
    assert!(p_thr > 0.0 && p_thr <= 1.0, "p_thr must be in (0,1]: {p_thr}");
    assert!(delay >= 1, "delay must be at least 1");
    let mut traj = vec![gamma0; steps + 1];
    for k in 1..=steps {
        let back = k.saturating_sub(delay);
        let prev = if k >= delay { traj[back] } else { gamma0 };
        let p = if k >= delay { loss(back) } else { loss(0) };
        traj[k] = prev + sigma * (p / p_thr - prev);
    }
    traj
}

/// Whether a trajectory converged to `target` (its tail stays within `tol`).
pub fn converged(traj: &[f64], target: f64, tol: f64) -> bool {
    let tail = traj.len() / 5;
    traj[traj.len() - tail..].iter().all(|&v| v.is_finite() && (v - target).abs() <= tol)
}

/// Whether a trajectory diverged (left any fixed bound or became non-finite).
pub fn diverged(traj: &[f64], bound: f64) -> bool {
    traj.iter().any(|v| !v.is_finite() || v.abs() > bound)
}

/// Scans the γ-controller stability region over a list of gains.
/// Returns `(σ, stable)` pairs; Lemma 2/3 predicts stability iff `0 < σ < 2`
/// for any feedback delay.
pub fn gamma_stability_scan(
    sigmas: &[f64],
    p: f64,
    p_thr: f64,
    delay: usize,
    steps: usize,
) -> Vec<(f64, bool)> {
    sigmas
        .iter()
        .map(|&sigma| {
            let traj = gamma_trajectory(0.5, sigma, p_thr, delay, steps, |_| p);
            let target = p / p_thr;
            (sigma, converged(&traj, target, 1e-3) && !diverged(&traj, 100.0))
        })
        .collect()
}

/// Configuration of the discrete MKC multi-flow simulation (Eq. 8–9).
#[derive(Debug, Clone, PartialEq)]
pub struct MkcSimConfig {
    /// Link capacity in rate units (e.g. kb/s).
    pub capacity: f64,
    /// Additive gain α per control step, same units as rates.
    pub alpha: f64,
    /// Multiplicative gain β (Lemma 5: stable iff `0 < β < 2`).
    pub beta: f64,
    /// Initial rate of every flow.
    pub r0: f64,
    /// Per-flow round-trip delays in control steps (≥ 1 each).
    pub delays: Vec<usize>,
    /// Number of control steps to simulate.
    pub steps: usize,
}

/// Result of an MKC simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MkcSimResult {
    /// `rates[i][k]` — rate of flow `i` at step `k`.
    pub rates: Vec<Vec<f64>>,
    /// Router loss feedback `p(k)`.
    pub loss: Vec<f64>,
}

/// Lemma 6: the stationary per-flow rate `r* = C/N + α/β` (independent of
/// feedback delay).
pub fn mkc_stationary_rate(capacity: f64, n_flows: usize, alpha: f64, beta: f64) -> f64 {
    assert!(n_flows > 0, "need at least one flow");
    assert!(beta > 0.0, "beta must be positive");
    capacity / n_flows as f64 + alpha / beta
}

/// The stationary loss implied by Lemma 6:
/// `p* = (N r* − C) / (N r*) = (N α/β) / (C + N α/β)`.
pub fn mkc_stationary_loss(capacity: f64, n_flows: usize, alpha: f64, beta: f64) -> f64 {
    let surplus = n_flows as f64 * alpha / beta;
    surplus / (capacity + surplus)
}

/// Simulates the MKC system (Eq. 8–9) with heterogeneous per-flow delays.
///
/// Each flow's round-trip delay `D_i` is split evenly into forward
/// (`D_i/2`, rounded down, min 0) and backward (the rest) components as in
/// the paper's model; the router computes
/// `p(k) = max(0, (Σ_j r_j(k − D_j→) − C) / Σ_j r_j(k − D_j→))`
/// and flow `i` applies `r_i(k) = r_i(k−D_i) + α − β r_i(k−D_i) p(k−D_i←)`.
///
/// # Panics
///
/// Panics if the configuration is empty or has non-positive capacity.
pub fn mkc_simulate(cfg: &MkcSimConfig) -> MkcSimResult {
    assert!(!cfg.delays.is_empty(), "need at least one flow");
    assert!(cfg.capacity > 0.0, "capacity must be positive");
    assert!(cfg.delays.iter().all(|&d| d >= 1), "delays must be >= 1");
    let n = cfg.delays.len();
    let steps = cfg.steps;
    let mut rates = vec![vec![cfg.r0; steps + 1]; n];
    let mut loss = vec![0.0f64; steps + 1];
    for k in 1..=steps {
        // Sources first: flow i applies the feedback that left the router
        // D_i^← steps ago — which the router computed from r_i(k - D_i),
        // the same sample the update is based on. This exact pairing is
        // what makes MKC's stability delay-independent (reference [34] of
        // the paper; the router-side ordering below preserves it).
        for (i, row) in rates.iter_mut().enumerate() {
            let d = cfg.delays[i];
            let bwd = d - d / 2;
            let r_old = row[k.saturating_sub(d)];
            let p_old = loss[k.saturating_sub(bwd)];
            let r_new = r_old + cfg.alpha - cfg.beta * r_old * p_old;
            row[k] = r_new.max(0.0);
        }
        // Router feedback from forward-delayed rates r_j(k - D_j^→).
        let total: f64 = (0..n)
            .map(|j| {
                let fwd = cfg.delays[j] / 2;
                rates[j][k.saturating_sub(fwd)]
            })
            .sum();
        loss[k] = if total > cfg.capacity { (total - cfg.capacity) / total } else { 0.0 };
    }
    MkcSimResult { rates, loss }
}

/// Scans MKC stability over β values. Returns `(β, stable)` pairs; Lemma 5
/// predicts stability iff `0 < β < 2` under any delays.
pub fn mkc_stability_scan(betas: &[f64], delays: &[usize], steps: usize) -> Vec<(f64, bool)> {
    betas
        .iter()
        .map(|&beta| {
            let cfg = MkcSimConfig {
                capacity: 2_000.0,
                alpha: 20.0,
                beta,
                r0: 128.0,
                delays: delays.to_vec(),
                steps,
            };
            let res = mkc_simulate(&cfg);
            let target = mkc_stationary_rate(cfg.capacity, delays.len(), cfg.alpha, beta);
            // Stable: every flow's tail converges *to the fixed point*.
            // (For β > 2 the loss floor at p = 0 turns divergence into a
            // bounded limit cycle, so a loose band test would be fooled —
            // require the deviation to actually die out.)
            let stable = res.rates.iter().all(|traj| {
                let tail = &traj[steps - steps / 10..];
                tail.iter().all(|&r| (r - target).abs() < 1e-3 * target)
            });
            (beta, stable)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_stable_gain_converges_fig5() {
        // Fig. 5: sigma = 0.5 stabilizes at gamma* = 0.5/0.75 ~ 0.67.
        let traj = gamma_trajectory(0.5, 0.5, 0.75, 1, 100, |_| 0.5);
        assert!(converged(&traj, 2.0 / 3.0, 1e-4));
    }

    #[test]
    fn gamma_unstable_gain_diverges_fig5() {
        // Fig. 5: sigma = 3 oscillates divergently.
        let traj = gamma_trajectory(0.5, 3.0, 0.75, 1, 100, |_| 0.5);
        assert!(diverged(&traj, 50.0));
    }

    #[test]
    fn gamma_boundary_sigma_two_oscillates_without_damping() {
        // At exactly sigma = 2 the deviation flips sign forever (marginal).
        let traj = gamma_trajectory(0.5, 2.0, 0.75, 1, 50, |_| 0.5);
        let target = 2.0 / 3.0;
        let d0 = (traj[1] - target).abs();
        let dn = (traj[50] - target).abs();
        assert!((d0 - dn).abs() < 1e-9, "deviation should neither grow nor shrink");
    }

    #[test]
    fn gamma_stability_region_is_zero_to_two_for_delays() {
        // Lemma 3: the region does not shrink with feedback delay.
        for delay in [1usize, 2, 5, 10] {
            let scan =
                gamma_stability_scan(&[0.1, 0.5, 1.0, 1.5, 1.9, 2.1, 3.0], 0.3, 0.75, delay, 4_000);
            for (sigma, stable) in scan {
                assert_eq!(
                    stable,
                    sigma < 2.0,
                    "delay={delay} sigma={sigma}: expected stable={}",
                    sigma < 2.0
                );
            }
        }
    }

    #[test]
    fn mkc_converges_to_lemma6_rate() {
        let cfg = MkcSimConfig {
            capacity: 2_000.0,
            alpha: 20.0,
            beta: 0.5,
            r0: 128.0,
            delays: vec![1, 1],
            steps: 2_000,
        };
        let res = mkc_simulate(&cfg);
        let target = mkc_stationary_rate(2_000.0, 2, 20.0, 0.5); // 1040
        assert!((target - 1_040.0).abs() < 1e-9);
        for traj in &res.rates {
            let last = *traj.last().unwrap();
            assert!((last - target).abs() < 0.01 * target, "rate {last} vs {target}");
        }
    }

    #[test]
    fn mkc_stationary_rate_is_delay_independent() {
        for delays in [vec![1, 1], vec![3, 7], vec![10, 2]] {
            let cfg = MkcSimConfig {
                capacity: 2_000.0,
                alpha: 20.0,
                beta: 0.5,
                r0: 128.0,
                delays,
                steps: 8_000,
            };
            let res = mkc_simulate(&cfg);
            let target = mkc_stationary_rate(2_000.0, 2, 20.0, 0.5);
            for traj in &res.rates {
                // Mean of the tail (delayed systems ring around the target).
                let tail = &traj[7_000..];
                let mean = tail.iter().sum::<f64>() / tail.len() as f64;
                assert!((mean - target).abs() < 0.05 * target, "tail mean {mean} vs {target}");
            }
        }
    }

    #[test]
    fn mkc_flows_converge_to_fair_share() {
        // Two flows with different delays still equalize (max-min fairness).
        let cfg = MkcSimConfig {
            capacity: 2_000.0,
            alpha: 20.0,
            beta: 0.5,
            r0: 50.0,
            delays: vec![2, 8],
            steps: 8_000,
        };
        let res = mkc_simulate(&cfg);
        let m = |i: usize| {
            let tail = &res.rates[i][7_000..];
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        assert!((m(0) - m(1)).abs() < 0.05 * m(0), "{} vs {}", m(0), m(1));
    }

    #[test]
    fn mkc_stationary_loss_formula() {
        // p* = (N a/b) / (C + N a/b): N=2, a=20, b=0.5 -> 80/2080.
        let p = mkc_stationary_loss(2_000.0, 2, 20.0, 0.5);
        assert!((p - 80.0 / 2_080.0).abs() < 1e-12);
        // And the simulation's loss tail agrees.
        let cfg = MkcSimConfig {
            capacity: 2_000.0,
            alpha: 20.0,
            beta: 0.5,
            r0: 128.0,
            delays: vec![1, 1],
            steps: 3_000,
        };
        let res = mkc_simulate(&cfg);
        let tail = &res.loss[2_500..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((mean - p).abs() < 0.003, "loss {mean} vs {p}");
    }

    #[test]
    fn mkc_stability_boundary_at_beta_two() {
        let scan = mkc_stability_scan(&[0.25, 0.5, 1.0, 1.5, 2.2, 3.0], &[1, 1], 6_000);
        for (beta, stable) in scan {
            assert_eq!(stable, beta < 2.0, "beta={beta}");
        }
    }

    #[test]
    fn mkc_no_oscillation_in_steady_state() {
        // Unlike AIMD, MKC has a true fixed point: the tail variance is ~0.
        let cfg = MkcSimConfig {
            capacity: 2_000.0,
            alpha: 20.0,
            beta: 0.5,
            r0: 128.0,
            delays: vec![1, 1, 1, 1],
            steps: 3_000,
        };
        let res = mkc_simulate(&cfg);
        for traj in &res.rates {
            let tail = &traj[2_900..];
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            let var = tail.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / tail.len() as f64;
            assert!(var < 1e-6, "steady-state variance {var}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Lemma 2: for any sigma in (0, 2) and any constant loss, the
        /// undelayed gamma recurrence converges to p/p_thr.
        #[test]
        fn gamma_converges_inside_region(
            sigma in 0.05f64..1.95,
            p in 0.0f64..0.74,
            gamma0 in 0.0f64..1.0,
        ) {
            let traj = gamma_trajectory(gamma0, sigma, 0.75, 1, 3_000, |_| p);
            prop_assert!(converged(&traj, p / 0.75, 1e-3));
        }

        /// Lemma 6: the MKC fixed point satisfies the recurrence exactly.
        #[test]
        fn mkc_fixed_point_is_consistent(
            c in 100.0f64..10_000.0,
            n in 1usize..20,
            alpha in 1.0f64..100.0,
            beta in 0.1f64..1.9,
        ) {
            let r = mkc_stationary_rate(c, n, alpha, beta);
            let p = mkc_stationary_loss(c, n, alpha, beta);
            // r = r + alpha - beta * r * p  =>  alpha == beta * r * p.
            prop_assert!((alpha - beta * r * p).abs() < 1e-6 * alpha);
        }
    }
}
