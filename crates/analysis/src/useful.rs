//! Closed-form expressions from Section 3 of the paper.
//!
//! * [`expected_useful_general`] — Lemma 1 / Eq. (1): `E[Y_j]` for an
//!   arbitrary frame-size PMF under Bernoulli loss.
//! * [`expected_useful_fixed`] — Eq. (2): the constant-frame-size special
//!   case.
//! * [`best_effort_utility`] — Eq. (3): utility of best-effort streaming.
//! * [`optimal_useful`] / optimal utility — the preferential ("drop from the
//!   top") benchmark where all `H(1-p)` surviving packets are consecutive.
//! * [`pels_utility_lower_bound`] — Eq. (6): the PELS guarantee under the
//!   γ-controller.

/// Eq. (1): expected number of useful (consecutively received) packets in a
/// frame whose size `H` (in packets) has PMF `pmf[k-1] = P(H = k)`, under
/// i.i.d. Bernoulli packet loss `p`.
///
/// `E[Y] = (1-p)/p * Σ_k (1 - (1-p)^k) q_k`
///
/// # Examples
///
/// ```
/// use pels_analysis::useful::{expected_useful_general, expected_useful_fixed};
///
/// // A point mass at H = 100 reduces to the fixed-size formula.
/// let mut pmf = vec![0.0; 100];
/// pmf[99] = 1.0;
/// let general = expected_useful_general(0.1, &pmf);
/// let fixed = expected_useful_fixed(0.1, 100);
/// assert!((general - fixed).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1]` or the PMF does not sum to ~1.
pub fn expected_useful_general(p: f64, pmf: &[f64]) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "loss must be in (0,1]: {p}");
    let total: f64 = pmf.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "PMF must sum to 1 (got {total})");
    let q = 1.0 - p;
    let sum: f64 = pmf.iter().enumerate().map(|(i, &qk)| (1.0 - q.powi(i as i32 + 1)) * qk).sum();
    q / p * sum
}

/// Eq. (2): `E[Y] = (1-p)/p * (1 - (1-p)^H)` for fixed frame size `H`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1]` or `H == 0`.
pub fn expected_useful_fixed(p: f64, h: u32) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "loss must be in (0,1]: {p}");
    assert!(h > 0, "frame size must be positive");
    let q = 1.0 - p;
    q / p * (1.0 - q.powi(h as i32))
}

/// The saturation limit of Eq. (2) as `H → ∞`: `(1-p)/p`.
pub fn useful_saturation(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "loss must be in (0,1]: {p}");
    (1.0 - p) / p
}

/// Eq. (3): utility of best-effort streaming,
/// `U = E[Y] / (H(1-p)) = (1 - (1-p)^H) / (Hp)`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1]` or `H == 0`.
pub fn best_effort_utility(p: f64, h: u32) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "loss must be in (0,1]: {p}");
    assert!(h > 0, "frame size must be positive");
    (1.0 - (1.0 - p).powi(h as i32)) / (h as f64 * p)
}

/// Useful packets under *optimal* preferential streaming: all `H(1-p)`
/// survivors are consecutive (Section 3.2), so every received packet is
/// useful and utility is 1.
pub fn optimal_useful(p: f64, h: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "loss must be in [0,1]: {p}");
    h as f64 * (1.0 - p)
}

/// Eq. (6): lower bound on PELS utility when γ is controlled to keep red
/// loss at `p_thr`: `U >= (1 - p/p_thr) / (1 - p)`.
///
/// Returns 0 when the bound is vacuous (`p >= p_thr`).
///
/// # Examples
///
/// ```
/// use pels_analysis::useful::pels_utility_lower_bound;
///
/// // The paper's examples: U >= 0.96 for p=0.1, and >= 0.996 for p=0.01.
/// assert!(pels_utility_lower_bound(0.10, 0.75) > 0.96);
/// assert!(pels_utility_lower_bound(0.01, 0.75) > 0.996);
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1)` or `p_thr` outside `(0, 1]`.
pub fn pels_utility_lower_bound(p: f64, p_thr: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "loss must be in [0,1): {p}");
    assert!(p_thr > 0.0 && p_thr <= 1.0, "p_thr must be in (0,1]: {p_thr}");
    ((1.0 - p / p_thr) / (1.0 - p)).max(0.0)
}

/// The stationary partition fraction the γ-controller converges to
/// (Lemma 4): `γ* = p / p_thr`, clamped to `[0, 1]`.
pub fn gamma_fixed_point(p: f64, p_thr: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "loss must be in [0,1]: {p}");
    assert!(p_thr > 0.0 && p_thr <= 1.0, "p_thr must be in (0,1]: {p_thr}");
    (p / p_thr).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        // Paper Table 1 (H = 100): model column.
        assert!((expected_useful_fixed(0.0001, 100) - 99.49).abs() < 0.01);
        assert!((expected_useful_fixed(0.01, 100) - 62.76).abs() < 0.01);
        assert!((expected_useful_fixed(0.1, 100) - 8.99).abs() < 0.01);
    }

    #[test]
    fn saturation_limit() {
        // Section 3.1: at p = 0.1 the useful count saturates at 9.
        assert!((useful_saturation(0.1) - 9.0).abs() < 1e-12);
        let big = expected_useful_fixed(0.1, 10_000);
        assert!((big - 9.0).abs() < 1e-9);
    }

    #[test]
    fn paper_utility_example() {
        // Section 3.1: U = 0.1 for p = 0.1, H = 100 (to one significant digit).
        let u = best_effort_utility(0.1, 100);
        assert!((u - 0.09999).abs() < 1e-3, "utility {u}");
    }

    #[test]
    fn utility_decays_inverse_in_h() {
        // U ~ 1/(Hp) for large H: doubling H halves utility.
        let u1 = best_effort_utility(0.1, 1_000);
        let u2 = best_effort_utility(0.1, 2_000);
        assert!((u1 / u2 - 2.0).abs() < 1e-3);
    }

    #[test]
    fn utility_tends_to_one_for_tiny_frames() {
        assert!(best_effort_utility(0.1, 1) > 0.999);
    }

    #[test]
    fn general_reduces_to_fixed_for_point_mass() {
        for h in [1usize, 10, 100] {
            let mut pmf = vec![0.0; h];
            pmf[h - 1] = 1.0;
            assert!(
                (expected_useful_general(0.05, &pmf) - expected_useful_fixed(0.05, h as u32)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn general_mixture_is_between_components() {
        // 50/50 mixture of H=10 and H=100.
        let mut pmf = vec![0.0; 100];
        pmf[9] = 0.5;
        pmf[99] = 0.5;
        let mix = expected_useful_general(0.1, &pmf);
        let lo = expected_useful_fixed(0.1, 10);
        let hi = expected_useful_fixed(0.1, 100);
        assert!(mix > lo && mix < hi);
        // E[Y] for a mixture is the mixture of E[Y]s (linearity).
        assert!((mix - 0.5 * (lo + hi)).abs() < 1e-12);
    }

    #[test]
    fn pels_bound_dominates_best_effort() {
        for p in [0.01, 0.05, 0.1, 0.2] {
            let pels = pels_utility_lower_bound(p, 0.75);
            let be = best_effort_utility(p, 105);
            assert!(pels > be, "p={p}: pels bound {pels} <= best-effort {be}");
        }
    }

    #[test]
    fn gamma_fixed_point_examples() {
        // Paper Fig. 5: p = 0.5, p_thr = 0.75 -> gamma* ~= 0.67.
        assert!((gamma_fixed_point(0.5, 0.75) - 2.0 / 3.0).abs() < 1e-12);
        // Clamps when loss exceeds the threshold.
        assert_eq!(gamma_fixed_point(0.9, 0.75), 1.0);
    }

    #[test]
    #[should_panic(expected = "PMF must sum to 1")]
    fn rejects_unnormalized_pmf() {
        let _ = expected_useful_general(0.1, &[0.5, 0.2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Utility is in (0, 1], decreasing in H, and decreasing in p.
        #[test]
        fn utility_bounds_and_monotonicity(p in 0.001f64..0.9, h in 1u32..2000) {
            let u = best_effort_utility(p, h);
            // (1e-12 slack: for H = 1 the exact value is 1 up to rounding.)
            prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
            prop_assert!(best_effort_utility(p, h + 1) <= u + 1e-12);
            prop_assert!(best_effort_utility((p + 0.05).min(0.95), h) <= u + 1e-12);
        }

        /// E[Y] never exceeds the optimal H(1-p) nor the saturation (1-p)/p.
        #[test]
        fn useful_dominated_by_optimal(p in 0.001f64..0.9, h in 1u32..2000) {
            let ey = expected_useful_fixed(p, h);
            prop_assert!(ey <= optimal_useful(p, h) + 1e-9);
            prop_assert!(ey <= useful_saturation(p) + 1e-9);
        }

        /// Eq. (6) bound is within [0, 1].
        #[test]
        fn pels_bound_in_unit_interval(p in 0.0f64..0.99, thr in 0.01f64..=1.0) {
            let b = pels_utility_lower_bound(p, thr);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&b));
        }
    }
}
