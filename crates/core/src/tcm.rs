//! A single-rate three-color marker (srTCM, RFC 2697) — the DiffServ-style
//! *network-side* marking the paper's related work critiques (Section 2.1:
//! ingress routers "can arbitrarily remark" packets, and network-side
//! markers cannot see the video's frame structure).
//!
//! Two token buckets share a committed information rate: the committed
//! bucket (size CBS) colors conforming traffic green, the excess bucket
//! (size EBS) colors the next tier yellow, everything else is red. Coloring
//! depends only on arrival times and sizes — exactly why it cannot place
//! the green tokens on the packets the *decoder* needs.

use crate::color::Color;
use pels_netsim::time::{Rate, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of a [`SrTcm`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcmConfig {
    /// Committed information rate.
    pub cir: Rate,
    /// Committed burst size, bytes (green bucket).
    pub cbs: u32,
    /// Excess burst size, bytes (yellow bucket).
    pub ebs: u32,
}

impl Default for TcmConfig {
    fn default() -> Self {
        TcmConfig { cir: Rate::from_kbps(256.0), cbs: 4_000, ebs: 8_000 }
    }
}

/// The color-blind single-rate three-color marker.
///
/// # Examples
///
/// ```
/// use pels_core::color::Color;
/// use pels_core::tcm::{SrTcm, TcmConfig};
/// use pels_netsim::time::SimTime;
///
/// let mut tcm = SrTcm::new(TcmConfig::default());
/// // The first packets fit the committed burst: green.
/// assert_eq!(tcm.mark(500, SimTime::ZERO), Color::Green);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SrTcm {
    cfg: TcmConfig,
    tc: f64,
    te: f64,
    last: SimTime,
    /// Packets marked per color (green, yellow, red).
    pub marked: [u64; 3],
}

impl SrTcm {
    /// Creates a marker with full buckets.
    ///
    /// # Panics
    ///
    /// Panics if the rate or the committed burst is zero.
    pub fn new(cfg: TcmConfig) -> Self {
        assert!(cfg.cir.as_bps() > 0, "CIR must be positive");
        assert!(cfg.cbs > 0, "CBS must be positive");
        SrTcm { cfg, tc: cfg.cbs as f64, te: cfg.ebs as f64, last: SimTime::ZERO, marked: [0; 3] }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        let mut tokens = self.cfg.cir.as_bps() as f64 / 8.0 * dt;
        let room_c = self.cfg.cbs as f64 - self.tc;
        let to_c = tokens.min(room_c);
        self.tc += to_c;
        tokens -= to_c;
        self.te = (self.te + tokens).min(self.cfg.ebs as f64);
    }

    /// Colors a packet of `bytes` arriving at `now` (RFC 2697, color-blind
    /// mode).
    pub fn mark(&mut self, bytes: u32, now: SimTime) -> Color {
        self.refill(now);
        let b = bytes as f64;
        let color = if self.tc >= b {
            self.tc -= b;
            Color::Green
        } else if self.te >= b {
            self.te -= b;
            Color::Yellow
        } else {
            Color::Red
        };
        self.marked[color.class() as usize] += 1;
        color
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_netsim::time::SimDuration;

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn burst_progression_green_yellow_red() {
        // 4 kB committed + 8 kB excess, all at t=0: 8 green, 16 yellow,
        // then red.
        let mut tcm = SrTcm::new(TcmConfig::default());
        let mut colors = Vec::new();
        for _ in 0..30 {
            colors.push(tcm.mark(500, SimTime::ZERO));
        }
        assert_eq!(colors.iter().filter(|&&c| c == Color::Green).count(), 8);
        assert_eq!(colors.iter().filter(|&&c| c == Color::Yellow).count(), 16);
        assert_eq!(colors.iter().filter(|&&c| c == Color::Red).count(), 6);
        assert_eq!(tcm.marked, [8, 16, 6]);
    }

    #[test]
    fn committed_rate_stays_green() {
        // 256 kb/s = 32,000 B/s = one 500-byte packet every 15.625 ms.
        // Sending at exactly that pace keeps everything green.
        let mut tcm = SrTcm::new(TcmConfig::default());
        for k in 0..100u64 {
            let t = SimTime::ZERO + SimDuration::from_micros(k * 15_625);
            assert_eq!(tcm.mark(500, t), Color::Green, "packet {k}");
        }
    }

    #[test]
    fn double_rate_splits_green_yellow() {
        // Sending at 2x CIR: steady state marks ~half green (the committed
        // bucket refills at CIR) and the rest yellow until EBS exhausts.
        let mut tcm = SrTcm::new(TcmConfig { ebs: 1_000_000, ..Default::default() });
        let mut greens = 0u32;
        let n = 2_000u64;
        for k in 0..n {
            let t = SimTime::ZERO + SimDuration::from_micros(k * 7_812);
            if tcm.mark(500, t) == Color::Green {
                greens += 1;
            }
        }
        let frac = greens as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "green fraction {frac}");
    }

    #[test]
    fn idle_refills_buckets() {
        let mut tcm = SrTcm::new(TcmConfig::default());
        for _ in 0..30 {
            tcm.mark(500, SimTime::ZERO); // drain everything
        }
        assert_eq!(tcm.mark(500, SimTime::ZERO), Color::Red);
        // After a long idle period both buckets are full again.
        assert_eq!(tcm.mark(500, at_ms(10_000)), Color::Green);
    }

    #[test]
    fn marking_ignores_content() {
        // The defining limitation: two identical arrival patterns get
        // identical colors regardless of what the packets carry.
        let mut a = SrTcm::new(TcmConfig::default());
        let mut b = SrTcm::new(TcmConfig::default());
        for k in 0..50u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(k);
            assert_eq!(a.mark(500, t), b.mark(500, t));
        }
    }
}
