//! Parallel scenario execution over the sharded simulator.
//!
//! [`ParallelScenario`] is [`Scenario`]'s multi-core sibling: it builds the
//! same agents from the same [`ScenarioConfig`], but partitions the link
//! graph with [`Partition::auto`] and drives the shards with
//! [`ShardedSimulator`]. The partition is a pure function of the topology —
//! the worker count only sizes the thread pool — so a run's results are
//! byte-identical at every `--workers` value, and a single-shard partition
//! degenerates to the exact serial event loop.
//!
//! [`Scenario`]: crate::scenario::Scenario

use pels_netsim::packet::AgentId;
use pels_netsim::shard::{Partition, ShardedSimulator};
use pels_netsim::time::{SimDuration, SimTime};

use crate::receiver::PelsReceiver;
use crate::router::AqmRouter;
use crate::scenario::{build_parts, compute_report, ScenarioConfig, ScenarioIds, ScenarioReport};
use crate::source::PelsSource;

/// A [`ScenarioConfig`] instantiated on the sharded parallel engine.
///
/// ```no_run
/// use pels_core::parallel::ParallelScenario;
/// use pels_core::scenario::chained_proportional_config;
/// use pels_netsim::time::SimTime;
///
/// let mut sc = ParallelScenario::build(chained_proportional_config(32));
/// sc.set_workers(8);
/// sc.run_until(SimTime::from_secs_f64(10.0));
/// let report = sc.report(); // identical to the same run with 1 worker
/// # let _ = report;
/// ```
pub struct ParallelScenario {
    /// The underlying sharded simulator.
    pub sim: ShardedSimulator,
    ids: ScenarioIds,
    cfg: ScenarioConfig,
}

impl ParallelScenario {
    /// Builds the scenario, partitioning the topology automatically:
    /// disconnected component per shard when the layout decomposes (e.g.
    /// [`crate::scenario::Layout::ChainPerFlow`]), a delay-cut otherwise,
    /// serial as the fallback. Panics on an invalid configuration.
    pub fn build(cfg: ScenarioConfig) -> Self {
        Self::try_build(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`ParallelScenario::build`].
    pub fn try_build(cfg: ScenarioConfig) -> Result<Self, crate::SimError> {
        let parts = build_parts(&cfg)?;
        let partition = Partition::auto(&parts.graph);
        let sim = ShardedSimulator::new(cfg.seed, &partition, parts.agents);
        Ok(ParallelScenario { sim, ids: parts.ids, cfg })
    }

    /// Sets the number of OS threads used per window. This affects wall
    /// clock only — the schedule, and therefore every result, is fixed by
    /// the partition.
    pub fn set_workers(&mut self, workers: usize) {
        self.sim.set_workers(workers);
    }

    /// Number of shards the topology was split into.
    pub fn n_shards(&self) -> usize {
        self.sim.n_shards()
    }

    /// The conservative window size, if this partition needs windows
    /// (`None` for component partitions, which never exchange events).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.sim.lookahead()
    }

    /// Runs the scenario until simulated time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Runs the scenario for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// The scenario configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// High-water mark of the deepest single shard's event queue.
    pub fn peak_queue_depth(&self) -> usize {
        self.sim.peak_queue_depth()
    }

    /// Agent ids of the AQM bottleneck router(s).
    pub fn router_ids(&self) -> &[AgentId] {
        &self.ids.routers
    }

    /// Fallible fault-schedule installation; see
    /// [`pels_netsim::shard::ShardedSimulator::try_install_faults`].
    pub fn try_install_faults(
        &mut self,
        schedule: &pels_netsim::faults::FaultSchedule,
    ) -> Result<(), crate::SimError> {
        self.sim.try_install_faults(schedule)
    }

    /// Attaches a telemetry handle to every instrumented agent, mirroring
    /// [`crate::scenario::Scenario::attach_telemetry`].
    pub fn attach_telemetry(&mut self, telemetry: &pels_telemetry::Telemetry) {
        for &id in &self.ids.routers {
            self.sim.agent_mut::<AqmRouter>(id).set_telemetry(telemetry.clone());
        }
        for &id in &self.ids.sources {
            self.sim.agent_mut::<PelsSource>(id).set_telemetry(telemetry.clone());
        }
        for &id in &self.ids.receivers {
            self.sim.agent_mut::<PelsReceiver>(id).set_telemetry(telemetry.clone());
        }
    }

    /// Scrapes engine-level gauges and flushes the registry, mirroring
    /// [`crate::scenario::Scenario::flush_telemetry`].
    pub fn flush_telemetry(&self, telemetry: &pels_telemetry::Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.gauge_set("sim.events", self.sim.events_processed() as f64);
        let queued: usize = self
            .ids
            .routers
            .iter()
            .map(|&r| self.sim.agent::<AqmRouter>(r).port(0).discipline().len_packets())
            .sum();
        telemetry.gauge_set("sim.router.queue_pkts", queued as f64);
        telemetry.flush(self.sim.now().as_secs_f64());
    }

    /// Summarizes the run into the same serializable report the serial
    /// engine produces — byte-identical for the same config and seed.
    pub fn report(&self) -> ScenarioReport {
        compute_report(&self.sim, &self.cfg, &self.ids)
    }

    /// Aggregate utility across all video flows, mirroring
    /// [`crate::scenario::Scenario::total_utility`].
    pub fn total_utility(&self) -> pels_fgs::decoder::UtilityStats {
        let mut total = pels_fgs::decoder::UtilityStats::new();
        for &id in &self.ids.receivers {
            let r = self.sim.agent::<PelsReceiver>(id);
            for d in r.decode_all() {
                total.add(&d);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{chained_proportional_config, proportional_config, Scenario};

    fn horizon() -> SimTime {
        SimTime::from_secs_f64(5.0)
    }

    #[test]
    fn chained_layout_shards_per_flow() {
        let sc = ParallelScenario::build(chained_proportional_config(6));
        assert_eq!(sc.n_shards(), 6);
        assert_eq!(sc.lookahead(), None);
    }

    #[test]
    fn shared_dumbbell_still_runs() {
        let mut sc = ParallelScenario::build(proportional_config(3));
        sc.run_until(horizon());
        let report = sc.report();
        assert_eq!(report.flows.len(), 3);
        assert!(report.bottleneck_tx_by_class.iter().sum::<u64>() > 0);
    }

    #[test]
    fn parallel_report_matches_serial_scenario_on_chains() {
        let cfg = chained_proportional_config(4);
        let mut serial = Scenario::build(cfg.clone());
        serial.run_until(horizon());
        let mut par = ParallelScenario::build(cfg);
        par.set_workers(2);
        par.run_until(horizon());
        let a = serde_json::to_string(&serial.report()).unwrap();
        let b = serde_json::to_string(&par.report()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_does_not_change_report() {
        let cfg = chained_proportional_config(8);
        let reports: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let mut sc = ParallelScenario::build(cfg.clone());
                sc.set_workers(w);
                sc.run_until(horizon());
                serde_json::to_string(&sc.report()).unwrap()
            })
            .collect();
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }
}
