//! The γ partition controller (paper Section 4.3, Eq. 4–5).
//!
//! γ is the fraction of each frame's transmitted enhancement bytes marked
//! red. The controller drives the red-queue loss `p_R = p/γ` to a target
//! `p_thr` by the proportional rule
//!
//! `γ(k) = γ(k-1) + σ (p(k-1)/p_thr − γ(k-1))`
//!
//! which is stable iff `0 < σ < 2` (Lemma 2; Lemma 3 extends this to
//! arbitrary feedback delay) and converges `p_R → p_thr` under stationary
//! loss (Lemma 4). The production controller here clamps γ to
//! `[gamma_low, 1]` as the paper's simulations do (Fig. 7: γ falls to
//! `γ_low = 0.05` while there is no loss).
//!
//! Robustness: when a loss sample is missing or garbled (non-finite) — as
//! happens under feedback loss or link failure — the controller *holds* the
//! last stable γ instead of treating the gap as zero loss, which would
//! wrongly decay γ to the floor and mispartition yellow/red on recovery.

use crate::SimError;
use pels_netsim::error::invalid_config;
use serde::{Deserialize, Serialize};

/// Configuration of [`GammaController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaConfig {
    /// Controller gain σ. Must be in `(0, 2)` for stability.
    pub sigma: f64,
    /// Target red-queue loss `p_thr` (the paper stabilizes 0.70–0.90;
    /// simulations use 0.75).
    pub p_thr: f64,
    /// Initial partition fraction.
    pub gamma0: f64,
    /// Lower clamp `γ_low` — a minimum red probe share is always kept.
    pub gamma_low: f64,
}

impl Default for GammaConfig {
    fn default() -> Self {
        GammaConfig { sigma: 0.5, p_thr: 0.75, gamma0: 0.5, gamma_low: 0.05 }
    }
}

/// The per-flow γ controller.
///
/// # Examples
///
/// ```
/// use pels_core::gamma::{GammaConfig, GammaController};
///
/// let mut g = GammaController::new(GammaConfig::default());
/// for _ in 0..100 {
///     g.update(0.5); // heavy stationary loss
/// }
/// // Lemma 4 / Fig. 5: gamma* = p / p_thr = 0.5 / 0.75.
/// assert!((g.gamma() - 2.0 / 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GammaController {
    cfg: GammaConfig,
    gamma: f64,
    updates: u64,
    /// Control steps where the loss sample was missing and γ was held.
    held: u64,
}

impl GammaController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is out of range (`σ <= 0`,
    /// `p_thr` outside `(0, 1]`, `γ0`/`γ_low` outside `[0, 1]`, or
    /// `γ_low > γ0`).
    pub fn new(cfg: GammaConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a controller, rejecting invalid configurations as
    /// [`SimError::InvalidConfig`] instead of panicking.
    pub fn try_new(cfg: GammaConfig) -> Result<Self, SimError> {
        if !(cfg.sigma > 0.0 && cfg.sigma.is_finite()) {
            return Err(invalid_config("sigma must be positive"));
        }
        if !(cfg.p_thr > 0.0 && cfg.p_thr <= 1.0) {
            return Err(invalid_config(format!("p_thr must be in (0,1]: {}", cfg.p_thr)));
        }
        if !((0.0..=1.0).contains(&cfg.gamma0) && (0.0..=1.0).contains(&cfg.gamma_low)) {
            return Err(invalid_config("gamma bounds must be in [0,1]"));
        }
        if cfg.gamma_low > cfg.gamma0 {
            return Err(invalid_config("gamma_low must not exceed gamma0"));
        }
        Ok(GammaController { cfg, gamma: cfg.gamma0, updates: 0, held: 0 })
    }

    /// The current partition fraction γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The configuration.
    pub fn config(&self) -> &GammaConfig {
        &self.cfg
    }

    /// Applies one control step with the measured FGS-layer loss `p`
    /// (Eq. 4). Negative `p` (spare capacity in the congestion-control
    /// feedback) is treated as zero loss; a non-finite `p` (missing sample)
    /// holds γ via [`GammaController::hold`]. Returns the new γ.
    pub fn update(&mut self, p: f64) -> f64 {
        if !p.is_finite() {
            return self.hold();
        }
        let p = p.clamp(0.0, 1.0);
        let raw = self.gamma + self.cfg.sigma * (p / self.cfg.p_thr - self.gamma);
        self.gamma = raw.clamp(self.cfg.gamma_low, 1.0);
        self.updates += 1;
        self.gamma
    }

    /// Explicitly holds the last stable γ for one control interval whose
    /// loss sample is missing (feedback lost or stale). The clamp to
    /// `[gamma_low, 1]` is re-applied defensively; the update counter does
    /// not advance, but the hold is counted in [`GammaController::held`].
    pub fn hold(&mut self) -> f64 {
        self.gamma = self.gamma.clamp(self.cfg.gamma_low, 1.0);
        self.held += 1;
        self.gamma
    }

    /// Number of control intervals where γ was held for lack of a sample.
    pub fn held(&self) -> u64 {
        self.held
    }

    /// The fixed point γ* = p/p_thr the controller converges to under
    /// stationary loss `p` (Lemma 4), respecting the clamp.
    pub fn fixed_point(&self, p: f64) -> f64 {
        (p / self.cfg.p_thr).clamp(self.cfg.gamma_low, 1.0)
    }
}

/// The delayed form of the γ controller (Eq. 5):
/// `γ(k) = γ(k−D) + σ (p(k−D)/p_thr − γ(k−D))` for a fixed feedback delay
/// of `D` control steps.
///
/// Lemma 3 shows the stability region is unchanged (`0 < σ < 2`); this
/// production variant exists so the delayed dynamics can be exercised at
/// packet level, not just in the analysis crate. With `delay == 1` it
/// reduces exactly to [`GammaController`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayedGammaController {
    cfg: GammaConfig,
    /// Ring buffer of the last `delay` γ values, indexed cyclically; the
    /// slot about to be overwritten holds γ(k−D).
    gamma_hist: Vec<f64>,
    /// Ring buffer of the last `delay − 1` loss samples (empty for D = 1,
    /// where the freshly delivered sample is already `p(k−1)`).
    p_hist: Vec<f64>,
    next_gamma: usize,
    next_p: usize,
    updates: u64,
}

impl DelayedGammaController {
    /// Creates a controller with feedback delay `delay` (in control steps).
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0` or the configuration is invalid (see
    /// [`GammaController::new`]).
    pub fn new(cfg: GammaConfig, delay: usize) -> Self {
        Self::try_new(cfg, delay).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a controller, rejecting invalid configurations as
    /// [`SimError::InvalidConfig`] instead of panicking.
    pub fn try_new(cfg: GammaConfig, delay: usize) -> Result<Self, SimError> {
        if delay < 1 {
            return Err(invalid_config("delay must be at least 1"));
        }
        // Reuse the validation.
        let _ = GammaController::try_new(cfg)?;
        Ok(DelayedGammaController {
            cfg,
            gamma_hist: vec![cfg.gamma0; delay],
            p_hist: vec![0.0; delay - 1],
            next_gamma: 0,
            next_p: 0,
            updates: 0,
        })
    }

    /// The γ value currently in effect (the most recently computed one).
    pub fn gamma(&self) -> f64 {
        let last = (self.next_gamma + self.gamma_hist.len() - 1) % self.gamma_hist.len();
        self.gamma_hist[last]
    }

    /// Applies one delayed control step. The `p` argument is the loss
    /// measured over the interval that just ended (`p(k−1)`); the step uses
    /// the sample from `D − 1` calls earlier, i.e. `p(k−D)`, together with
    /// `γ(k−D)` (Eq. 5).
    pub fn update(&mut self, p: f64) -> f64 {
        if !p.is_finite() {
            // Missing sample: hold the γ in effect (see GammaController).
            return self.gamma();
        }
        let p = p.clamp(0.0, 1.0);
        let old_gamma = self.gamma_hist[self.next_gamma];
        let old_p = if self.p_hist.is_empty() {
            p
        } else {
            let used = self.p_hist[self.next_p];
            self.p_hist[self.next_p] = p;
            self.next_p = (self.next_p + 1) % self.p_hist.len();
            used
        };
        let raw = old_gamma + self.cfg.sigma * (old_p / self.cfg.p_thr - old_gamma);
        let gamma = raw.clamp(self.cfg.gamma_low, 1.0);
        self.gamma_hist[self.next_gamma] = gamma;
        self.next_gamma = (self.next_gamma + 1) % self.gamma_hist.len();
        self.updates += 1;
        gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_fixed_point() {
        let mut g = GammaController::new(GammaConfig::default());
        for _ in 0..200 {
            g.update(0.15);
        }
        assert!((g.gamma() - 0.2).abs() < 1e-9);
        assert_eq!(g.updates(), 200);
    }

    #[test]
    fn no_loss_decays_to_gamma_low() {
        // Fig. 7: with no loss, gamma falls to the 0.05 floor.
        let mut g = GammaController::new(GammaConfig::default());
        for _ in 0..100 {
            g.update(0.0);
        }
        assert!((g.gamma() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn saturates_at_one_under_extreme_loss() {
        let mut g = GammaController::new(GammaConfig::default());
        for _ in 0..100 {
            g.update(0.95); // p > p_thr: gamma* would be 1.27, clamps to 1.
        }
        assert!((g.gamma() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_feedback_treated_as_zero() {
        let mut g = GammaController::new(GammaConfig::default());
        g.update(-5.0);
        assert!(g.gamma() >= 0.05);
        assert!(g.gamma() <= 0.5);
    }

    #[test]
    fn missing_sample_holds_last_stable_gamma() {
        let mut g = GammaController::new(GammaConfig::default());
        for _ in 0..100 {
            g.update(0.3); // converge to 0.4
        }
        let stable = g.gamma();
        for _ in 0..50 {
            g.update(f64::NAN); // feedback lost: hold, do not decay
        }
        assert!((g.gamma() - stable).abs() < 1e-12);
        assert_eq!(g.held(), 50);
        assert_eq!(g.updates(), 100, "holds are not control steps");
        // Explicit hold behaves identically.
        g.hold();
        assert!((g.gamma() - stable).abs() < 1e-12);
        assert_eq!(g.held(), 51);
    }

    #[test]
    fn delayed_holds_on_missing_sample() {
        let mut g = DelayedGammaController::new(GammaConfig::default(), 3);
        for _ in 0..300 {
            g.update(0.3);
        }
        let stable = g.gamma();
        for _ in 0..10 {
            assert!((g.update(f64::INFINITY) - stable).abs() < 1e-12);
        }
    }

    #[test]
    fn try_new_rejects_bad_configs() {
        use pels_netsim::SimError;
        assert!(GammaController::try_new(GammaConfig::default()).is_ok());
        assert!(matches!(
            GammaController::try_new(GammaConfig { sigma: -1.0, ..Default::default() }),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(DelayedGammaController::try_new(GammaConfig::default(), 0).is_err());
    }

    #[test]
    fn tracks_loss_changes_both_directions() {
        let mut g = GammaController::new(GammaConfig::default());
        for _ in 0..100 {
            g.update(0.3);
        }
        let high = g.gamma();
        for _ in 0..100 {
            g.update(0.06);
        }
        let low = g.gamma();
        assert!(high > low);
        assert!((high - 0.4).abs() < 1e-6);
        assert!((low - 0.08).abs() < 1e-6);
    }

    #[test]
    fn fixed_point_respects_clamp() {
        let g = GammaController::new(GammaConfig::default());
        assert!((g.fixed_point(0.3) - 0.4).abs() < 1e-12);
        assert_eq!(g.fixed_point(0.0), 0.05);
        assert_eq!(g.fixed_point(0.9), 1.0);
    }

    #[test]
    #[should_panic(expected = "p_thr")]
    fn rejects_bad_threshold() {
        let _ = GammaController::new(GammaConfig { p_thr: 0.0, ..Default::default() });
    }

    #[test]
    fn delayed_with_delay_one_matches_undelayed() {
        let cfg = GammaConfig::default();
        let mut plain = GammaController::new(cfg);
        let mut delayed = DelayedGammaController::new(cfg, 1);
        for k in 0..100 {
            let p = 0.1 + 0.05 * ((k % 7) as f64 / 7.0);
            let a = plain.update(p);
            let b = delayed.update(p);
            assert!((a - b).abs() < 1e-12, "step {k}: {a} vs {b}");
        }
    }

    #[test]
    fn delayed_converges_for_any_delay_lemma3() {
        for delay in [1usize, 3, 10] {
            let mut g = DelayedGammaController::new(GammaConfig::default(), delay);
            for _ in 0..2_000 {
                g.update(0.3);
            }
            assert!((g.gamma() - 0.4).abs() < 1e-6, "delay {delay}: gamma {} vs 0.4", g.gamma());
        }
    }

    #[test]
    fn delayed_respects_clamps() {
        let mut g = DelayedGammaController::new(GammaConfig::default(), 5);
        for _ in 0..100 {
            assert!((0.05..=1.0).contains(&g.update(0.95)));
        }
        assert!((g.gamma() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "delay must be at least 1")]
    fn delayed_rejects_zero_delay() {
        let _ = DelayedGammaController::new(GammaConfig::default(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// γ always stays within [gamma_low, 1] for any input sequence.
        #[test]
        fn gamma_always_in_bounds(
            inputs in proptest::collection::vec(-2.0f64..2.0, 1..200),
            sigma in 0.05f64..1.95,
        ) {
            let mut g = GammaController::new(GammaConfig { sigma, ..Default::default() });
            for p in inputs {
                let v = g.update(p);
                prop_assert!((0.05..=1.0).contains(&v));
            }
        }

        /// For stable gains, stationary loss converges to the clamped fixed
        /// point regardless of the starting value.
        #[test]
        fn converges_for_stable_gains(sigma in 0.05f64..1.95, p in 0.0f64..0.74) {
            let mut g = GammaController::new(GammaConfig { sigma, ..Default::default() });
            for _ in 0..6_000 {
                g.update(p);
            }
            prop_assert!((g.gamma() - g.fixed_point(p)).abs() < 1e-3);
        }
    }
}
