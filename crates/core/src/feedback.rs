//! Router feedback computation and source-side freshness filtering
//! (paper Section 5.2, Eq. 11).
//!
//! Every `T` time units the router computes the arrival rate `R = S/T` of
//! its PELS queue, the loss `p = (R − C)/R`, increments its epoch `z`, and
//! resets the byte counter. The label `(router ID, z, p)` is stamped into
//! every passing packet; receivers echo it in ACKs; sources apply each epoch
//! at most once.

use crate::SimError;
use pels_netsim::error::invalid_config;
use pels_netsim::packet::{AgentId, Feedback};
use pels_netsim::time::{Rate, SimDuration};
use serde::{Deserialize, Serialize};

/// Router-side feedback estimator for one PELS queue (Eq. 11).
///
/// # Examples
///
/// ```
/// use pels_core::feedback::FeedbackEstimator;
/// use pels_netsim::packet::AgentId;
/// use pels_netsim::time::{Rate, SimDuration};
///
/// // 2 Mb/s of PELS capacity, 30 ms measurement interval.
/// // (smoothing 1.0 = the paper's literal per-window Eq. 11)
/// let mut est = FeedbackEstimator::with_smoothing(
///     Rate::from_mbps(2.0), SimDuration::from_millis(30), 1.0);
/// // 9,000 bytes in 30 ms = 2.4 Mb/s: 1/6 overload.
/// for _ in 0..18 { est.on_arrival(500, 1); }
/// let fb = est.tick(AgentId(1));
/// assert!((fb.loss - 1.0 / 6.0).abs() < 1e-9);
/// assert_eq!(fb.epoch, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackEstimator {
    capacity: Rate,
    interval: SimDuration,
    /// EWMA weight applied to each new window's rate measurement, in
    /// `(0, 1]`. 1 = raw per-window rates (the paper's literal Eq. 11);
    /// smaller values damp the quantization noise a `T`-sized window picks
    /// up from frame-paced sources (packets arrive every few ms, so a 30 ms
    /// window miscounts by ±1–2 packets, which MKC would otherwise amplify
    /// into a rate limit cycle).
    smoothing: f64,
    epoch: u64,
    bytes_total: u64,
    bytes_green: u64,
    bytes_enh: u64,
    rate_total: Option<f64>,
    rate_green: f64,
    rate_enh: f64,
    last_loss: f64,
    last_fgs_loss: f64,
}

/// Loss reported while the queue sees no arrivals at all (maximum spare
/// capacity; the value is clamped by each controller's `min_feedback`).
const IDLE_LOSS: f64 = -100.0;

impl FeedbackEstimator {
    /// Creates an estimator for a queue served at `capacity`, measuring
    /// over `interval` (`T` in the paper; simulations use 30 ms).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or the interval is zero.
    pub fn new(capacity: Rate, interval: SimDuration) -> Self {
        Self::with_smoothing(capacity, interval, 0.15)
    }

    /// Creates an estimator with an explicit EWMA smoothing weight
    /// (see the field documentation; `1.0` disables smoothing).
    ///
    /// # Panics
    ///
    /// Panics if the capacity or interval is zero, or `smoothing` is outside
    /// `(0, 1]`.
    pub fn with_smoothing(capacity: Rate, interval: SimDuration, smoothing: f64) -> Self {
        Self::try_with_smoothing(capacity, interval, smoothing).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`FeedbackEstimator::with_smoothing`]: returns
    /// [`SimError::InvalidConfig`] instead of panicking.
    pub fn try_with_smoothing(
        capacity: Rate,
        interval: SimDuration,
        smoothing: f64,
    ) -> Result<Self, SimError> {
        if capacity.as_bps() == 0 {
            return Err(invalid_config("capacity must be positive"));
        }
        if interval.is_zero() {
            return Err(invalid_config("interval must be positive"));
        }
        if !(smoothing > 0.0 && smoothing <= 1.0) {
            return Err(invalid_config(format!("smoothing must be in (0,1]: {smoothing}")));
        }
        Ok(FeedbackEstimator {
            capacity,
            interval,
            smoothing,
            epoch: 0,
            bytes_total: 0,
            bytes_green: 0,
            bytes_enh: 0,
            rate_total: None,
            rate_green: 0.0,
            rate_enh: 0.0,
            last_loss: IDLE_LOSS,
            last_fgs_loss: 0.0,
        })
    }

    /// Records the arrival of a PELS packet of `bytes` with wire `class`
    /// (`S = S + s_i` in the paper's algorithm).
    pub fn on_arrival(&mut self, bytes: u32, class: u8) {
        self.bytes_total += bytes as u64;
        if class == 0 {
            self.bytes_green += bytes as u64;
        } else {
            self.bytes_enh += bytes as u64;
        }
    }

    /// Closes the current measurement interval: computes `R = S/T`,
    /// `p = (R − C)/R`, increments the epoch, resets counters (Eq. 11), and
    /// returns the fresh label for router `router`.
    pub fn tick(&mut self, router: AgentId) -> Feedback {
        self.tick_elapsed(router, self.interval)
    }

    /// [`tick`](Self::tick) with the *measured* window length instead of
    /// the nominal `T`. Simulations fire the measurement timer exactly on
    /// schedule, so `tick` is exact there — but a wall-clock server's tick
    /// slips under load, and dividing a long window's arrivals by the
    /// nominal `T` inflates `R` several-fold and reports phantom loss the
    /// moment the scheduler stalls the process. Eq. 11's `R = S/T` wants
    /// the window the bytes actually arrived in.
    pub fn tick_elapsed(&mut self, router: AgentId, elapsed: SimDuration) -> Feedback {
        // Floor at the nominal interval: the timer can fire late, never
        // early, and a degenerate zero window must not divide by zero.
        let t = elapsed.as_secs_f64().max(self.interval.as_secs_f64());
        let c = self.capacity.as_bps() as f64;
        let w_total = self.bytes_total as f64 * 8.0 / t;
        let w_green = self.bytes_green as f64 * 8.0 / t;
        let w_enh = self.bytes_enh as f64 * 8.0 / t;

        let a = self.smoothing;
        let (r_total, r_green, r_enh) = match self.rate_total {
            None => (w_total, w_green, w_enh),
            Some(prev_total) => (
                a * w_total + (1.0 - a) * prev_total,
                a * w_green + (1.0 - a) * self.rate_green,
                a * w_enh + (1.0 - a) * self.rate_enh,
            ),
        };
        self.rate_total = Some(r_total);
        self.rate_green = r_green;
        self.rate_enh = r_enh;

        self.last_loss =
            if r_total > 0.0 { ((r_total - c) / r_total).max(IDLE_LOSS) } else { IDLE_LOSS };
        // Strict priority serves green first: the enhancement layer gets
        // whatever capacity the green traffic leaves, and absorbs the whole
        // overload.
        let avail_enh = (c - r_green).max(0.0);
        self.last_fgs_loss =
            if r_enh > 0.0 { ((r_enh - avail_enh) / r_enh).clamp(0.0, 1.0) } else { 0.0 };

        self.epoch += 1;
        self.bytes_total = 0;
        self.bytes_green = 0;
        self.bytes_enh = 0;
        self.label(router)
    }

    /// The current label without closing the interval (what gets stamped
    /// into packets between ticks).
    pub fn label(&self, router: AgentId) -> Feedback {
        Feedback::new(router, self.epoch, self.last_loss.min(0.999_999), self.last_fgs_loss)
    }

    /// The measurement interval `T`.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Current epoch `z`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Most recent signed total loss.
    pub fn loss(&self) -> f64 {
        self.last_loss
    }

    /// Most recent enhancement-layer loss.
    pub fn fgs_loss(&self) -> f64 {
        self.last_fgs_loss
    }
}

/// Source-side freshness filter (paper Section 5.2): accept a label only if
/// it is newer than the last one applied, so re-ordered or duplicated
/// feedback never drives the control loop twice. A label from a *different*
/// router (bottleneck shift, tracked via the router ID field) is always
/// accepted and resets the epoch horizon.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochFilter {
    last: Option<(AgentId, u64)>,
}

impl EpochFilter {
    /// Creates a filter that accepts the first label it sees.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` (and advances the horizon) iff `fb` is fresh.
    pub fn accept(&mut self, fb: &Feedback) -> bool {
        match self.last {
            Some((router, z)) if router == fb.router => {
                if fb.epoch > z {
                    self.last = Some((router, fb.epoch));
                    true
                } else {
                    false
                }
            }
            _ => {
                self.last = Some((fb.router, fb.epoch));
                true
            }
        }
    }

    /// The last accepted `(router, epoch)` pair, if any.
    pub fn horizon(&self) -> Option<(AgentId, u64)> {
        self.last
    }

    /// Forgets the horizon so the next label is accepted unconditionally.
    ///
    /// Sources call this when the staleness watchdog fires: if no feedback
    /// has been fresh for a full timeout, the horizon itself is suspect — a
    /// corrupted label may have jumped it past every genuine epoch, or the
    /// router may have restarted with its epoch counter reset. Either way
    /// the filter must re-anchor or the control loop stays deaf forever.
    pub fn reset(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> FeedbackEstimator {
        // 40 ms interval: 1 Mb/s = exactly ten 500-byte packets.
        // Smoothing 1.0 so each window's closed form is exact.
        FeedbackEstimator::with_smoothing(Rate::from_mbps(2.0), SimDuration::from_millis(40), 1.0)
    }

    #[test]
    fn idle_interval_reports_spare_capacity() {
        let mut e = est();
        let fb = e.tick(AgentId(1));
        assert!(fb.loss < -1.0, "idle loss should be very negative");
        assert_eq!(fb.fgs_loss, 0.0);
    }

    #[test]
    fn underload_is_negative_overload_is_positive() {
        let mut e = est();
        // 1 Mb/s arrival on 2 Mb/s capacity: p = (1-2)/1 = -1.
        for _ in 0..10 {
            e.on_arrival(500, 1);
        }
        let fb = e.tick(AgentId(1));
        assert!((fb.loss + 1.0).abs() < 1e-9, "loss {}", fb.loss);

        // 4 Mb/s arrival: p = 0.5.
        for _ in 0..40 {
            e.on_arrival(500, 1);
        }
        let fb = e.tick(AgentId(1));
        assert!((fb.loss - 0.5).abs() < 1e-9, "loss {}", fb.loss);
    }

    #[test]
    fn fgs_loss_accounts_for_green_priority() {
        let mut e = est();
        // Green at 1 Mb/s, enhancement at 2 Mb/s, capacity 2 Mb/s:
        // enhancement gets 1 Mb/s -> fgs loss = 0.5; total loss = 1/3.
        for _ in 0..10 {
            e.on_arrival(500, 0);
        }
        for _ in 0..20 {
            e.on_arrival(500, 2);
        }
        let fb = e.tick(AgentId(1));
        assert!((fb.fgs_loss - 0.5).abs() < 1e-9, "fgs {}", fb.fgs_loss);
        assert!((fb.loss - 1.0 / 3.0).abs() < 1e-9, "loss {}", fb.loss);
    }

    #[test]
    fn green_overload_alone_saturates_fgs_loss() {
        let mut e = est();
        // Green 3 Mb/s > capacity, tiny enhancement: all enhancement lost.
        for _ in 0..30 {
            e.on_arrival(500, 0);
        }
        e.on_arrival(500, 1);
        let fb = e.tick(AgentId(1));
        assert_eq!(fb.fgs_loss, 1.0);
    }

    #[test]
    fn smoothing_damps_window_noise() {
        let mut e = FeedbackEstimator::with_smoothing(
            Rate::from_mbps(2.0),
            SimDuration::from_millis(40),
            0.25,
        );
        // Alternating 1 Mb/s and 3 Mb/s windows (mean = capacity). Raw
        // windows would report p in {-1, +1/3}; the smoothed estimate
        // converges near 0.
        let mut last = 0.0;
        for k in 0..200 {
            let n = if k % 2 == 0 { 10 } else { 30 };
            for _ in 0..n {
                e.on_arrival(500, 1);
            }
            last = e.tick(AgentId(0)).loss;
        }
        assert!(last.abs() < 0.1, "smoothed loss {last}");
    }

    #[test]
    fn epochs_increment_and_counters_reset() {
        let mut e = est();
        e.on_arrival(500, 1);
        let fb1 = e.tick(AgentId(1));
        let fb2 = e.tick(AgentId(1));
        assert_eq!(fb1.epoch, 1);
        assert_eq!(fb2.epoch, 2);
        // Second interval was empty.
        assert!(fb2.loss < -1.0);
    }

    #[test]
    fn label_between_ticks_is_stable() {
        let mut e = est();
        e.on_arrival(500, 1);
        let t = e.tick(AgentId(3));
        let l = e.label(AgentId(3));
        assert_eq!(t, l);
    }

    #[test]
    fn epoch_filter_rejects_stale_and_duplicate() {
        let mut f = EpochFilter::new();
        let fb = |z: u64| Feedback::new(AgentId(1), z, 0.1, 0.1);
        assert!(f.accept(&fb(5)));
        assert!(!f.accept(&fb(5)), "duplicate epoch must be rejected");
        assert!(!f.accept(&fb(3)), "stale epoch must be rejected");
        assert!(f.accept(&fb(6)));
        assert_eq!(f.horizon(), Some((AgentId(1), 6)));
    }

    #[test]
    fn epoch_filter_reset_reanchors_after_poisoned_horizon() {
        let mut f = EpochFilter::new();
        let fb = |z: u64| Feedback::new(AgentId(1), z, 0.1, 0.1);
        assert!(f.accept(&fb(7)));
        // A corrupted label from the same router jumps the horizon so far
        // forward that every genuine epoch is now "stale".
        assert!(f.accept(&fb(u64::MAX)));
        assert!(!f.accept(&fb(8)), "poisoned horizon rejects real labels");
        f.reset();
        assert_eq!(f.horizon(), None);
        assert!(f.accept(&fb(8)), "reset must re-anchor on the next label");
    }

    #[test]
    fn epoch_filter_accepts_bottleneck_shift() {
        let mut f = EpochFilter::new();
        assert!(f.accept(&Feedback::new(AgentId(1), 100, 0.1, 0.1)));
        // A different router with a *smaller* epoch is still fresh: epochs
        // are router-local.
        assert!(f.accept(&Feedback::new(AgentId(2), 3, 0.2, 0.2)));
        assert!(!f.accept(&Feedback::new(AgentId(2), 3, 0.2, 0.2)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Each epoch of one router is applied at most once, in order, no
        /// matter how labels are duplicated or reordered in flight.
        #[test]
        fn at_most_once_semantics(epochs in proptest::collection::vec(0u64..50, 1..300)) {
            let mut f = EpochFilter::new();
            let mut applied = Vec::new();
            for z in epochs {
                if f.accept(&Feedback::new(AgentId(9), z, 0.0, 0.0)) {
                    applied.push(z);
                }
            }
            // Strictly increasing => no epoch applied twice.
            prop_assert!(applied.windows(2).all(|w| w[0] < w[1]));
        }

        /// The estimator's total loss is always < 1 and equals the
        /// closed-form (R-C)/R for any arrival pattern.
        #[test]
        fn loss_matches_closed_form(packets in proptest::collection::vec((100u32..1500, 0u8..3), 0..500)) {
            let mut e = FeedbackEstimator::with_smoothing(Rate::from_mbps(2.0), SimDuration::from_millis(30), 1.0);
            let mut total = 0u64;
            for &(bytes, class) in &packets {
                e.on_arrival(bytes, class);
                total += bytes as u64;
            }
            let fb = e.tick(AgentId(0));
            prop_assert!(fb.loss < 1.0);
            let r = total as f64 * 8.0 / 0.03;
            if r > 0.0 {
                let expect = ((r - 2_000_000.0) / r).max(-100.0);
                prop_assert!((fb.loss - expect).abs() < 1e-9);
            }
        }
    }
}
