//! An AIMD rate controller, used as the congestion-control ablation.
//!
//! The paper stresses that PELS is *independent* of the congestion control
//! employed (Section 5: "PELS is independent of congestion control and can
//! be utilized with any end-to-end or AQM scheme") and motivates MKC by
//! AIMD's "unacceptable" rate fluctuations for video. This controller lets
//! the benchmark harness demonstrate both claims: PELS keeps utility high
//! under AIMD too, while AIMD's rate variance is far larger than MKC's.

use pels_netsim::time::Rate;
use serde::{Deserialize, Serialize};

/// Configuration of [`AimdController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AimdConfig {
    /// Additive increase per control step when no congestion, bits/s.
    pub increase_bps: f64,
    /// Multiplicative decrease factor applied on congestion (e.g. 0.5).
    pub decrease: f64,
    /// Loss level above which a step counts as congested.
    pub loss_threshold: f64,
    /// Initial rate.
    pub initial: Rate,
    /// Rate floor.
    pub min_rate: Rate,
    /// Rate ceiling.
    pub max_rate: Rate,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            increase_bps: 20_000.0,
            decrease: 0.5,
            loss_threshold: 0.0,
            initial: Rate::from_kbps(128.0),
            min_rate: Rate::from_kbps(64.0),
            max_rate: Rate::from_mbps(10.0),
        }
    }
}

/// Additive-increase / multiplicative-decrease rate control.
///
/// # Examples
///
/// ```
/// use pels_core::aimd::{AimdConfig, AimdController};
///
/// let mut aimd = AimdController::new(AimdConfig::default());
/// aimd.update(0.0);  // no loss: +20 kb/s
/// assert_eq!(aimd.rate_bps(), 148_000.0);
/// aimd.update(0.2);  // loss: halve
/// assert_eq!(aimd.rate_bps(), 74_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AimdController {
    cfg: AimdConfig,
    rate_bps: f64,
    updates: u64,
    /// Congestion (decrease) events so far.
    pub backoffs: u64,
}

impl AimdController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if gains are out of range (`increase <= 0`, `decrease`
    /// outside `(0, 1)`) or the rate bounds are inconsistent.
    pub fn new(cfg: AimdConfig) -> Self {
        assert!(cfg.increase_bps > 0.0, "increase must be positive");
        assert!(
            cfg.decrease > 0.0 && cfg.decrease < 1.0,
            "decrease must be in (0,1): {}",
            cfg.decrease
        );
        assert!(cfg.min_rate <= cfg.max_rate, "min_rate must not exceed max_rate");
        let rate = (cfg.initial.as_bps() as f64)
            .clamp(cfg.min_rate.as_bps() as f64, cfg.max_rate.as_bps() as f64);
        AimdController { cfg, rate_bps: rate, updates: 0, backoffs: 0 }
    }

    /// Current rate, bits/s.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Number of control steps applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Applies one AIMD step with (signed) feedback `p`: decrease
    /// multiplicatively when `p` exceeds the loss threshold, otherwise
    /// increase additively. Returns the new rate.
    pub fn update(&mut self, p: f64) -> f64 {
        let next = if p.is_finite() && p > self.cfg.loss_threshold {
            self.backoffs += 1;
            self.rate_bps * self.cfg.decrease
        } else {
            self.rate_bps + self.cfg.increase_bps
        };
        self.rate_bps =
            next.clamp(self.cfg.min_rate.as_bps() as f64, self.cfg.max_rate.as_bps() as f64);
        self.updates += 1;
        self.rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sawtooth_behaviour() {
        let mut a = AimdController::new(AimdConfig::default());
        for _ in 0..10 {
            a.update(0.0);
        }
        assert_eq!(a.rate_bps(), 328_000.0);
        a.update(0.5);
        assert_eq!(a.rate_bps(), 164_000.0);
        assert_eq!(a.backoffs, 1);
    }

    #[test]
    fn oscillates_forever_unlike_mkc() {
        // Feed self-consistent feedback: AIMD has no fixed point above the
        // knee — it must oscillate.
        let mut a = AimdController::new(AimdConfig::default());
        let c = 2_000_000.0;
        let mut rates = Vec::new();
        for _ in 0..2_000 {
            let r = a.rate_bps();
            a.update((r - c) / r);
            rates.push(a.rate_bps());
        }
        let tail = &rates[1_500..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let var = tail.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / tail.len() as f64;
        // Coefficient of variation stays macroscopic (sawtooth).
        assert!(var.sqrt() / mean > 0.05, "cv {}", var.sqrt() / mean);
    }

    #[test]
    fn respects_bounds() {
        let mut a = AimdController::new(AimdConfig::default());
        for _ in 0..100 {
            a.update(0.9);
        }
        assert_eq!(a.rate_bps(), 64_000.0);
        for _ in 0..1_000 {
            a.update(-1.0);
        }
        assert_eq!(a.rate_bps(), 10_000_000.0);
    }

    #[test]
    #[should_panic(expected = "decrease must be in")]
    fn rejects_bad_decrease() {
        let _ = AimdController::new(AimdConfig { decrease: 1.0, ..Default::default() });
    }
}
