//! Max-min Kelly Control (MKC) — the paper's congestion controller
//! (Section 5, Eq. 8).
//!
//! `r(k) = r(k−D) + α − β r(k−D) p(k−D←)`
//!
//! where `p` is the *signed* feedback from the most-congested router
//! (Eq. 9/11): positive under overload, negative under spare capacity.
//! The negative regime yields multiplicative (exponential) bandwidth
//! claiming; the positive regime converges, without oscillation, to the
//! stationary rate `r* = C/N + α/β` (Lemma 6), independent of feedback
//! delay, and is stable iff `0 < β < 2` (Lemma 5).
//!
//! ## Stale-feedback fallback
//!
//! Eq. 8 assumes a steady stream of feedback epochs. When the reverse path
//! fails (link cut, ACK loss), the last `p` becomes arbitrarily stale and
//! holding the last rate can overload a recovering network. The controller
//! therefore tracks the arrival time of the freshest accepted epoch: once
//! the age exceeds [`MkcConfig::stale_timeout`], each watchdog check applies
//! a multiplicative decrease ([`MkcConfig::stale_decay`]) toward
//! [`MkcConfig::min_rate`] — TCP-like conservatism under silence. The first
//! fresh epoch exits fallback, and Lemma 6 guarantees reconvergence to
//! `r* = C/N + α/β` from whatever rate the decay reached.

use crate::SimError;
use pels_netsim::error::invalid_config;
use pels_netsim::time::{Rate, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of [`MkcController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MkcConfig {
    /// Additive gain α in bits/s per control step (paper: 20 kb/s).
    pub alpha_bps: f64,
    /// Multiplicative gain β (paper: 0.5). Must be in `(0, 2)`.
    pub beta: f64,
    /// Initial rate (paper: 128 kb/s — the base-layer rate).
    pub initial: Rate,
    /// Floor below which the rate never falls (the base layer must flow).
    pub min_rate: Rate,
    /// Cap on the sending rate (e.g. the access-link speed).
    pub max_rate: Rate,
    /// Clamp on how negative the feedback may be treated (bounds the
    /// multiplicative ramp when the link is nearly idle).
    pub min_feedback: f64,
    /// Feedback older than this is considered stale and triggers the
    /// multiplicative-decrease fallback (10 feedback epochs at the default
    /// 30 ms interval). Staleness is only declared after at least one fresh
    /// epoch has ever arrived, so a source that never hears feedback —
    /// e.g. a best-effort comparator run — keeps its initial rate.
    pub stale_timeout: SimDuration,
    /// Multiplicative decrease applied per watchdog check while stale.
    /// Must be in `(0, 1)`.
    pub stale_decay: f64,
}

impl Default for MkcConfig {
    fn default() -> Self {
        MkcConfig {
            alpha_bps: 20_000.0,
            beta: 0.5,
            initial: Rate::from_kbps(128.0),
            min_rate: Rate::from_kbps(64.0),
            max_rate: Rate::from_mbps(10.0),
            min_feedback: -10.0,
            stale_timeout: SimDuration::from_millis(300),
            stale_decay: 0.85,
        }
    }
}

/// The per-flow MKC rate controller.
///
/// # Examples
///
/// ```
/// use pels_core::mkc::{MkcConfig, MkcController};
///
/// let mut mkc = MkcController::new(MkcConfig::default());
/// // Spare capacity (negative feedback) ramps the rate multiplicatively.
/// let before = mkc.rate_bps();
/// mkc.update(-5.0);
/// assert!(mkc.rate_bps() > 3.0 * before);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MkcController {
    cfg: MkcConfig,
    rate_bps: f64,
    updates: u64,
    /// When the freshest accepted feedback epoch arrived (`None` until the
    /// first epoch — startup silence is not staleness).
    last_fresh: Option<SimTime>,
    /// Whether the controller is currently in the stale fallback.
    in_fallback: bool,
    /// Multiplicative decreases applied while stale (diagnostic).
    stale_decays: u64,
}

impl MkcController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if gains are out of range (`α <= 0` or `β` outside `(0, 2)`),
    /// or the rate bounds are inconsistent.
    pub fn new(cfg: MkcConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a controller, rejecting invalid configurations as
    /// [`SimError::InvalidConfig`] instead of panicking.
    pub fn try_new(cfg: MkcConfig) -> Result<Self, SimError> {
        if !(cfg.alpha_bps > 0.0 && cfg.alpha_bps.is_finite()) {
            return Err(invalid_config("alpha must be positive"));
        }
        if !(cfg.beta > 0.0 && cfg.beta < 2.0) {
            return Err(invalid_config("beta must be in (0,2) for stability"));
        }
        if cfg.min_rate > cfg.max_rate {
            return Err(invalid_config("min_rate must not exceed max_rate"));
        }
        if cfg.min_feedback >= 0.0 {
            return Err(invalid_config("min_feedback must be negative"));
        }
        if !(cfg.stale_decay > 0.0 && cfg.stale_decay < 1.0) {
            return Err(invalid_config("stale_decay must be in (0,1)"));
        }
        if cfg.stale_timeout.is_zero() {
            return Err(invalid_config("stale_timeout must be positive"));
        }
        let rate = (cfg.initial.as_bps() as f64)
            .clamp(cfg.min_rate.as_bps() as f64, cfg.max_rate.as_bps() as f64);
        Ok(MkcController {
            cfg,
            rate_bps: rate,
            updates: 0,
            last_fresh: None,
            in_fallback: false,
            stale_decays: 0,
        })
    }

    /// Current sending rate in bits/s.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Current sending rate.
    pub fn rate(&self) -> Rate {
        Rate::from_bps(self.rate_bps.round() as u64)
    }

    /// Number of control steps applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The configuration.
    pub fn config(&self) -> &MkcConfig {
        &self.cfg
    }

    /// Applies one MKC step with signed feedback `p` (Eq. 8), using the
    /// current rate as the base. Returns the new rate in bits/s.
    ///
    /// Prefer [`MkcController::update_from`] when the rate that generated
    /// `p` is known (e.g. echoed through an ACK): Eq. 8's base is
    /// `r(k − D)`, and using the matching old rate is what makes MKC stable
    /// under arbitrary feedback delay (Lemma 5 / reference [34]).
    pub fn update(&mut self, p: f64) -> f64 {
        self.update_from(self.rate_bps, p)
    }

    /// Applies one MKC step `r ← base + α − β·base·p` (Eq. 8) where `base`
    /// is the rate in effect when `p` was measured (`r(k − D)`).
    /// Non-positive or non-finite bases fall back to the current rate.
    /// Returns the new rate in bits/s.
    pub fn update_from(&mut self, base_bps: f64, p: f64) -> f64 {
        let p = if p.is_finite() { p.clamp(self.cfg.min_feedback, 1.0) } else { 0.0 };
        let base = if base_bps.is_finite() && base_bps > 0.0 { base_bps } else { self.rate_bps };
        let next = base + self.cfg.alpha_bps - self.cfg.beta * base * p;
        self.rate_bps =
            next.clamp(self.cfg.min_rate.as_bps() as f64, self.cfg.max_rate.as_bps() as f64);
        self.updates += 1;
        self.rate_bps
    }

    /// Lemma 6: the stationary rate `r* = C/N + α/β` for `n` flows sharing
    /// capacity `c` under this controller's gains.
    pub fn stationary_rate_bps(&self, c: Rate, n: usize) -> f64 {
        assert!(n > 0, "need at least one flow");
        c.as_bps() as f64 / n as f64 + self.cfg.alpha_bps / self.cfg.beta
    }

    /// Notes that a fresh feedback epoch was accepted at `now`, exiting the
    /// stale fallback if it was active. Call alongside
    /// [`MkcController::update_from`].
    pub fn record_fresh(&mut self, now: SimTime) {
        self.last_fresh = Some(now);
        self.in_fallback = false;
    }

    /// Whether feedback is stale at `now`: some epoch has arrived before,
    /// and the freshest one is older than [`MkcConfig::stale_timeout`].
    pub fn is_stale(&self, now: SimTime) -> bool {
        self.last_fresh.is_some_and(|t| now.duration_since(t) > self.cfg.stale_timeout)
    }

    /// Watchdog hook: if feedback is stale at `now`, applies one
    /// multiplicative decrease `r ← max(r · stale_decay, min_rate)` and
    /// returns `true`. Invoke periodically (the PELS source does so every
    /// quarter of the stale timeout); the first fresh epoch after the fault
    /// clears ends the fallback and MKC reconverges to `r*` per Lemma 6.
    pub fn apply_staleness(&mut self, now: SimTime) -> bool {
        if !self.is_stale(now) {
            return false;
        }
        self.in_fallback = true;
        self.stale_decays += 1;
        self.rate_bps =
            (self.rate_bps * self.cfg.stale_decay).max(self.cfg.min_rate.as_bps() as f64);
        true
    }

    /// Whether the controller is currently decreasing for lack of feedback.
    pub fn in_stale_fallback(&self) -> bool {
        self.in_fallback
    }

    /// Total multiplicative decreases applied while stale.
    pub fn stale_decays(&self) -> u64 {
        self.stale_decays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> MkcController {
        MkcController::new(MkcConfig::default())
    }

    #[test]
    fn additive_increase_at_zero_feedback() {
        let mut m = ctl();
        let r0 = m.rate_bps();
        m.update(0.0);
        assert!((m.rate_bps() - r0 - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_point_is_lemma6() {
        // Single flow on a 2 Mb/s link: r* = 2000 + 40 = 2040 kb/s.
        let mut m = ctl();
        let c = Rate::from_mbps(2.0);
        let target = m.stationary_rate_bps(c, 1);
        assert!((target - 2_040_000.0).abs() < 1e-6);
        // Feed it self-consistent feedback p = (r - C)/r and iterate.
        for _ in 0..500 {
            let r = m.rate_bps();
            let p = (r - c.as_bps() as f64) / r;
            m.update(p);
        }
        assert!((m.rate_bps() - target).abs() < 1.0, "rate {}", m.rate_bps());
    }

    #[test]
    fn converges_fast_from_below() {
        // Paper Fig. 9: from 128 kb/s the flow claims a 2 Mb/s link in a
        // handful of control intervals (exponential ramp).
        let mut m = ctl();
        let c = 2_000_000.0;
        let mut steps = 0;
        while m.rate_bps() < 0.95 * c && steps < 50 {
            let r = m.rate_bps();
            m.update((r - c) / r);
            steps += 1;
        }
        assert!(steps <= 10, "took {steps} steps");
    }

    #[test]
    fn no_oscillation_at_fixed_point() {
        let mut m = ctl();
        let c = 2_000_000.0;
        for _ in 0..200 {
            let r = m.rate_bps();
            m.update((r - c) / r);
        }
        let r1 = m.rate_bps();
        for _ in 0..50 {
            let r = m.rate_bps();
            m.update((r - c) / r);
        }
        assert!((m.rate_bps() - r1).abs() < 1e-6, "steady state drifted");
    }

    #[test]
    fn respects_rate_bounds() {
        let mut m = MkcController::new(MkcConfig {
            max_rate: Rate::from_kbps(500.0),
            ..Default::default()
        });
        for _ in 0..100 {
            m.update(-10.0);
        }
        assert!((m.rate_bps() - 500_000.0).abs() < 1e-9);
        for _ in 0..100 {
            m.update(0.99);
        }
        assert!((m.rate_bps() - 64_000.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_feedback_is_ignored_additively() {
        let mut m = ctl();
        let r0 = m.rate_bps();
        m.update(f64::NAN);
        assert!((m.rate_bps() - r0 - 20_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,2)")]
    fn rejects_unstable_beta() {
        let _ = MkcController::new(MkcConfig { beta: 2.5, ..Default::default() });
    }

    #[test]
    fn try_new_reports_invalid_configs() {
        use pels_netsim::SimError;
        assert!(MkcController::try_new(MkcConfig::default()).is_ok());
        let bad = MkcController::try_new(MkcConfig { stale_decay: 1.5, ..Default::default() });
        assert!(matches!(bad, Err(SimError::InvalidConfig(_))));
        let bad = MkcController::try_new(MkcConfig { alpha_bps: -1.0, ..Default::default() });
        assert_eq!(bad.unwrap_err().to_string(), "alpha must be positive");
    }

    #[test]
    fn startup_silence_is_not_staleness() {
        let mut m = ctl();
        let late = SimTime::from_secs_f64(100.0);
        assert!(!m.is_stale(late));
        assert!(!m.apply_staleness(late));
        assert!((m.rate_bps() - 128_000.0).abs() < 1e-9, "rate held");
    }

    #[test]
    fn stale_fallback_decays_to_floor_then_recovers() {
        let t = SimTime::from_secs_f64;
        let mut m = ctl();
        m.record_fresh(t(10.0));
        for _ in 0..10 {
            m.update(-5.0); // ramp well above the floor
        }
        let high = m.rate_bps();
        assert!(!m.is_stale(t(10.2)), "within the 300 ms timeout");
        assert!(m.is_stale(t(10.4)));

        assert!(m.apply_staleness(t(10.4)));
        assert!(m.in_stale_fallback());
        assert!((m.rate_bps() - high * 0.85).abs() < 1e-6);
        for i in 0..200 {
            m.apply_staleness(t(10.5 + 0.1 * i as f64));
        }
        assert!((m.rate_bps() - 64_000.0).abs() < 1e-9, "decayed to min_rate");
        assert!(m.stale_decays() > 100);

        // The first fresh epoch ends the fallback; Lemma 6 reconvergence.
        m.record_fresh(t(40.0));
        assert!(!m.in_stale_fallback());
        assert!(!m.is_stale(t(40.1)));
        let c = Rate::from_mbps(2.0);
        let target = m.stationary_rate_bps(c, 1);
        for _ in 0..50 {
            let r = m.rate_bps();
            m.update((r - c.as_bps() as f64) / r);
        }
        assert!((m.rate_bps() - target).abs() < 1.0, "reconverged to r*");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The rate always stays within configured bounds.
        #[test]
        fn rate_in_bounds(inputs in proptest::collection::vec(-20.0f64..1.0, 1..300)) {
            let mut m = MkcController::new(MkcConfig::default());
            for p in inputs {
                let r = m.update(p);
                prop_assert!((64_000.0..=10_000_000.0).contains(&r));
            }
        }

        /// Two flows fed identical feedback converge to identical rates
        /// regardless of initial conditions (fairness).
        #[test]
        fn fairness_under_shared_feedback(r0a in 64.0f64..5_000.0, r0b in 64.0f64..5_000.0) {
            let mk = |kbps: f64| MkcController::new(MkcConfig {
                initial: Rate::from_kbps(kbps),
                ..Default::default()
            });
            let (mut a, mut b) = (mk(r0a), mk(r0b));
            let c = 2_000_000.0;
            for _ in 0..2_000 {
                let total = a.rate_bps() + b.rate_bps();
                let p = (total - c) / total;
                a.update(p);
                b.update(p);
            }
            prop_assert!((a.rate_bps() - b.rate_bps()).abs() < 0.01 * a.rate_bps());
        }
    }
}
