//! Max-min Kelly Control (MKC) — the paper's congestion controller
//! (Section 5, Eq. 8).
//!
//! `r(k) = r(k−D) + α − β r(k−D) p(k−D←)`
//!
//! where `p` is the *signed* feedback from the most-congested router
//! (Eq. 9/11): positive under overload, negative under spare capacity.
//! The negative regime yields multiplicative (exponential) bandwidth
//! claiming; the positive regime converges, without oscillation, to the
//! stationary rate `r* = C/N + α/β` (Lemma 6), independent of feedback
//! delay, and is stable iff `0 < β < 2` (Lemma 5).

use pels_netsim::time::Rate;
use serde::{Deserialize, Serialize};

/// Configuration of [`MkcController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MkcConfig {
    /// Additive gain α in bits/s per control step (paper: 20 kb/s).
    pub alpha_bps: f64,
    /// Multiplicative gain β (paper: 0.5). Must be in `(0, 2)`.
    pub beta: f64,
    /// Initial rate (paper: 128 kb/s — the base-layer rate).
    pub initial: Rate,
    /// Floor below which the rate never falls (the base layer must flow).
    pub min_rate: Rate,
    /// Cap on the sending rate (e.g. the access-link speed).
    pub max_rate: Rate,
    /// Clamp on how negative the feedback may be treated (bounds the
    /// multiplicative ramp when the link is nearly idle).
    pub min_feedback: f64,
}

impl Default for MkcConfig {
    fn default() -> Self {
        MkcConfig {
            alpha_bps: 20_000.0,
            beta: 0.5,
            initial: Rate::from_kbps(128.0),
            min_rate: Rate::from_kbps(64.0),
            max_rate: Rate::from_mbps(10.0),
            min_feedback: -10.0,
        }
    }
}

/// The per-flow MKC rate controller.
///
/// # Examples
///
/// ```
/// use pels_core::mkc::{MkcConfig, MkcController};
///
/// let mut mkc = MkcController::new(MkcConfig::default());
/// // Spare capacity (negative feedback) ramps the rate multiplicatively.
/// let before = mkc.rate_bps();
/// mkc.update(-5.0);
/// assert!(mkc.rate_bps() > 3.0 * before);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MkcController {
    cfg: MkcConfig,
    rate_bps: f64,
    updates: u64,
}

impl MkcController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if gains are out of range (`α <= 0` or `β` outside `(0, 2)`),
    /// or the rate bounds are inconsistent.
    pub fn new(cfg: MkcConfig) -> Self {
        assert!(cfg.alpha_bps > 0.0 && cfg.alpha_bps.is_finite(), "alpha must be positive");
        assert!(cfg.beta > 0.0 && cfg.beta < 2.0, "beta must be in (0,2) for stability");
        assert!(cfg.min_rate <= cfg.max_rate, "min_rate must not exceed max_rate");
        assert!(cfg.min_feedback < 0.0, "min_feedback must be negative");
        let rate = (cfg.initial.as_bps() as f64)
            .clamp(cfg.min_rate.as_bps() as f64, cfg.max_rate.as_bps() as f64);
        MkcController { cfg, rate_bps: rate, updates: 0 }
    }

    /// Current sending rate in bits/s.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Current sending rate.
    pub fn rate(&self) -> Rate {
        Rate::from_bps(self.rate_bps.round() as u64)
    }

    /// Number of control steps applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The configuration.
    pub fn config(&self) -> &MkcConfig {
        &self.cfg
    }

    /// Applies one MKC step with signed feedback `p` (Eq. 8), using the
    /// current rate as the base. Returns the new rate in bits/s.
    ///
    /// Prefer [`MkcController::update_from`] when the rate that generated
    /// `p` is known (e.g. echoed through an ACK): Eq. 8's base is
    /// `r(k − D)`, and using the matching old rate is what makes MKC stable
    /// under arbitrary feedback delay (Lemma 5 / reference [34]).
    pub fn update(&mut self, p: f64) -> f64 {
        self.update_from(self.rate_bps, p)
    }

    /// Applies one MKC step `r ← base + α − β·base·p` (Eq. 8) where `base`
    /// is the rate in effect when `p` was measured (`r(k − D)`).
    /// Non-positive or non-finite bases fall back to the current rate.
    /// Returns the new rate in bits/s.
    pub fn update_from(&mut self, base_bps: f64, p: f64) -> f64 {
        let p = if p.is_finite() {
            p.clamp(self.cfg.min_feedback, 1.0)
        } else {
            0.0
        };
        let base = if base_bps.is_finite() && base_bps > 0.0 {
            base_bps
        } else {
            self.rate_bps
        };
        let next = base + self.cfg.alpha_bps - self.cfg.beta * base * p;
        self.rate_bps = next.clamp(
            self.cfg.min_rate.as_bps() as f64,
            self.cfg.max_rate.as_bps() as f64,
        );
        self.updates += 1;
        self.rate_bps
    }

    /// Lemma 6: the stationary rate `r* = C/N + α/β` for `n` flows sharing
    /// capacity `c` under this controller's gains.
    pub fn stationary_rate_bps(&self, c: Rate, n: usize) -> f64 {
        assert!(n > 0, "need at least one flow");
        c.as_bps() as f64 / n as f64 + self.cfg.alpha_bps / self.cfg.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> MkcController {
        MkcController::new(MkcConfig::default())
    }

    #[test]
    fn additive_increase_at_zero_feedback() {
        let mut m = ctl();
        let r0 = m.rate_bps();
        m.update(0.0);
        assert!((m.rate_bps() - r0 - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_point_is_lemma6() {
        // Single flow on a 2 Mb/s link: r* = 2000 + 40 = 2040 kb/s.
        let mut m = ctl();
        let c = Rate::from_mbps(2.0);
        let target = m.stationary_rate_bps(c, 1);
        assert!((target - 2_040_000.0).abs() < 1e-6);
        // Feed it self-consistent feedback p = (r - C)/r and iterate.
        for _ in 0..500 {
            let r = m.rate_bps();
            let p = (r - c.as_bps() as f64) / r;
            m.update(p);
        }
        assert!((m.rate_bps() - target).abs() < 1.0, "rate {}", m.rate_bps());
    }

    #[test]
    fn converges_fast_from_below() {
        // Paper Fig. 9: from 128 kb/s the flow claims a 2 Mb/s link in a
        // handful of control intervals (exponential ramp).
        let mut m = ctl();
        let c = 2_000_000.0;
        let mut steps = 0;
        while m.rate_bps() < 0.95 * c && steps < 50 {
            let r = m.rate_bps();
            m.update((r - c) / r);
            steps += 1;
        }
        assert!(steps <= 10, "took {steps} steps");
    }

    #[test]
    fn no_oscillation_at_fixed_point() {
        let mut m = ctl();
        let c = 2_000_000.0;
        for _ in 0..200 {
            let r = m.rate_bps();
            m.update((r - c) / r);
        }
        let r1 = m.rate_bps();
        for _ in 0..50 {
            let r = m.rate_bps();
            m.update((r - c) / r);
        }
        assert!((m.rate_bps() - r1).abs() < 1e-6, "steady state drifted");
    }

    #[test]
    fn respects_rate_bounds() {
        let mut m = MkcController::new(MkcConfig {
            max_rate: Rate::from_kbps(500.0),
            ..Default::default()
        });
        for _ in 0..100 {
            m.update(-10.0);
        }
        assert!((m.rate_bps() - 500_000.0).abs() < 1e-9);
        for _ in 0..100 {
            m.update(0.99);
        }
        assert!((m.rate_bps() - 64_000.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_feedback_is_ignored_additively() {
        let mut m = ctl();
        let r0 = m.rate_bps();
        m.update(f64::NAN);
        assert!((m.rate_bps() - r0 - 20_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,2)")]
    fn rejects_unstable_beta() {
        let _ = MkcController::new(MkcConfig { beta: 2.5, ..Default::default() });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The rate always stays within configured bounds.
        #[test]
        fn rate_in_bounds(inputs in proptest::collection::vec(-20.0f64..1.0, 1..300)) {
            let mut m = MkcController::new(MkcConfig::default());
            for p in inputs {
                let r = m.update(p);
                prop_assert!((64_000.0..=10_000_000.0).contains(&r));
            }
        }

        /// Two flows fed identical feedback converge to identical rates
        /// regardless of initial conditions (fairness).
        #[test]
        fn fairness_under_shared_feedback(r0a in 64.0f64..5_000.0, r0b in 64.0f64..5_000.0) {
            let mk = |kbps: f64| MkcController::new(MkcConfig {
                initial: Rate::from_kbps(kbps),
                ..Default::default()
            });
            let (mut a, mut b) = (mk(r0a), mk(r0b));
            let c = 2_000_000.0;
            for _ in 0..2_000 {
                let total = a.rate_bps() + b.rate_bps();
                let p = (total - c) / total;
                a.update(p);
                b.update(p);
            }
            prop_assert!((a.rate_bps() - b.rate_bps()).abs() < 0.01 * a.rate_bps());
        }
    }
}
