//! Parallel parameter sweeps.
//!
//! Each simulation run is single-threaded and deterministic, so a sweep
//! over configurations is embarrassingly parallel: [`run_parallel`] fans
//! the configurations out over OS threads (scoped; no runtime dependency)
//! and returns the reports in input order.

use crate::scenario::{Scenario, ScenarioConfig, ScenarioReport};
use pels_netsim::time::SimTime;

/// Runs every configuration for `duration_s` simulated seconds, in parallel
/// across at most `max_threads` OS threads, and returns the reports in the
/// same order as the input.
///
/// # Examples
///
/// ```
/// use pels_core::scenario::{pels_flows, ScenarioConfig};
/// use pels_core::sweep::run_parallel;
///
/// let configs: Vec<ScenarioConfig> = (2..=4)
///     .map(|n| ScenarioConfig { flows: pels_flows(&vec![0.0; n]), ..Default::default() })
///     .collect();
/// let reports = run_parallel(configs, 5.0, 4);
/// assert_eq!(reports.len(), 3);
/// assert_eq!(reports[2].flows.len(), 4);
/// ```
///
/// # Panics
///
/// Panics if `max_threads == 0`, `duration_s <= 0`, or any scenario panics
/// (the panic is propagated).
pub fn run_parallel(
    configs: Vec<ScenarioConfig>,
    duration_s: f64,
    max_threads: usize,
) -> Vec<ScenarioReport> {
    assert!(max_threads >= 1, "need at least one thread");
    assert!(duration_s > 0.0, "duration must be positive");
    if configs.is_empty() {
        return Vec::new();
    }

    let mut reports: Vec<Option<ScenarioReport>> = Vec::new();
    reports.resize_with(configs.len(), || None);
    let jobs: Vec<(usize, ScenarioConfig)> = configs.into_iter().enumerate().collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(&mut reports);

    std::thread::scope(|scope| {
        let workers = max_threads.min(jobs.len());
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    return;
                }
                let (slot, cfg) = &jobs[i];
                let mut s = Scenario::build(cfg.clone());
                s.run_until(SimTime::from_secs_f64(duration_s));
                let report = s.report();
                results.lock().expect("no poisoned sweeps")[*slot] = Some(report);
            });
        }
    });

    reports.into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::pels_flows;

    fn cfg(n: usize, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            flows: pels_flows(&vec![0.0; n]),
            keep_series: false,
            ..Default::default()
        }
    }

    #[test]
    fn preserves_input_order() {
        let configs = vec![cfg(1, 1), cfg(3, 1), cfg(2, 1)];
        let reports = run_parallel(configs, 3.0, 3);
        assert_eq!(reports.iter().map(|r| r.flows.len()).collect::<Vec<_>>(), vec![1, 3, 2]);
    }

    #[test]
    fn parallel_equals_serial() {
        let configs = vec![cfg(2, 9), cfg(2, 9)];
        let reports = run_parallel(configs, 5.0, 2);
        // Identical configs -> identical (deterministic) reports.
        assert_eq!(
            serde_json::to_string(&reports[0]).unwrap(),
            serde_json::to_string(&reports[1]).unwrap()
        );
        // And a fresh serial run agrees too.
        let mut s = Scenario::build(cfg(2, 9));
        s.run_until(SimTime::from_secs_f64(5.0));
        assert_eq!(
            serde_json::to_string(&s.report()).unwrap(),
            serde_json::to_string(&reports[0]).unwrap()
        );
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(run_parallel(Vec::new(), 1.0, 4).is_empty());
    }

    #[test]
    fn more_jobs_than_threads() {
        let configs: Vec<_> = (0..7).map(|i| cfg(1, i)).collect();
        let reports = run_parallel(configs, 2.0, 2);
        assert_eq!(reports.len(), 7);
    }
}
