//! A tandem (multi-bottleneck) scenario exercising the paper's multi-router
//! feedback rules (Section 5.2): "when there are multiple routers along an
//! end-to-end path, each router compares its `p_l` with that inside arriving
//! packets and overrides the existing value only if its packet loss is
//! larger. End flows use the router ID field to keep track of feedback
//! freshness and react to possible shifts of the bottlenecks."
//!
//! ```text
//!  srcs ── RA ══ C_A ══ RB ══ C_B ══ RC ── receivers
//!          (AQM)        (AQM)       (plain)
//! ```
//!
//! Both RA and RB run the PELS AQM and stamp feedback; the max-loss override
//! makes the source follow whichever is currently the tighter bottleneck.

use crate::receiver::PelsReceiver;
use crate::router::{AqmConfig, AqmRouter};
use crate::source::{PelsSource, SourceConfig, SourceMode};
use crate::{CcSpec, GammaConfig};
use pels_fgs::frame::VideoTrace;
use pels_netsim::cbr::{CbrConfig, CbrSource};
use pels_netsim::disc::{DropTail, QueueLimit};
use pels_netsim::packet::{AgentId, FlowId};
use pels_netsim::port::Port;
use pels_netsim::router::{RouteTable, Router};
use pels_netsim::sim::Simulator;
use pels_netsim::time::{Rate, SimDuration, SimTime};

/// Configuration of the tandem scenario.
#[derive(Debug, Clone)]
pub struct TandemConfig {
    /// Simulator seed.
    pub seed: u64,
    /// Capacity of the first bottleneck (RA → RB).
    pub capacity_a: Rate,
    /// Capacity of the second bottleneck (RB → RC).
    pub capacity_b: Rate,
    /// Access-link rate for hosts.
    pub access: Rate,
    /// One-way propagation delay of every link.
    pub link_delay: SimDuration,
    /// AQM settings shared by RA and RB.
    pub aqm: AqmConfig,
    /// The video trace.
    pub trace: VideoTrace,
    /// Number of PELS flows traversing both bottlenecks.
    pub n_flows: usize,
    /// Optional background CBR traffic injected at RB (PELS-yellow class),
    /// to move the binding bottleneck mid-run: `(rate, start_at)`.
    pub background_on_b: Option<(Rate, SimDuration)>,
    /// Whether to retain time series.
    pub keep_series: bool,
}

impl Default for TandemConfig {
    fn default() -> Self {
        TandemConfig {
            seed: 1,
            capacity_a: Rate::from_mbps(4.0),
            capacity_b: Rate::from_mbps(3.0),
            access: Rate::from_mbps(10.0),
            link_delay: SimDuration::from_millis(2),
            aqm: AqmConfig::default(),
            trace: crate::scenario::default_trace(),
            n_flows: 2,
            background_on_b: None,
            keep_series: true,
        }
    }
}

/// A built tandem scenario.
#[derive(Debug)]
pub struct Tandem {
    /// The simulator.
    pub sim: Simulator,
    /// First AQM router.
    pub ra: AgentId,
    /// Second AQM router.
    pub rb: AgentId,
    /// Final plain router.
    pub rc: AgentId,
    /// Source agent ids.
    pub sources: Vec<AgentId>,
    /// Receiver agent ids.
    pub receivers: Vec<AgentId>,
    /// Background CBR source id, when configured.
    pub background: Option<AgentId>,
}

impl Tandem {
    /// Builds the tandem topology.
    ///
    /// # Panics
    ///
    /// Panics if `n_flows == 0`.
    pub fn build(cfg: TandemConfig) -> Self {
        assert!(cfg.n_flows > 0, "need at least one flow");
        let n = cfg.n_flows;
        let ra = AgentId(0);
        let rb = AgentId(1);
        let rc = AgentId(2);
        let src_id = |i: usize| AgentId((3 + i) as u32);
        let rcv_id = |i: usize| AgentId((3 + n + i) as u32);
        // The background CBR (if any) injects at RB and terminates at a
        // dedicated null sink hanging off RC; both are appended after the
        // regular sources/receivers.
        let bg_src_id = AgentId((3 + 2 * n) as u32);
        let bg_sink_id = AgentId((3 + 2 * n + 1) as u32);

        let mut sim = Simulator::new(cfg.seed);
        let q = |limit: usize| Box::new(DropTail::new(QueueLimit::Packets(limit)));

        // RA: AQM, bottleneck toward RB; reverse ports to each source.
        let mut ra_routes = RouteTable::new();
        let bottleneck_a = Port::new(0, rb, cfg.capacity_a, cfg.link_delay, q(1));
        let mut ra_reverse = Vec::new();
        for i in 0..n {
            ra_routes.add(rcv_id(i), 0);
            ra_routes.add(src_id(i), 1 + i);
            ra_reverse.push(Port::new(1 + i, src_id(i), cfg.access, cfg.link_delay, q(200)));
        }
        sim.add_agent(Box::new(AqmRouter::new(
            bottleneck_a,
            ra_reverse,
            ra_routes,
            cfg.aqm,
            cfg.keep_series,
        )));

        // RB: AQM, bottleneck toward RC; reverse port back to RA.
        let mut rb_routes = RouteTable::new();
        let bottleneck_b = Port::new(0, rc, cfg.capacity_b, cfg.link_delay, q(1));
        for i in 0..n {
            rb_routes.add(rcv_id(i), 0);
            rb_routes.add(src_id(i), 1);
        }
        rb_routes.add(bg_sink_id, 0);
        let rb_reverse = vec![Port::new(1, ra, cfg.access, cfg.link_delay, q(200))];
        sim.add_agent(Box::new(AqmRouter::new(
            bottleneck_b,
            rb_reverse,
            rb_routes,
            cfg.aqm,
            cfg.keep_series,
        )));

        // RC: plain router fanning out to receivers; reverse port to RB.
        let mut rc_ports = vec![Port::new(0, rb, cfg.access, cfg.link_delay, q(200))];
        let mut rc_routes = RouteTable::new();
        for i in 0..n {
            rc_routes.add(src_id(i), 0);
            rc_routes.add(rcv_id(i), 1 + i);
            rc_ports.push(Port::new(1 + i, rcv_id(i), cfg.access, cfg.link_delay, q(200)));
        }
        if cfg.background_on_b.is_some() {
            rc_routes.add(bg_sink_id, 1 + n);
            rc_ports.push(Port::new(1 + n, bg_sink_id, cfg.access, cfg.link_delay, q(200)));
        }
        sim.add_agent(Box::new(Router::new(rc_ports, rc_routes)));

        // Sources and receivers.
        let mut sources = Vec::new();
        for i in 0..n {
            let port = Port::new(0, ra, cfg.access, cfg.link_delay, q(400));
            let sc = SourceConfig {
                flow: FlowId(i as u32),
                dst: rcv_id(i),
                start_at: SimDuration::ZERO,
                stop_at: None,
                trace: cfg.trace.clone(),
                cc: CcSpec::default(),
                gamma: GammaConfig::default(),
                packet_bytes: 500,
                mode: SourceMode::Pels,
                arq: None,
                degradation: crate::source::DegradationConfig::default(),
                keep_series: cfg.keep_series,
            };
            sources.push(sim.add_agent(Box::new(PelsSource::new(sc, port))));
        }
        let mut receivers = Vec::new();
        for i in 0..n {
            let port = Port::new(0, rc, cfg.access, cfg.link_delay, q(400));
            receivers.push(sim.add_agent(Box::new(PelsReceiver::new(
                FlowId(i as u32),
                port,
                cfg.keep_series,
            ))));
        }

        let background = cfg.background_on_b.map(|(rate, start_at)| {
            // The CBR injects *directly at RB* (it models traffic crossing
            // only the second hop), marked yellow so it loads the PELS
            // share that RB's estimator watches.
            let port = Port::new(0, rb, cfg.access, cfg.link_delay, q(400));
            let bg_cfg =
                CbrConfig { start_at, ..CbrConfig::new(FlowId(9_999), bg_sink_id, rate, 500, 1) };
            sim.add_agent(Box::new(CbrSource::new(bg_cfg, port)))
        });
        if cfg.background_on_b.is_some() {
            // A sink that silently absorbs background packets.
            sim.add_agent(Box::new(crate::tandem::NullSink));
            debug_assert_eq!(background, Some(bg_src_id));
        }

        Tandem { sim, ra, rb, rc, sources, receivers, background }
    }

    /// Runs until absolute time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Typed access to source `i`.
    pub fn source(&self, i: usize) -> &PelsSource {
        self.sim.agent::<PelsSource>(self.sources[i])
    }

    /// Typed access to receiver `i`.
    pub fn receiver(&self, i: usize) -> &PelsReceiver {
        self.sim.agent::<PelsReceiver>(self.receivers[i])
    }

    /// Typed access to the first AQM router.
    pub fn router_a(&self) -> &AqmRouter {
        self.sim.agent::<AqmRouter>(self.ra)
    }

    /// Typed access to the second AQM router.
    pub fn router_b(&self) -> &AqmRouter {
        self.sim.agent::<AqmRouter>(self.rb)
    }
}

/// An agent that drops everything it receives (background-traffic sink).
#[derive(Debug)]
pub struct NullSink;

impl pels_netsim::sim::Agent for NullSink {
    fn on_packet(&mut self, _p: pels_netsim::Packet, _ctx: &mut pels_netsim::sim::Context<'_>) {}
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mkc::MkcController;

    #[test]
    fn converges_to_the_tighter_bottleneck() {
        // B (3 Mb/s, PELS share 1.5 Mb/s) is tighter than A (4 Mb/s / 2).
        let mut t = Tandem::build(TandemConfig::default());
        t.run_until(SimTime::from_secs_f64(30.0));
        let mkc = MkcController::new(Default::default());
        let expect = mkc.stationary_rate_bps(Rate::from_mbps(1.5), 2);
        for i in 0..2 {
            let r = t.source(i).rate_bps();
            assert!(
                (r - expect).abs() < 0.1 * expect,
                "flow {i}: rate {r} vs bottleneck-B target {expect}"
            );
        }
        // The tighter router B reports positive loss; A reports spare
        // capacity (its share exceeds what B lets through).
        assert!(t.router_b().estimator().loss() > 0.0);
        assert!(t.router_a().estimator().loss() < 0.0);
    }

    #[test]
    fn dynamic_bottleneck_shift_mid_run() {
        // A starts tighter (3 Mb/s vs 4 Mb/s). At t = 25 s a 1.5 Mb/s
        // yellow CBR floods B's PELS share, making B the binding
        // constraint. The max-loss override must hand control to B and the
        // flows must re-converge to the new, lower fair share.
        let mut t = Tandem::build(TandemConfig {
            capacity_a: Rate::from_mbps(3.0),
            capacity_b: Rate::from_mbps(4.0),
            background_on_b: Some((Rate::from_mbps(1.5), SimDuration::from_secs(25))),
            ..Default::default()
        });
        // Phase 1: A binds. PELS share of A = 1.5 Mb/s, 2 flows -> 790 kb/s.
        t.run_until(SimTime::from_secs_f64(20.0));
        let r_phase1 = t.source(0).rate_series.mean_after(12.0).unwrap();
        assert!((r_phase1 - 790.0).abs() < 0.1 * 790.0, "phase 1: {r_phase1}");
        assert!(t.router_a().estimator().loss() > t.router_b().estimator().loss());

        // Phase 2: B's PELS share (2 Mb/s) minus 1.5 Mb/s background leaves
        // 0.5 Mb/s for the two video flows... but A still limits their
        // aggregate to 1.5 Mb/s; B now sees 1.5 + 1.5 = 3.0 Mb/s > 2 Mb/s,
        // so B becomes the max-loss router and pushes the flows down until
        // video + background fits B: video total = 0.5 Mb/s + surplus.
        t.run_until(SimTime::from_secs_f64(60.0));
        let r_phase2 = t.source(0).rate_series.mean_after(45.0).unwrap();
        assert!(
            r_phase2 < 0.6 * r_phase1,
            "flows must yield to the new bottleneck: {r_phase2} vs {r_phase1}"
        );
        assert!(
            t.router_b().estimator().loss() > t.router_a().estimator().loss(),
            "B is now the binding constraint"
        );
        // The epoch filter's horizon moved to router B.
        assert!(t.background.is_some());
    }

    #[test]
    fn bottleneck_shift_is_followed() {
        // Start with B tighter; it stays the bottleneck. (A true dynamic
        // shift is exercised in the integration tests with cross traffic —
        // here we verify the source locks onto B's router id.)
        let mut t = Tandem::build(TandemConfig::default());
        t.run_until(SimTime::from_secs_f64(20.0));
        // Utility stays high across two AQM hops once past the join
        // transient (frames 0..50 cover the initial MKC ramp, during which
        // the γ cushion has not formed yet).
        let mut total = pels_fgs::UtilityStats::new();
        for i in 0..2 {
            for d in t.receiver(i).decode_all() {
                if d.frame >= 50 {
                    total.add(&d);
                }
            }
        }
        assert!(total.utility() > 0.9, "utility {}", total.utility());
    }
}
