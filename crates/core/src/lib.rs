//! # pels-core — Partitioned Enhancement Layer Streaming
//!
//! The primary contribution of *"Multi-layer Active Queue Management and
//! Congestion Control for Scalable Video Streaming"* (Kang, Zhang, Dai,
//! Loguinov — ICDCS 2004), implemented end to end:
//!
//! * [`color`] — the green/yellow/red marking scheme (Section 4).
//! * [`gamma`] — the γ partition controller (Eq. 4–5, Lemmas 2–4).
//! * [`mkc`] — Max-min Kelly congestion control (Eq. 8, Lemmas 5–6).
//! * [`feedback`] — router feedback `p = (R−C)/R` with epochs (Eq. 11) and
//!   the source-side freshness filter (Section 5.2).
//! * [`router`] — the PELS AQM router (WRR + strict priority, Fig. 4) and
//!   the uniform-loss best-effort comparator (Section 6.5).
//! * [`source`] / [`receiver`] — streaming endpoints: rate scaling,
//!   partitioning, packetization, pacing; prefix decoding, delay and
//!   utility measurement.
//! * [`scenario`] — the dumbbell evaluation topology (Fig. 6) with TCP
//!   cross traffic, plus serializable run reports.
//! * [`chaos`] — scripted fault scenarios (link failures, feedback loss,
//!   router flushes) with recovery invariants.
//!
//! ## Example: PELS keeps utility ≈ 1 where best-effort collapses
//!
//! ```no_run
//! use pels_core::scenario::{pels_flows, to_best_effort, Scenario, ScenarioConfig};
//! use pels_netsim::time::SimTime;
//!
//! let cfg = ScenarioConfig { flows: pels_flows(&[0.0; 4]), ..Default::default() };
//! let mut pels = Scenario::build(cfg.clone());
//! let mut be = Scenario::build(to_best_effort(cfg));
//! pels.run_until(SimTime::from_secs_f64(40.0));
//! be.run_until(SimTime::from_secs_f64(40.0));
//! assert!(pels.total_utility().utility() > be.total_utility().utility());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aimd;
pub mod chaos;
pub mod color;
pub mod feedback;
pub mod gamma;
pub mod mkc;
pub mod parallel;
pub mod receiver;
pub mod router;
pub mod scenario;
pub mod source;
pub mod sweep;
pub mod tandem;
pub mod tcm;
pub mod tfrc;

pub use aimd::{AimdConfig, AimdController};
pub use color::Color;
pub use feedback::{EpochFilter, FeedbackEstimator};
pub use gamma::{DelayedGammaController, GammaConfig, GammaController};
pub use mkc::{MkcConfig, MkcController};
pub use parallel::ParallelScenario;
pub use pels_netsim::SimError;
pub use receiver::{NackConfig, PelsReceiver};
pub use router::{AqmConfig, AqmRouter, QueueMode};
pub use scenario::{FlowSpec, Scenario, ScenarioConfig, ScenarioReport};
pub use source::{ArqConfig, CcSpec, PelsSource, SourceConfig, SourceMode};
pub use tandem::{Tandem, TandemConfig};
pub use tcm::{SrTcm, TcmConfig};
pub use tfrc::{TfrcConfig, TfrcController};
