//! End-to-end simulation scenarios: the paper's dumbbell topology (Fig. 6).
//!
//! ```text
//!  video srcs ──┐                       ┌── video receivers
//!  (10 Mb/s)    ├── R1 ══ 4 Mb/s ══ R2 ─┤
//!  TCP srcs  ───┘   (PELS AQM)          └── TCP sinks
//! ```
//!
//! R1 is the AQM bottleneck router; its 4 Mb/s link to R2 is shared 50/50
//! between the PELS queue and the Internet (TCP) queue by WRR. All other
//! links are 10 Mb/s. Video flows use MKC congestion control and γ-driven
//! packet coloring; TCP Reno saturates the Internet share.

use crate::gamma::GammaConfig;
use crate::mkc::{MkcConfig, MkcController};
use crate::receiver::PelsReceiver;
use crate::router::{AqmConfig, AqmRouter, QueueMode};
use crate::source::{CcSpec, PelsSource, SourceConfig, SourceMode};
use pels_fgs::decoder::UtilityStats;
use pels_fgs::frame::VideoTrace;
use pels_netsim::disc::{DropTail, QueueLimit};
use pels_netsim::packet::{AgentId, FlowId};
use pels_netsim::port::Port;
use pels_netsim::router::{RouteTable, Router};
use pels_netsim::shard::TopologyGraph;
use pels_netsim::sim::{Agent, AgentLookup, Simulator};
use pels_netsim::tcp::{TcpSink, TcpSource};
use pels_netsim::time::{Rate, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Per-flow configuration inside a scenario.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FlowSpec {
    /// When the flow joins, relative to simulation start.
    pub start_at: SimDuration,
    /// Congestion controller for this flow.
    pub cc: CcSpec,
    /// γ-controller gains for this flow.
    pub gamma: GammaConfig,
    /// Marking mode (PELS vs best-effort comparator).
    pub mode: SourceMode,
    /// Extra one-way propagation delay on this flow's access link, added
    /// in both directions (models heterogeneous RTTs; Lemma 6 predicts the
    /// stationary rate is unaffected).
    pub extra_delay: SimDuration,
    /// Optional ARQ retransmission (for the comparator experiments).
    pub arq: Option<crate::source::ArqConfig>,
    /// Floor-aware degradation policy for the many-flow regime
    /// (DESIGN.md §11). Defaults to enabled.
    #[serde(default)]
    pub degradation: crate::source::DegradationConfig,
}

impl Default for FlowSpec {
    fn default() -> Self {
        FlowSpec {
            start_at: SimDuration::ZERO,
            cc: CcSpec::default(),
            gamma: GammaConfig::default(),
            mode: SourceMode::Pels,
            extra_delay: SimDuration::ZERO,
            arq: None,
            degradation: crate::source::DegradationConfig::default(),
        }
    }
}

/// Topology layout of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Layout {
    /// The paper's Fig. 6 shared-bottleneck dumbbell: every flow crosses
    /// the single AQM router R1.
    #[default]
    SharedDumbbell,
    /// One independent source→router→receiver dumbbell per video flow
    /// (each with its own `n_tcp` cross-traffic flows and a private
    /// bottleneck of `bottleneck` rate). The chains never share a link, so
    /// the topology partitions into connected components and parallel
    /// execution needs no synchronization at all — this is the scaling
    /// layout of `pels bench`.
    ChainPerFlow,
}

/// Full scenario configuration. Defaults follow the paper's Section 6.1.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScenarioConfig {
    /// Simulator seed (runs are bit-reproducible per seed).
    pub seed: u64,
    /// Bottleneck link rate (paper: 4 Mb/s).
    pub bottleneck: Rate,
    /// Access link rate (paper: 10 Mb/s).
    pub access: Rate,
    /// One-way propagation delay of each access link.
    pub access_delay: SimDuration,
    /// One-way propagation delay of the bottleneck link.
    pub bottleneck_delay: SimDuration,
    /// AQM configuration of the bottleneck router.
    pub aqm: AqmConfig,
    /// The video trace streamed by every flow.
    pub trace: VideoTrace,
    /// Wire packet size for video (paper: 500 bytes).
    pub packet_bytes: u32,
    /// The video flows.
    pub flows: Vec<FlowSpec>,
    /// Number of greedy TCP Reno cross-traffic flows in the Internet queue.
    pub n_tcp: usize,
    /// TCP packet size, bytes.
    pub tcp_packet_bytes: u32,
    /// Whether to retain full time series (rates, γ, delays, feedback).
    pub keep_series: bool,
    /// Optional playout deadline at every receiver: packets older than this
    /// on arrival are discarded as undecodable.
    pub playout_deadline: Option<SimDuration>,
    /// Optional receiver-side NACKing (pair with `FlowSpec::arq`).
    pub nack: Option<crate::receiver::NackConfig>,
    /// Topology layout: the shared dumbbell (default), or one independent
    /// chain per flow (see [`Layout`]).
    #[serde(default)]
    pub layout: Layout,
}

/// The paper's video profile adjusted so the base layer matches the stated
/// 128 kb/s initial rate: 1,600 base bytes per frame at 10 fps (4 packets),
/// full frame still 63,000 bytes. See EXPERIMENTS.md for why the literal
/// "21 green packets" constant conflicts with the 128 kb/s base rate.
pub fn default_trace() -> VideoTrace {
    VideoTrace::constant(300, 10.0, 1_600, 61_400)
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 1,
            bottleneck: Rate::from_mbps(4.0),
            access: Rate::from_mbps(10.0),
            access_delay: SimDuration::from_millis(1),
            bottleneck_delay: SimDuration::from_millis(5),
            aqm: AqmConfig::default(),
            trace: default_trace(),
            packet_bytes: 500,
            flows: vec![FlowSpec::default(), FlowSpec::default()],
            n_tcp: 2,
            tcp_packet_bytes: 1_000,
            keep_series: true,
            playout_deadline: None,
            nack: None,
            layout: Layout::default(),
        }
    }
}

/// A built scenario: the simulator plus typed handles to every agent.
#[derive(Debug)]
pub struct Scenario {
    /// The underlying simulator (exposed for custom stepping).
    pub sim: Simulator,
    /// Bottleneck AQM router id.
    pub r1: AgentId,
    /// Far-side plain router id.
    pub r2: AgentId,
    /// Video source agent ids, in flow order.
    pub sources: Vec<AgentId>,
    /// Video receiver agent ids, in flow order.
    pub receivers: Vec<AgentId>,
    /// TCP source agent ids.
    pub tcp_sources: Vec<AgentId>,
    /// TCP sink agent ids.
    pub tcp_sinks: Vec<AgentId>,
    ids: ScenarioIds,
    cfg: ScenarioConfig,
}

/// Agent ids of every role in a built scenario, grouped so report code can
/// aggregate over one shared bottleneck router or N per-chain routers
/// uniformly.
#[derive(Debug, Clone, Default)]
pub(crate) struct ScenarioIds {
    /// AQM bottleneck router(s): one for the shared dumbbell, one per
    /// chain for [`Layout::ChainPerFlow`].
    pub(crate) routers: Vec<AgentId>,
    /// Far-side plain router(s), mirroring `routers`.
    pub(crate) far_routers: Vec<AgentId>,
    /// Video sources in flow order.
    pub(crate) sources: Vec<AgentId>,
    /// Video receivers in flow order.
    pub(crate) receivers: Vec<AgentId>,
    /// TCP sources.
    pub(crate) tcp_sources: Vec<AgentId>,
    /// TCP sinks.
    pub(crate) tcp_sinks: Vec<AgentId>,
}

/// Everything needed to instantiate a scenario on either engine: the
/// agents in global-id order, the link graph for partitioning, and the
/// role ids.
pub(crate) struct ScenarioParts {
    pub(crate) agents: Vec<Box<dyn Agent>>,
    pub(crate) graph: TopologyGraph,
    pub(crate) ids: ScenarioIds,
}

/// Builds the agents, link graph, and role ids for `cfg` without binding
/// them to an engine. [`Scenario::try_build`] feeds the agents to the
/// serial [`Simulator`]; [`crate::parallel::ParallelScenario`] partitions
/// the graph and feeds them to a
/// [`pels_netsim::shard::ShardedSimulator`]. Agent construction draws no
/// randomness, so both engines see identical initial state.
pub(crate) fn build_parts(cfg: &ScenarioConfig) -> Result<ScenarioParts, crate::SimError> {
    if cfg.flows.is_empty() {
        return Err(pels_netsim::error::invalid_config("a scenario needs at least one video flow"));
    }
    let n = cfg.flows.len();
    let n_tcp = cfg.n_tcp;
    match cfg.layout {
        Layout::SharedDumbbell => {
            let total = 2 + 2 * n + 2 * n_tcp;
            let mut parts = ScenarioParts {
                agents: Vec::with_capacity(total),
                graph: TopologyGraph::new(total),
                ids: ScenarioIds::default(),
            };
            let flow_ids: Vec<u32> = (0..n as u32).collect();
            push_dumbbell(cfg, &cfg.flows, 0, &flow_ids, 1000, &mut parts)?;
            Ok(parts)
        }
        Layout::ChainPerFlow => {
            let per_chain = 4 + 2 * n_tcp;
            let total = n * per_chain;
            let mut parts = ScenarioParts {
                agents: Vec::with_capacity(total),
                graph: TopologyGraph::new(total),
                ids: ScenarioIds::default(),
            };
            for i in 0..n {
                push_dumbbell(
                    cfg,
                    std::slice::from_ref(&cfg.flows[i]),
                    (i * per_chain) as u32,
                    &[i as u32],
                    (1000 + i * n_tcp) as u32,
                    &mut parts,
                )?;
            }
            Ok(parts)
        }
    }
}

/// Appends one dumbbell cluster — AQM router, far router, `flows.len()`
/// video flows, `cfg.n_tcp` TCP flows — to `parts`, with agent ids offset
/// by `id_base` and video flows numbered by `flow_ids` (global indices).
/// With `id_base = 0` and all flows this is exactly the paper's Fig. 6
/// topology and the historical agent-id layout.
fn push_dumbbell(
    cfg: &ScenarioConfig,
    flows: &[FlowSpec],
    id_base: u32,
    flow_ids: &[u32],
    tcp_flow_base: u32,
    parts: &mut ScenarioParts,
) -> Result<(), crate::SimError> {
    let n = flows.len();
    let n_tcp = cfg.n_tcp;

    // Agent id layout within the cluster (ids are assigned in push order):
    // base     = R1 (AQM bottleneck), base + 1 = R2,
    // base + 2 .. +n                = video sources,
    // .. + n                        = video receivers,
    // .. + n_tcp                    = TCP sources,
    // .. + n_tcp                    = TCP sinks.
    let r1 = AgentId(id_base);
    let r2 = AgentId(id_base + 1);
    let src_id = |i: usize| AgentId(id_base + (2 + i) as u32);
    let rcv_id = |i: usize| AgentId(id_base + (2 + n + i) as u32);
    let tcp_src_id = |j: usize| AgentId(id_base + (2 + 2 * n + j) as u32);
    let tcp_sink_id = |j: usize| AgentId(id_base + (2 + 2 * n + n_tcp + j) as u32);

    debug_assert_eq!(parts.agents.len(), id_base as usize, "id_base must match push order");
    let q = |limit: usize| Box::new(DropTail::new(QueueLimit::Packets(limit)));

    // --- R1: the AQM bottleneck router ---
    let bottleneck_port = Port::new(0, r2, cfg.bottleneck, cfg.bottleneck_delay, q(1));
    parts.graph.add_link(r1, r2, cfg.bottleneck_delay);
    let mut r1_reverse = Vec::new();
    let mut r1_routes = RouteTable::new();
    for (i, flow) in flows.iter().enumerate() {
        r1_routes.add(rcv_id(i), 0);
        let port_idx = 1 + i;
        r1_routes.add(src_id(i), port_idx);
        let delay = cfg.access_delay + flow.extra_delay;
        r1_reverse.push(Port::new(port_idx, src_id(i), cfg.access, delay, q(200)));
        parts.graph.add_link(src_id(i), r1, delay);
    }
    for j in 0..n_tcp {
        r1_routes.add(tcp_sink_id(j), 0);
        let port_idx = 1 + n + j;
        r1_routes.add(tcp_src_id(j), port_idx);
        r1_reverse.push(Port::new(port_idx, tcp_src_id(j), cfg.access, cfg.access_delay, q(200)));
        parts.graph.add_link(tcp_src_id(j), r1, cfg.access_delay);
    }
    parts.agents.push(Box::new(AqmRouter::try_new(
        bottleneck_port,
        r1_reverse,
        r1_routes,
        cfg.aqm,
        cfg.keep_series,
    )?));
    parts.ids.routers.push(r1);

    // --- R2: plain far-side router ---
    let mut r2_ports = vec![Port::new(0, r1, cfg.bottleneck, cfg.bottleneck_delay, q(200))];
    let mut r2_routes = RouteTable::new();
    for i in 0..n {
        r2_routes.add(src_id(i), 0);
        let port_idx = 1 + i;
        r2_routes.add(rcv_id(i), port_idx);
        r2_ports.push(Port::new(port_idx, rcv_id(i), cfg.access, cfg.access_delay, q(200)));
        parts.graph.add_link(r2, rcv_id(i), cfg.access_delay);
    }
    for j in 0..n_tcp {
        r2_routes.add(tcp_src_id(j), 0);
        let port_idx = 1 + n + j;
        r2_routes.add(tcp_sink_id(j), port_idx);
        r2_ports.push(Port::new(port_idx, tcp_sink_id(j), cfg.access, cfg.access_delay, q(200)));
        parts.graph.add_link(r2, tcp_sink_id(j), cfg.access_delay);
    }
    parts.agents.push(Box::new(Router::new(r2_ports, r2_routes)));
    parts.ids.far_routers.push(r2);

    // --- Video sources ---
    for (i, spec) in flows.iter().enumerate() {
        let delay = cfg.access_delay + spec.extra_delay;
        let port = Port::new(0, r1, cfg.access, delay, q(400));
        let sc = SourceConfig {
            flow: FlowId(flow_ids[i]),
            dst: rcv_id(i),
            start_at: spec.start_at,
            stop_at: None,
            trace: cfg.trace.clone(),
            cc: spec.cc,
            gamma: spec.gamma,
            packet_bytes: cfg.packet_bytes,
            mode: spec.mode,
            arq: spec.arq,
            degradation: spec.degradation,
            keep_series: cfg.keep_series,
        };
        parts.agents.push(Box::new(PelsSource::new(sc, port)));
        parts.ids.sources.push(src_id(i));
    }

    // --- Video receivers ---
    for (i, &flow_id) in flow_ids.iter().enumerate() {
        let port = Port::new(0, r2, cfg.access, cfg.access_delay, q(400));
        let mut rx = PelsReceiver::new(FlowId(flow_id), port, cfg.keep_series);
        if let Some(d) = cfg.playout_deadline {
            rx = rx.with_deadline(d);
        }
        if let Some(nc) = cfg.nack {
            rx = rx.with_nack(nc);
        }
        parts.agents.push(Box::new(rx));
        parts.ids.receivers.push(rcv_id(i));
    }

    // --- TCP cross traffic ---
    for j in 0..n_tcp {
        let port = Port::new(0, r1, cfg.access, cfg.access_delay, q(400));
        parts.agents.push(Box::new(TcpSource::new(
            port,
            FlowId(tcp_flow_base + j as u32),
            tcp_sink_id(j),
            cfg.tcp_packet_bytes,
            SimDuration::ZERO,
        )));
        parts.ids.tcp_sources.push(tcp_src_id(j));
    }
    for j in 0..n_tcp {
        let port = Port::new(0, r2, cfg.access, cfg.access_delay, q(400));
        parts.agents.push(Box::new(TcpSink::new(port, FlowId(tcp_flow_base + j as u32))));
        parts.ids.tcp_sinks.push(tcp_sink_id(j));
    }
    Ok(())
}

impl Scenario {
    /// Builds (but does not run) the dumbbell scenario.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no video flows.
    pub fn build(cfg: ScenarioConfig) -> Self {
        Self::try_build(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Scenario::build`]: returns
    /// [`crate::SimError::InvalidConfig`] instead of panicking on a bad
    /// configuration.
    pub fn try_build(cfg: ScenarioConfig) -> Result<Self, crate::SimError> {
        let parts = build_parts(&cfg)?;
        let mut sim = Simulator::new(cfg.seed);
        for agent in parts.agents {
            sim.add_agent(agent);
        }
        let ids = parts.ids;
        Ok(Scenario {
            sim,
            r1: ids.routers[0],
            r2: ids.far_routers[0],
            sources: ids.sources.clone(),
            receivers: ids.receivers.clone(),
            tcp_sources: ids.tcp_sources.clone(),
            tcp_sinks: ids.tcp_sinks.clone(),
            ids,
            cfg,
        })
    }

    /// Installs a scripted fault schedule into the underlying simulator
    /// (see [`pels_netsim::faults::FaultSchedule`]).
    ///
    /// # Panics
    ///
    /// Panics on an invalid schedule; use
    /// [`Scenario::try_install_faults`] for a `Result`.
    pub fn install_faults(&mut self, schedule: &pels_netsim::faults::FaultSchedule) {
        self.sim.install_faults(schedule);
    }

    /// Fallible variant of [`Scenario::install_faults`]: a malformed
    /// schedule yields [`crate::SimError::InvalidConfig`] before anything
    /// is scheduled.
    pub fn try_install_faults(
        &mut self,
        schedule: &pels_netsim::faults::FaultSchedule,
    ) -> Result<(), crate::SimError> {
        self.sim.try_install_faults(schedule)
    }

    /// Attaches a telemetry handle to every instrumented agent: the AQM
    /// router and each video source and receiver share (clones of) the same
    /// registry. Disabled handles keep all hot paths single-branch no-ops.
    pub fn attach_telemetry(&mut self, telemetry: &pels_telemetry::Telemetry) {
        for &id in &self.ids.routers {
            self.sim.agent_mut::<AqmRouter>(id).set_telemetry(telemetry.clone());
        }
        for &id in &self.sources {
            self.sim.agent_mut::<PelsSource>(id).set_telemetry(telemetry.clone());
        }
        for &id in &self.receivers {
            self.sim.agent_mut::<PelsReceiver>(id).set_telemetry(telemetry.clone());
        }
    }

    /// Scrapes simulator-level gauges (event-loop progress, scheduler turns,
    /// queue occupancy) into `telemetry` and flushes one snapshot stamped
    /// with the current simulation time to every attached sink.
    pub fn flush_telemetry(&self, telemetry: &pels_telemetry::Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.gauge_set("sim.events", self.sim.events_processed() as f64);
        let queued: usize = self
            .ids
            .routers
            .iter()
            .map(|&r| self.sim.agent::<AqmRouter>(r).port(0).discipline().len_packets())
            .sum();
        telemetry.gauge_set("sim.router.queue_pkts", queued as f64);
        telemetry.flush(self.sim.now().as_secs_f64());
    }

    /// Runs the scenario until `t` (absolute simulation time).
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Runs the scenario for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// The scenario configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Total simulator events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// High-water mark of the simulator's event queue.
    pub fn peak_queue_depth(&self) -> usize {
        self.sim.peak_queue_depth()
    }

    /// Typed access to video source `i`.
    pub fn source(&self, i: usize) -> &PelsSource {
        self.sim.agent::<PelsSource>(self.sources[i])
    }

    /// Typed access to video receiver `i`.
    pub fn receiver(&self, i: usize) -> &PelsReceiver {
        self.sim.agent::<PelsReceiver>(self.receivers[i])
    }

    /// Typed access to the bottleneck AQM router.
    pub fn router(&self) -> &AqmRouter {
        self.sim.agent::<AqmRouter>(self.r1)
    }

    /// Typed access to TCP source `j`.
    pub fn tcp_source(&self, j: usize) -> &TcpSource {
        self.sim.agent::<TcpSource>(self.tcp_sources[j])
    }

    /// Typed access to TCP sink `j`.
    pub fn tcp_sink(&self, j: usize) -> &TcpSink {
        self.sim.agent::<TcpSink>(self.tcp_sinks[j])
    }

    /// Summarizes the run into a serializable report.
    pub fn report(&self) -> ScenarioReport {
        compute_report(&self.sim, &self.cfg, &self.ids)
    }

    /// Aggregate utility across all video flows.
    pub fn total_utility(&self) -> UtilityStats {
        let mut total = UtilityStats::new();
        for i in 0..self.receivers.len() {
            for d in self.receiver(i).decode_all() {
                total.add(&d);
            }
        }
        total
    }
}

/// Summarizes a finished run on either engine into a [`ScenarioReport`].
/// Bottleneck counters are aggregated across all AQM routers (one for the
/// shared dumbbell, one per chain for [`Layout::ChainPerFlow`]); the final
/// feedback values are taken from flow 0's router, which is representative
/// because chains are configured symmetrically.
pub(crate) fn compute_report<L: AgentLookup>(
    lk: &L,
    cfg: &ScenarioConfig,
    ids: &ScenarioIds,
) -> ScenarioReport {
    let flows: Vec<FlowReport> = ids
        .sources
        .iter()
        .zip(&ids.receivers)
        .enumerate()
        .map(|(i, (&src, &rcv))| {
            let s: &PelsSource = lk.lookup(src).expect("video source agent");
            let r: &PelsReceiver = lk.lookup(rcv).expect("video receiver agent");
            let u = r.utility();
            FlowReport {
                flow: i as u32,
                final_rate_kbps: s.rate_bps() / 1_000.0,
                final_gamma: s.gamma(),
                frames_sent: s.frames_sent(),
                frames_seen: r.frames_seen() as u64,
                sent_by_color: s.sent_by_color,
                received_by_color: r.received_by_color,
                utility: u.utility(),
                enh_loss: u.loss_rate(),
                mean_delay_s: [
                    r.delays.by_class[0].mean(),
                    r.delays.by_class[1].mean(),
                    r.delays.by_class[2].mean(),
                ],
                max_delay_s: [
                    finite_or_zero(r.delays.by_class[0].max()),
                    finite_or_zero(r.delays.by_class[1].max()),
                    finite_or_zero(r.delays.by_class[2].max()),
                ],
                starved: s.is_starved(),
                skipped_base_frames: s.skipped_base_frames,
                probes_sent: s.probes_sent,
            }
        })
        .collect();
    let mut bottleneck_tx_by_class = [0u64; 4];
    let mut bottleneck_drops_by_class = [0u64; 4];
    let mut random_drops = 0u64;
    for &rid in &ids.routers {
        let router: &AqmRouter = lk.lookup(rid).expect("AQM router agent");
        let stats = &router.port(0).stats;
        for c in 0..4 {
            bottleneck_tx_by_class[c] += stats.tx_by_class[c];
            bottleneck_drops_by_class[c] += stats.drops_by_class[c];
        }
        random_drops += router.random_drops;
    }
    let first_router: &AqmRouter = lk.lookup(ids.routers[0]).expect("AQM router agent");
    let starved_flows = flows.iter().filter(|f| f.starved).count();
    ScenarioReport {
        duration_s: lk.now().as_secs_f64(),
        admitted_flows: flows.len() - starved_flows,
        starved_flows,
        flows,
        bottleneck_tx_by_class,
        green_drops: bottleneck_drops_by_class[0],
        bottleneck_drops_by_class,
        router_final_loss: first_router.estimator().loss(),
        router_final_fgs_loss: first_router.estimator().fgs_loss(),
        random_drops,
        lemma6_kbps: lemma6_kbps(cfg),
        tcp_delivered: ids
            .tcp_sinks
            .iter()
            .map(|&id| lk.lookup::<TcpSink>(id).expect("TCP sink agent").delivered())
            .sum(),
    }
}

fn finite_or_zero(v: Option<f64>) -> f64 {
    v.filter(|x| x.is_finite()).unwrap_or(0.0)
}

/// Per-flow summary of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowReport {
    /// Flow index.
    pub flow: u32,
    /// MKC rate at the end of the run, kb/s.
    pub final_rate_kbps: f64,
    /// γ at the end of the run.
    pub final_gamma: f64,
    /// Frames emitted by the source.
    pub frames_sent: u64,
    /// Frames with at least one received packet.
    pub frames_seen: u64,
    /// Packets sent per color.
    pub sent_by_color: [u64; 3],
    /// Packets received per color.
    pub received_by_color: [u64; 3],
    /// Aggregate utility (Eq. 3 empirical).
    pub utility: f64,
    /// Enhancement-layer loss observed end-to-end.
    pub enh_loss: f64,
    /// Mean one-way delay per color, seconds.
    pub mean_delay_s: [f64; 3],
    /// Max one-way delay per color, seconds.
    pub max_delay_s: [f64; 3],
    /// Whether the degradation policy had starved this flow at run end.
    #[serde(default)]
    pub starved: bool,
    /// Frames skipped by base thinning (rate below the base floor).
    #[serde(default)]
    pub skipped_base_frames: u64,
    /// Path probes sent while starved.
    #[serde(default)]
    pub probes_sent: u64,
}

/// Whole-scenario summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Simulated seconds.
    pub duration_s: f64,
    /// Flows still emitting at run end (not starved).
    #[serde(default)]
    pub admitted_flows: usize,
    /// Flows the degradation policy starved (DESIGN.md §11).
    #[serde(default)]
    pub starved_flows: usize,
    /// Per-flow summaries.
    pub flows: Vec<FlowReport>,
    /// Bottleneck transmit counts per class.
    pub bottleneck_tx_by_class: [u64; 4],
    /// Base-layer (green) packets dropped at the bottleneck. The paper's
    /// core invariant is that this stays 0 — any other number means the
    /// strict-priority protection of the base layer failed, which the old
    /// report hid inside `bottleneck_drops_by_class`.
    #[serde(default)]
    pub green_drops: u64,
    /// Bottleneck drop counts per class.
    pub bottleneck_drops_by_class: [u64; 4],
    /// Final router feedback `p`.
    pub router_final_loss: f64,
    /// Final router FGS-layer loss.
    pub router_final_fgs_loss: f64,
    /// Uniform random drops (best-effort mode only).
    pub random_drops: u64,
    /// Lemma 6 stationary rate `C/N + α/β` for this topology, kb/s
    /// (`None` when flow 0 is not MKC-controlled).
    #[serde(default)]
    pub lemma6_kbps: Option<f64>,
    /// Total TCP packets delivered in-order across all sinks.
    pub tcp_delivered: u64,
}

/// Lemma 6 stationary rate `C/N + α/β` for `cfg`, kb/s, with `C` the PELS
/// share of the bottleneck and `N` the configured flow count. `None` when
/// flow 0 is not MKC-controlled (Lemma 6 is an MKC result).
pub fn lemma6_kbps(cfg: &ScenarioConfig) -> Option<f64> {
    lemma6_kbps_for(cfg, cfg.flows.len())
}

/// Lemma 6 rate for `n` competing flows under `cfg`'s topology and gains —
/// `n` may differ from the configured flow count (e.g. the *admitted* count
/// after starvation, which is the population actually sharing the pipe).
pub fn lemma6_kbps_for(cfg: &ScenarioConfig, n: usize) -> Option<f64> {
    if n == 0 {
        return None;
    }
    let crate::source::CcSpec::Mkc(m) = cfg.flows.first()?.cc else {
        return None;
    };
    // Under ChainPerFlow every flow has its own bottleneck of the full
    // configured rate, so the population sharing a pipe is always 1.
    let n_eff = match cfg.layout {
        Layout::SharedDumbbell => n,
        Layout::ChainPerFlow => 1,
    };
    let c = cfg.bottleneck.scale(cfg.aqm.pels_share);
    Some(MkcController::new(m).stationary_rate_bps(c, n_eff) / 1_000.0)
}

/// The operating point of the paper's Fig. 10 / Section 3 analysis: frames
/// carry on the order of H ~ 100 enhancement packets while the FGS layer
/// still loses ~10%. With the default 4 Mb/s bottleneck each flow's frame
/// budget is only ~13 packets, which makes best-effort streaming look far
/// better than the paper's U ~ 0.1 examples (Eq. 3 improves rapidly as H
/// shrinks). This configuration widens the pipe to 30 Mb/s and raises MKC's
/// alpha so that `n_flows` flows each stream ~100-packet frames at the
/// requested FGS-layer loss.
pub fn wideband_config(n_flows: usize, target_fgs_loss: f64) -> ScenarioConfig {
    wideband_with_bottleneck(n_flows, target_fgs_loss, Rate::from_mbps(30.0))
}

/// Capacity-proportional variant of [`wideband_config`] for scaling runs:
/// the bottleneck grows with the flow count at the same per-flow share the
/// 30 Mb/s pipe gives its designed 8 flows (3.75 Mb/s of raw bottleneck
/// each), so the per-flow operating point — frame budget and target
/// FGS-layer loss — is preserved at any N.
pub fn wideband_scaled_config(n_flows: usize, target_fgs_loss: f64) -> ScenarioConfig {
    let mut cfg =
        wideband_with_bottleneck(n_flows, target_fgs_loss, Rate::from_mbps(3.75 * n_flows as f64));
    stagger_starts(&mut cfg.flows);
    // Full per-step series across hundreds of flows would dominate memory.
    cfg.keep_series = false;
    cfg
}

fn wideband_with_bottleneck(
    n_flows: usize,
    target_fgs_loss: f64,
    bottleneck: Rate,
) -> ScenarioConfig {
    assert!(n_flows > 0, "need at least one flow");
    assert!(
        (0.0..0.9).contains(&target_fgs_loss),
        "target loss must be in [0, 0.9): {target_fgs_loss}"
    );
    let pels = bottleneck.as_bps() as f64 * 0.5;
    let base = 128_000.0 * n_flows as f64;
    // Solve surplus = target * enh_total with enh_total = pels + surplus - base.
    let surplus = target_fgs_loss * (pels - base) / (1.0 - target_fgs_loss);
    let alpha = (surplus / n_flows as f64 * 0.5).max(20_000.0); // beta = 0.5
    let flow = FlowSpec {
        cc: CcSpec::Mkc(MkcConfig {
            alpha_bps: alpha,
            max_rate: Rate::from_mbps(9.0),
            ..Default::default()
        }),
        ..Default::default()
    };
    ScenarioConfig { bottleneck, flows: vec![flow; n_flows], ..Default::default() }
}

/// A capacity-proportional dumbbell for scaling studies: the bottleneck
/// grows with the flow count so each flow's PELS share stays 400 kb/s —
/// comfortably above the 128 kb/s base floor at any N — and Lemma 6 gives
/// the same stationary rate (400 + α/β = 440 kb/s) at every N, making
/// sweep rows directly comparable. Per-step series are disabled: at
/// hundreds of flows they would dominate memory, and scaling runs only
/// need the end-of-run report.
pub fn proportional_config(n_flows: usize) -> ScenarioConfig {
    assert!(n_flows > 0, "need at least one flow");
    // 800 kb/s of raw bottleneck per flow = 400 kb/s of PELS share at the
    // default 50/50 WRR split.
    let bottleneck = Rate::from_bps(800_000 * n_flows as u64);
    let mut flows = vec![FlowSpec::default(); n_flows];
    stagger_starts(&mut flows);
    ScenarioConfig { bottleneck, flows, keep_series: false, ..Default::default() }
}

/// [`proportional_config`]'s workload restated as `n_flows` *independent*
/// dumbbell chains ([`Layout::ChainPerFlow`]): each flow gets its own
/// 800 kb/s bottleneck — the same 400 kb/s PELS share and 440 kb/s Lemma 6
/// stationary rate as the shared capacity-proportional pipe — but the
/// topology decomposes into N connected components, which is the shape the
/// parallel partitioner exploits. Scaling rows from the two configs are
/// directly comparable per flow.
pub fn chained_proportional_config(n_flows: usize) -> ScenarioConfig {
    assert!(n_flows > 0, "need at least one flow");
    let mut flows = vec![FlowSpec::default(); n_flows];
    stagger_starts(&mut flows);
    ScenarioConfig {
        bottleneck: Rate::from_bps(800_000),
        flows,
        layout: Layout::ChainPerFlow,
        keep_series: false,
        ..Default::default()
    }
}

/// [`wideband_scaled_config`]'s per-flow operating point on independent
/// chains: every flow streams alone over a 3.75 Mb/s bottleneck — the raw
/// per-flow share the 30 Mb/s pipe gives its designed 8 flows — so frame
/// budgets and the target FGS-layer loss match the shared wideband runs
/// while the topology decomposes into `n_flows` components.
pub fn wideband_chained_config(n_flows: usize, target_fgs_loss: f64) -> ScenarioConfig {
    assert!(n_flows > 0, "need at least one flow");
    let mut cfg = wideband_with_bottleneck(1, target_fgs_loss, Rate::from_mbps(3.75));
    cfg.flows = vec![cfg.flows[0].clone(); n_flows];
    stagger_starts(&mut cfg.flows);
    cfg.layout = Layout::ChainPerFlow;
    cfg.keep_series = false;
    cfg
}

/// Spreads flow starts evenly across one frame interval. With hundreds of
/// flows, synchronized t = 0 starts emit every first frame in one burst
/// that overflows the green queue before any control loop has run — a
/// measurement artifact, not congestion, and one no real deployment of
/// independent sources would exhibit.
fn stagger_starts(flows: &mut [FlowSpec]) {
    let n = flows.len();
    for (i, f) in flows.iter_mut().enumerate() {
        f.start_at = SimDuration::from_secs_f64(0.1 * i as f64 / n as f64);
    }
}

/// Convenience: a scenario with `n` identical PELS flows starting at given
/// times (seconds).
pub fn pels_flows(starts_s: &[f64]) -> Vec<FlowSpec> {
    starts_s
        .iter()
        .map(|&s| FlowSpec { start_at: SimDuration::from_secs_f64(s), ..Default::default() })
        .collect()
}

/// Convenience: best-effort comparator flows (uniform loss, no coloring).
pub fn best_effort_flows(starts_s: &[f64]) -> Vec<FlowSpec> {
    starts_s
        .iter()
        .map(|&s| FlowSpec {
            start_at: SimDuration::from_secs_f64(s),
            mode: SourceMode::BestEffort,
            ..Default::default()
        })
        .collect()
}

/// Convenience: a best-effort scenario config (router in uniform-drop mode,
/// sources in best-effort marking mode) matching `cfg`'s other parameters.
pub fn to_best_effort(mut cfg: ScenarioConfig) -> ScenarioConfig {
    cfg.aqm.mode = QueueMode::BestEffortUniform;
    for f in &mut cfg.flows {
        f.mode = SourceMode::BestEffort;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_cfg(n_flows: usize, secs: u64) -> (ScenarioConfig, SimTime) {
        let cfg = ScenarioConfig { flows: pels_flows(&vec![0.0; n_flows]), ..Default::default() };
        (cfg, SimTime::from_secs_f64(secs as f64))
    }

    #[test]
    fn two_flows_share_pels_capacity_fairly() {
        let (cfg, t) = short_cfg(2, 30);
        let mut s = Scenario::build(cfg);
        s.run_until(t);
        // Lemma 6 with C = 2 Mb/s, N = 2, alpha = 20 kb/s, beta = 0.5:
        // r* = 1000 + 40 = 1040 kb/s each.
        for i in 0..2 {
            let r = s.source(i).rate_bps() / 1_000.0;
            assert!((r - 1_040.0).abs() < 120.0, "flow {i} rate {r} kb/s");
        }
        let r0 = s.source(0).rate_bps();
        let r1 = s.source(1).rate_bps();
        assert!((r0 - r1).abs() < 0.1 * r0, "fairness: {r0} vs {r1}");
    }

    #[test]
    fn telemetry_mirrors_bespoke_series_and_counts_hot_paths() {
        let (cfg, t) = short_cfg(2, 10);
        let mut s = Scenario::build(cfg);
        let tel = pels_telemetry::Telemetry::new();
        s.attach_telemetry(&tel);
        s.run_until(t);
        s.flush_telemetry(&tel);

        // The telemetry series are recorded at the same code points as the
        // agents' bespoke series, so they must be identical sample-for-sample.
        let rate = tel.series("sim.flow0.rate_kbps").expect("rate series recorded");
        assert_eq!(rate.points, s.source(0).rate_series.points);
        let gamma = tel.series("sim.flow0.gamma").expect("gamma series recorded");
        assert_eq!(gamma.points, s.source(0).gamma_series.points);
        let p = tel.series("sim.router.p").expect("router feedback recorded");
        assert_eq!(p.points, s.router().feedback_series.points);
        let p_red = tel.series("sim.router.p_red").expect("red loss recorded");
        assert_eq!(p_red.points, s.router().red_loss_series.points);
        let delays = tel.series("sim.flow0.delay.green").expect("delays recorded");
        assert_eq!(delays.points, s.receiver(0).delays.series[0].points);

        // Counters and scraped gauges moved.
        assert!(tel.counter("sim.flow0.feedback_epochs") > 100, "epochs drive MKC");
        assert!(tel.counter("sim.router.feedback_ticks") > 100, "T = 30 ms over 10 s");
        assert!(tel.counter("sim.router.drops.red") > 0, "red sheds under congestion");
        assert!(tel.gauge("sim.events").unwrap_or(0.0) > 1_000.0);
        assert!(tel.gauge("sim.router.wrr_turns").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn disabled_telemetry_changes_nothing() {
        let (cfg, t) = short_cfg(1, 5);
        let mut plain = Scenario::build(cfg.clone());
        plain.run_until(t);
        let mut instrumented = Scenario::build(cfg);
        instrumented.attach_telemetry(&pels_telemetry::Telemetry::disabled());
        instrumented.run_until(t);
        let a = serde_json::to_string(&plain.report()).expect("serialize");
        let b = serde_json::to_string(&instrumented.report()).expect("serialize");
        assert_eq!(a, b, "a disabled handle must not perturb the run");
    }

    #[test]
    fn pels_utility_is_near_one_under_congestion() {
        let (cfg, t) = short_cfg(4, 40);
        let mut s = Scenario::build(cfg);
        s.run_until(t);
        let u = s.total_utility();
        assert!(u.enh_received > 1_000, "enough data received");
        assert!(u.utility() > 0.95, "PELS utility {}", u.utility());
        // There *is* loss (red packets die), yet utility stays high.
        let report = s.report();
        assert!(report.bottleneck_drops_by_class[2] > 0, "red drops expected");
        assert_eq!(report.bottleneck_drops_by_class[0], 0, "green never drops");
    }

    #[test]
    fn best_effort_utility_is_low_under_same_load() {
        let (cfg, t) = short_cfg(4, 40);
        let mut s = Scenario::build(to_best_effort(cfg));
        s.run_until(t);
        let u = s.total_utility();
        assert!(u.enh_received > 1_000);
        assert!(u.utility() < 0.7, "best-effort utility should collapse, got {}", u.utility());
    }

    #[test]
    fn green_and_yellow_delays_are_small_red_delays_large() {
        let (cfg, t) = short_cfg(4, 40);
        let mut s = Scenario::build(cfg);
        s.run_until(t);
        let mut green = 0.0f64;
        let mut yellow = 0.0f64;
        let mut red = 0.0f64;
        for i in 0..4 {
            let d = &s.receiver(i).delays.by_class;
            green = green.max(d[0].mean());
            yellow = yellow.max(d[1].mean());
            red = red.max(d[2].mean());
        }
        assert!(green < 0.05, "green mean delay {green}");
        assert!(yellow < 0.08, "yellow mean delay {yellow}");
        assert!(red > 2.0 * yellow, "red {red} vs yellow {yellow}");
    }

    #[test]
    fn tcp_cross_traffic_gets_its_wrr_share() {
        let (cfg, t) = short_cfg(2, 30);
        let mut s = Scenario::build(cfg);
        s.run_until(t);
        let report = s.report();
        // Internet share is 2 Mb/s; 30 s at 1000 B packets = 7500 packets
        // at full utilization. Expect a decent fraction of that.
        assert!(report.tcp_delivered > 4_000, "tcp delivered {}", report.tcp_delivered);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let (cfg, t) = short_cfg(2, 10);
            let mut s = Scenario::build(cfg);
            s.run_until(t);
            let r = s.report();
            (
                r.flows[0].final_rate_kbps,
                r.flows[0].utility,
                r.bottleneck_tx_by_class,
                r.tcp_delivered,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn report_is_serializable() {
        let (cfg, t) = short_cfg(1, 5);
        let mut s = Scenario::build(cfg);
        s.run_until(t);
        let json = serde_json::to_string(&s.report());
        assert!(json.is_ok());
    }
}
