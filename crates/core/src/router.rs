//! The PELS AQM router (paper Section 4.1, Fig. 4 left) and its best-effort
//! comparator (Section 6.5).
//!
//! Port 0 is the bottleneck. In [`QueueMode::Pels`] its discipline is
//! `WRR{ StrictPriority[green, yellow, red], DropTail }` — weighted
//! round-robin between the PELS queue and the Internet queue, strict
//! priority among the color sub-queues. In [`QueueMode::BestEffortUniform`]
//! the video child is a plain FIFO and the router instead drops arriving
//! *enhancement* packets uniformly at random at the measured overload rate —
//! the paper's "generic best-effort" construction with a protected base
//! layer, which realizes the Bernoulli loss model of Section 3.
//!
//! Either way the router runs the feedback algorithm of Eq. 11 on a `T`
//! timer and stamps the label `(router ID, z, p)` into every passing PELS
//! data packet with the max-loss override rule, so MKC congestion control
//! works identically in both modes.

use crate::color::{Color, INTERNET_CLASS};
use crate::feedback::FeedbackEstimator;
use crate::tcm::{SrTcm, TcmConfig};
use crate::SimError;
use pels_netsim::disc::{Discipline, DropTail, QEntry, QueueLimit, StrictPriority, Wrr};
use pels_netsim::error::invalid_config;
use pels_netsim::faults::{apply_port_fault, FaultAction};
use pels_netsim::packet::{AgentId, Packet, PacketKind};
use pels_netsim::port::Port;
use pels_netsim::router::RouteTable;
use pels_netsim::sim::{Agent, Context};
use pels_netsim::stats::TimeSeries;
use pels_netsim::time::SimDuration;
use pels_telemetry::Telemetry;
use rand::Rng;
use std::any::Any;

/// How the bottleneck treats video traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum QueueMode {
    /// PELS priority queuing (green/yellow/red strict priority).
    Pels,
    /// Uniform random enhancement-layer drops into a FIFO (the comparator).
    BestEffortUniform,
    /// A plain drop-tail FIFO with no protection at all (ablation baseline:
    /// bursty tail drops hit every layer, including green).
    Fifo,
}

/// Configuration of an [`AqmRouter`]'s bottleneck behaviour.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AqmConfig {
    /// Queueing mode of the video share.
    pub mode: QueueMode,
    /// Fraction of the bottleneck allocated to the PELS queue by WRR
    /// (paper Section 6.1: 50%).
    pub pels_share: f64,
    /// Feedback measurement interval `T` (paper: 30 ms).
    pub feedback_interval: SimDuration,
    /// Per-color queue limits in packets (green, yellow, red).
    pub color_limits: [usize; 3],
    /// Internet (FIFO) queue limit in packets.
    pub internet_limit: usize,
    /// Video FIFO limit in best-effort mode, packets.
    pub best_effort_limit: usize,
    /// How many feedback ticks to aggregate into one sample of the measured
    /// red-loss series (smooths the 30 ms windows; ~1 s by default).
    pub red_loss_window_ticks: u32,
    /// EWMA smoothing of the feedback estimator's rate measurements
    /// (see [`crate::feedback::FeedbackEstimator::with_smoothing`]).
    pub feedback_smoothing: f64,
    /// Optional DiffServ-style ingress re-marking: video data packets are
    /// re-colored by a single-rate three-color marker *before* queueing,
    /// overriding the application's colors (the Section 2.1 comparison).
    pub ingress_tcm: Option<TcmConfig>,
}

impl Default for AqmConfig {
    fn default() -> Self {
        AqmConfig {
            mode: QueueMode::Pels,
            pels_share: 0.5,
            feedback_interval: SimDuration::from_millis(30),
            color_limits: [200, 200, 50],
            internet_limit: 50,
            best_effort_limit: 100,
            red_loss_window_ticks: 33,
            feedback_smoothing: 0.15,
            ingress_tcm: None,
        }
    }
}

const TICK_TOKEN: u64 = 0;

/// `sim.router.drops.<color>` — static names so the per-packet drop path
/// never allocates.
fn drop_metric(class: usize) -> &'static str {
    match class {
        0 => "sim.router.drops.green",
        1 => "sim.router.drops.yellow",
        2 => "sim.router.drops.red",
        _ => "sim.router.drops.other",
    }
}

fn wrr_classify(e: &QEntry) -> usize {
    if Color::is_pels_class(e.class) {
        0
    } else {
        1
    }
}

/// The AQM bottleneck router agent.
#[derive(Debug)]
pub struct AqmRouter {
    ports: Vec<Port>,
    routes: RouteTable,
    cfg: AqmConfig,
    estimator: FeedbackEstimator,
    self_id: AgentId,
    /// Packets dropped for lack of a route.
    pub no_route_drops: u64,
    /// Uniform random drops performed in best-effort mode.
    pub random_drops: u64,
    /// Per-class arrivals at the bottleneck over the current red-loss window.
    window_arrivals: [u64; 4],
    /// Per-class drops at the bottleneck over the current red-loss window.
    window_drops: [u64; 4],
    ticks_in_window: u32,
    /// Signed total feedback `p(k)` per tick: `(t, p)`.
    pub feedback_series: TimeSeries,
    /// Enhancement-layer loss per tick: `(t, p_fgs)`.
    pub fgs_loss_series: TimeSeries,
    /// Measured red packet loss (drops/arrivals) per aggregation window.
    pub red_loss_series: TimeSeries,
    /// Measured yellow packet loss per aggregation window.
    pub yellow_loss_series: TimeSeries,
    /// Measured green packet loss per aggregation window.
    pub green_loss_series: TimeSeries,
    /// The ingress marker, when configured.
    tcm: Option<SrTcm>,
    /// Bottleneck video-queue backlog in packets, sampled each feedback
    /// tick: total and per color (PELS mode only; zeros otherwise).
    pub backlog_series: TimeSeries,
    /// Red-band backlog in packets per feedback tick.
    pub red_backlog_series: TimeSeries,
    keep_series: bool,
    telemetry: Telemetry,
}

impl AqmRouter {
    /// Creates the router.
    ///
    /// `bottleneck_port` becomes port 0 and must have been created with a
    /// *placeholder* discipline — it is replaced according to `cfg`.
    /// `reverse_ports` (indices 1..) carry traffic towards sources/other
    /// routers and keep their own disciplines.
    ///
    /// # Panics
    ///
    /// Panics if `pels_share` is outside `(0, 1)` or port indices are wrong.
    pub fn new(
        bottleneck_port: Port,
        reverse_ports: Vec<Port>,
        routes: RouteTable,
        cfg: AqmConfig,
        keep_series: bool,
    ) -> Self {
        Self::try_new(bottleneck_port, reverse_ports, routes, cfg, keep_series)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`AqmRouter::new`]: returns
    /// [`SimError::InvalidConfig`] instead of panicking.
    pub fn try_new(
        mut bottleneck_port: Port,
        reverse_ports: Vec<Port>,
        routes: RouteTable,
        cfg: AqmConfig,
        keep_series: bool,
    ) -> Result<Self, SimError> {
        if !(cfg.pels_share > 0.0 && cfg.pels_share < 1.0) {
            return Err(invalid_config(format!("pels_share must be in (0,1): {}", cfg.pels_share)));
        }
        if bottleneck_port.index != 0 {
            return Err(invalid_config("bottleneck must be port 0"));
        }
        if cfg.feedback_interval.is_zero() {
            return Err(invalid_config("feedback_interval must be positive"));
        }
        bottleneck_port.set_discipline(Self::build_discipline(&cfg));
        let pels_capacity = bottleneck_port.rate.scale(cfg.pels_share);
        let mut ports = vec![bottleneck_port];
        for (i, p) in reverse_ports.into_iter().enumerate() {
            if p.index != i + 1 {
                return Err(invalid_config("reverse port indices must follow the bottleneck"));
            }
            ports.push(p);
        }
        Ok(AqmRouter {
            ports,
            routes,
            cfg,
            estimator: FeedbackEstimator::try_with_smoothing(
                pels_capacity,
                cfg.feedback_interval,
                cfg.feedback_smoothing,
            )?,
            self_id: AgentId(u32::MAX),
            no_route_drops: 0,
            random_drops: 0,
            window_arrivals: [0; 4],
            window_drops: [0; 4],
            ticks_in_window: 0,
            feedback_series: TimeSeries::new("p"),
            fgs_loss_series: TimeSeries::new("p_fgs"),
            red_loss_series: TimeSeries::new("p_red"),
            yellow_loss_series: TimeSeries::new("p_yellow"),
            green_loss_series: TimeSeries::new("p_green"),
            tcm: cfg.ingress_tcm.map(SrTcm::new),
            backlog_series: TimeSeries::new("video_backlog_pkts"),
            red_backlog_series: TimeSeries::new("red_backlog_pkts"),
            keep_series,
            telemetry: Telemetry::disabled(),
        })
    }

    /// The ingress marker's per-color counts, when configured.
    pub fn tcm_marked(&self) -> Option<[u64; 3]> {
        self.tcm.as_ref().map(|t| t.marked)
    }

    fn build_discipline(cfg: &AqmConfig) -> Box<dyn Discipline> {
        let video: Box<dyn Discipline> = match cfg.mode {
            QueueMode::Pels => Box::new(StrictPriority::new(vec![
                Box::new(DropTail::new(QueueLimit::Packets(cfg.color_limits[0]))),
                Box::new(DropTail::new(QueueLimit::Packets(cfg.color_limits[1]))),
                Box::new(DropTail::new(QueueLimit::Packets(cfg.color_limits[2]))),
            ])),
            QueueMode::BestEffortUniform | QueueMode::Fifo => {
                Box::new(DropTail::new(QueueLimit::Packets(cfg.best_effort_limit)))
            }
        };
        let internet = Box::new(DropTail::new(QueueLimit::Packets(cfg.internet_limit)));
        // Express the share as integer WRR weights with 1% resolution.
        let w_video = (cfg.pels_share * 100.0).round().clamp(1.0, 99.0) as u32;
        let w_inet = 100 - w_video;
        Box::new(Wrr::new(vec![(w_video, video), (w_inet, internet)], wrr_classify, 500))
    }

    /// Access a port (0 = bottleneck).
    pub fn port(&self, i: usize) -> &Port {
        &self.ports[i]
    }

    /// The feedback estimator (for inspection).
    pub fn estimator(&self) -> &FeedbackEstimator {
        &self.estimator
    }

    /// The router's configuration.
    pub fn config(&self) -> &AqmConfig {
        &self.cfg
    }

    /// Attaches a telemetry handle. A disabled handle (the default) keeps
    /// every instrumentation point a single-branch no-op.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Returns `true` when the packet was consumed by a uniform random drop.
    fn record_bottleneck(&mut self, pkt: &mut Packet, ctx: &mut Context<'_>) -> bool {
        // Only PELS data packets feed the estimator and carry feedback.
        if pkt.kind != PacketKind::Data || !Color::is_pels_class(pkt.class) {
            return false;
        }
        // DiffServ-style ingress re-marking happens before anything else:
        // the marker sees only sizes and arrival times.
        if let Some(tcm) = &mut self.tcm {
            pkt.class = tcm.mark(pkt.size_bytes, ctx.now).class();
        }
        self.estimator.on_arrival(pkt.size_bytes, pkt.class);
        pkt.stamp_feedback(self.estimator.label(self.self_id));
        self.window_arrivals[pkt.class.min(3) as usize] += 1;
        // Best-effort mode: uniform random early drop of enhancement
        // packets at the measured overload rate; green is protected
        // ("magically", per Section 6.5).
        if self.cfg.mode == QueueMode::BestEffortUniform
            && pkt.class != Color::Green.class()
            && self.estimator.fgs_loss() > 0.0
            && ctx.rng().gen::<f64>() < self.estimator.fgs_loss()
        {
            self.random_drops += 1;
            self.window_drops[pkt.class.min(3) as usize] += 1;
            self.telemetry.counter_add("sim.router.random_drops", 1);
            return true;
        }
        false
    }

    fn push_loss_window(&mut self, now_s: f64) {
        let names = ["sim.router.p_green", "sim.router.p_yellow", "sim.router.p_red"];
        let series =
            [&mut self.green_loss_series, &mut self.yellow_loss_series, &mut self.red_loss_series];
        for (class, s) in series.into_iter().enumerate() {
            let a = self.window_arrivals[class];
            if a > 0 {
                let loss = self.window_drops[class] as f64 / a as f64;
                s.push(now_s, loss);
                self.telemetry.sample(names[class], now_s, loss);
            }
        }
        self.window_arrivals = [0; 4];
        self.window_drops = [0; 4];
    }
}

impl Agent for AqmRouter {
    fn start(&mut self, ctx: &mut Context<'_>) {
        self.self_id = ctx.self_id;
        ctx.schedule_timer(self.cfg.feedback_interval, TICK_TOKEN);
    }

    fn on_packet(&mut self, mut packet: Packet, ctx: &mut Context<'_>) {
        let Some(out) = self.routes.lookup(packet.dst) else {
            self.no_route_drops += 1;
            return;
        };
        if out == 0 && self.record_bottleneck(&mut packet, ctx) {
            return; // consumed by a uniform random drop
        }
        let is_bottleneck_video = out == 0 && Color::is_pels_class(packet.class);
        let dropped = self.ports[out].send(packet, ctx);
        if is_bottleneck_video {
            // Tail drops (queue overflow) per class.
            for d in dropped {
                let class = d.class.min(3) as usize;
                self.window_drops[class] += 1;
                self.telemetry.counter_add(drop_metric(class), 1);
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        debug_assert_eq!(token, TICK_TOKEN);
        let fb = self.estimator.tick(self.self_id);
        let tel_on = self.telemetry.is_enabled();
        if self.keep_series || tel_on {
            let t = ctx.now.as_secs_f64();
            // Sample the video queue's backlog (and its red band when the
            // discipline is the PELS composite).
            let disc = self.ports[0].discipline();
            let wrr = disc.as_any().downcast_ref::<Wrr>();
            let backlog = wrr.map(|w| w.child_len_packets(0) as f64);
            let red_backlog = wrr
                .and_then(|w| w.child(0).as_any().downcast_ref::<StrictPriority>())
                .map(|sp| sp.band_len_packets(2) as f64);
            if self.keep_series {
                self.feedback_series.push(t, fb.loss);
                self.fgs_loss_series.push(t, fb.fgs_loss);
                if let Some(b) = backlog {
                    self.backlog_series.push(t, b);
                }
                if let Some(rb) = red_backlog {
                    self.red_backlog_series.push(t, rb);
                }
            }
            if tel_on {
                self.telemetry.counter_add("sim.router.feedback_ticks", 1);
                self.telemetry.sample("sim.router.p", t, fb.loss);
                self.telemetry.sample("sim.router.p_fgs", t, fb.fgs_loss);
                if let Some(b) = backlog {
                    self.telemetry.sample("sim.router.backlog_pkts", t, b);
                }
                if let Some(rb) = red_backlog {
                    self.telemetry.sample("sim.router.red_backlog_pkts", t, rb);
                }
                if let Some(w) = wrr {
                    self.telemetry.gauge_set("sim.router.wrr_turns", w.turns as f64);
                }
            }
        }
        self.ticks_in_window += 1;
        if self.ticks_in_window >= self.cfg.red_loss_window_ticks {
            self.ticks_in_window = 0;
            let now_s = ctx.now.as_secs_f64();
            self.push_loss_window(now_s);
        }
        ctx.schedule_timer(self.cfg.feedback_interval, TICK_TOKEN);
    }

    fn on_tx_complete(&mut self, port: usize, ctx: &mut Context<'_>) {
        self.ports[port].on_tx_complete(ctx);
    }

    fn on_fault(&mut self, action: &FaultAction, ctx: &mut Context<'_>) {
        apply_port_fault(&mut self.ports, action, ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Marker: classes used by the Internet queue.
pub const fn internet_class() -> u8 {
    INTERNET_CLASS
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_netsim::packet::{FlowId, FrameTag};
    use pels_netsim::sim::Simulator;
    use pels_netsim::time::{Rate, SimTime};

    struct Sink {
        got: Vec<Packet>,
    }
    impl Agent for Sink {
        fn on_packet(&mut self, p: Packet, _ctx: &mut Context<'_>) {
            self.got.push(p);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Injects a fixed-rate stream of colored packets into the router.
    struct ColorBlaster {
        router: AgentId,
        dst: AgentId,
        gap: SimDuration,
        pattern: Vec<u8>, // classes, cycled
        sent: u64,
        limit: u64,
    }
    impl Agent for ColorBlaster {
        fn start(&mut self, ctx: &mut Context<'_>) {
            ctx.schedule_timer(self.gap, 0);
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
            if self.sent >= self.limit {
                return;
            }
            let class = self.pattern[(self.sent % self.pattern.len() as u64) as usize];
            let mut pkt = Packet::data(FlowId(1), ctx.self_id, self.dst, 500)
                .with_class(class)
                .with_seq(self.sent)
                .with_id(ctx.alloc_packet_id());
            pkt.sent_at = ctx.now;
            pkt.frame = Some(FrameTag { frame: 0, index: 0, total: 1, base: 0 });
            ctx.deliver(self.router, SimDuration::from_micros(10), pkt);
            self.sent += 1;
            ctx.schedule_timer(self.gap, 0);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build(mode: QueueMode, gap_us: u64, pattern: Vec<u8>) -> (Simulator, AgentId, AgentId) {
        let mut sim = Simulator::new(3);
        let router_id = AgentId(0);
        let sink_id = AgentId(1);
        let blaster_id = AgentId(2);
        let inet_blaster_id = AgentId(3);

        let bottleneck = Port::new(
            0,
            sink_id,
            Rate::from_mbps(4.0),
            SimDuration::from_millis(5),
            Box::new(DropTail::new(QueueLimit::Packets(1))), // placeholder
        );
        let mut routes = RouteTable::new();
        routes.add(sink_id, 0);
        let cfg = AqmConfig { mode, ..Default::default() };
        sim.add_agent(Box::new(AqmRouter::new(bottleneck, vec![], routes, cfg, true)));
        sim.add_agent(Box::new(Sink { got: vec![] }));
        sim.add_agent(Box::new(ColorBlaster {
            router: router_id,
            dst: sink_id,
            gap: SimDuration::from_micros(gap_us),
            pattern,
            sent: 0,
            limit: u64::MAX,
        }));
        // Saturate the Internet share so WRR actually caps the video child
        // at its 50% (the scheduler is work-conserving).
        sim.add_agent(Box::new(ColorBlaster {
            router: router_id,
            dst: sink_id,
            gap: SimDuration::from_micros(1_000),
            pattern: vec![3],
            sent: 0,
            limit: u64::MAX,
        }));
        let _ = (blaster_id, inet_blaster_id);
        (sim, router_id, sink_id)
    }

    #[test]
    fn stamps_feedback_with_increasing_epochs() {
        // 500 B every 1 ms = 4 Mb/s total, PELS share 2 Mb/s -> overload.
        // (Run 2 s: the yellow queue backlog delays deliveries by ~0.4 s,
        // so the last *delivered* packet carries an epoch from ~1.6 s.)
        let (mut sim, _router, sink) = build(QueueMode::Pels, 1_000, vec![1]);
        sim.run_until(SimTime::from_secs_f64(2.0));
        let got: Vec<&Packet> =
            sim.agent::<Sink>(sink).got.iter().filter(|p| Color::is_pels_class(p.class)).collect();
        assert!(!got.is_empty());
        let epochs: Vec<u64> = got.iter().filter_map(|p| p.feedback.map(|f| f.epoch)).collect();
        assert_eq!(epochs.len(), got.len(), "every video packet is stamped");
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]), "epochs non-decreasing");
        assert!(*epochs.last().unwrap() > 20, "epochs advance with T=30 ms");
        // Overloaded 2:1 -> p ~ 0.5 once measured.
        let last_loss = got.last().unwrap().feedback.unwrap().loss;
        assert!((last_loss - 0.5).abs() < 0.05, "loss {last_loss}");
    }

    #[test]
    fn pels_mode_starves_red_first() {
        // Overload with mixed yellow/red: red should bear ~all drops.
        let (mut sim, router, sink) = build(QueueMode::Pels, 1_000, vec![1, 2]);
        sim.run_until(SimTime::from_secs_f64(5.0));
        let r = sim.agent::<AqmRouter>(router);
        let red_drops = r.port(0).stats.drops_by_class[2];
        let yellow_drops = r.port(0).stats.drops_by_class[1];
        assert!(red_drops > 100, "red drops {red_drops}");
        assert_eq!(yellow_drops, 0, "yellow must be fully protected here");
        // Delivered yellow packets dominate delivered red.
        let got = &sim.agent::<Sink>(sink).got;
        let yellow = got.iter().filter(|p| p.class == 1).count();
        let red = got.iter().filter(|p| p.class == 2).count();
        assert!(yellow > 2 * red, "yellow {yellow} red {red}");
    }

    #[test]
    fn best_effort_mode_drops_uniformly_but_protects_green() {
        let (mut sim, router, sink) = build(QueueMode::BestEffortUniform, 1_000, vec![0, 1, 1, 1]);
        sim.run_until(SimTime::from_secs_f64(5.0));
        let r = sim.agent::<AqmRouter>(router);
        assert!(r.random_drops > 100, "random drops {}", r.random_drops);
        let got: Vec<&Packet> =
            sim.agent::<Sink>(sink).got.iter().filter(|p| Color::is_pels_class(p.class)).collect();
        let green = got.iter().filter(|p| p.class == 0).count() as f64;
        // 1-in-4 video packets green at 4 Mb/s offered = 1 Mb/s green, all
        // delivered; yellow is thinned, so the delivered green share
        // exceeds the offered 1/4.
        assert!(green > 0.0);
        let frac = green / got.len() as f64;
        assert!(frac > 0.25, "green fraction {frac}");
    }

    #[test]
    fn red_loss_series_is_recorded() {
        let (mut sim, router, _sink) = build(QueueMode::Pels, 1_000, vec![1, 2]);
        sim.run_until(SimTime::from_secs_f64(5.0));
        let r = sim.agent::<AqmRouter>(router);
        assert!(r.red_loss_series.len() >= 3);
        let (_, last) = *r.red_loss_series.points.last().unwrap();
        assert!(last > 0.5, "sustained red loss expected, got {last}");
        assert!(r.feedback_series.len() > 100);
    }
}
