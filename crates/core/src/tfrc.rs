//! A TFRC-style equation-based rate controller.
//!
//! The paper (Section 5) discusses TFRC [9] as the standard smooth
//! congestion control for multimedia, but notes that such schemes "often do
//! not have stationary points in the operating range of typical
//! applications and continuously oscillate" [34]. This simplified
//! implementation — the TCP throughput equation driven by an EWMA
//! loss-event estimate — lets the harness measure that claim against MKC
//! under identical PELS queues.
//!
//! `r = s / (R·sqrt(2p/3) + t_RTO·(3·sqrt(3p/8))·p·(1 + 32p²))`
//!
//! with `s` the packet size, `R` the RTT estimate and `t_RTO = 4R`.

use pels_netsim::time::Rate;
use serde::{Deserialize, Serialize};

/// Configuration of [`TfrcController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TfrcConfig {
    /// Packet size `s`, bytes.
    pub packet_bytes: u32,
    /// Round-trip time estimate, seconds (static in this model; the
    /// simulator's dumbbell RTT is ~15 ms plus queueing).
    pub rtt_s: f64,
    /// EWMA weight of new loss samples in the loss-event estimate.
    pub loss_smoothing: f64,
    /// Initial rate.
    pub initial: Rate,
    /// Rate floor.
    pub min_rate: Rate,
    /// Rate ceiling.
    pub max_rate: Rate,
}

impl Default for TfrcConfig {
    fn default() -> Self {
        TfrcConfig {
            packet_bytes: 500,
            rtt_s: 0.03,
            loss_smoothing: 0.1,
            initial: Rate::from_kbps(128.0),
            min_rate: Rate::from_kbps(64.0),
            max_rate: Rate::from_mbps(10.0),
        }
    }
}

/// The TFRC-like controller.
///
/// # Examples
///
/// ```
/// use pels_core::tfrc::{TfrcConfig, TfrcController};
///
/// let mut t = TfrcController::new(TfrcConfig::default());
/// for _ in 0..200 { t.update(0.02); }
/// // The TCP equation at p ~ 2%, RTT 30 ms, 500 B packets: ~ 750 kb/s.
/// let r = t.rate_bps();
/// assert!((500_000.0..1_100_000.0).contains(&r), "rate {r}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TfrcController {
    cfg: TfrcConfig,
    rate_bps: f64,
    loss_avg: f64,
    updates: u64,
}

impl TfrcController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of range (non-positive packet size or
    /// RTT, smoothing outside `(0, 1]`, inconsistent rate bounds).
    pub fn new(cfg: TfrcConfig) -> Self {
        assert!(cfg.packet_bytes > 0, "packet size must be positive");
        assert!(cfg.rtt_s > 0.0 && cfg.rtt_s.is_finite(), "rtt must be positive");
        assert!(
            cfg.loss_smoothing > 0.0 && cfg.loss_smoothing <= 1.0,
            "smoothing must be in (0,1]"
        );
        assert!(cfg.min_rate <= cfg.max_rate, "min_rate must not exceed max_rate");
        let rate = (cfg.initial.as_bps() as f64)
            .clamp(cfg.min_rate.as_bps() as f64, cfg.max_rate.as_bps() as f64);
        TfrcController { cfg, rate_bps: rate, loss_avg: 0.0, updates: 0 }
    }

    /// Current rate, bits/s.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// The smoothed loss-event estimate.
    pub fn loss_estimate(&self) -> f64 {
        self.loss_avg
    }

    /// The TCP throughput equation in bits/s at loss-event rate `p`.
    fn equation(&self, p: f64) -> f64 {
        let s = self.cfg.packet_bytes as f64 * 8.0;
        let r = self.cfg.rtt_s;
        let t_rto = 4.0 * r;
        let denom = r * (2.0 * p / 3.0).sqrt()
            + t_rto * 3.0 * (3.0 * p / 8.0).sqrt() * p * (1.0 + 32.0 * p * p);
        s / denom
    }

    /// Applies one control step with (signed) feedback `p`. Negative
    /// feedback counts as a loss-free interval, which decays the loss
    /// estimate; the rate then grows at most doubling per RTT-worth of
    /// updates, TFRC-style.
    pub fn update(&mut self, p: f64) -> f64 {
        let sample = if p.is_finite() { p.max(0.0) } else { 0.0 };
        let a = self.cfg.loss_smoothing;
        self.loss_avg = (1.0 - a) * self.loss_avg + a * sample;
        let target = if self.loss_avg > 1e-6 {
            self.equation(self.loss_avg)
        } else {
            self.rate_bps * 2.0 // no loss history: multiplicative probe
        };
        // Rate moves toward the equation value, capped at doubling.
        let next = target.min(self.rate_bps * 2.0).max(self.rate_bps * 0.2);
        self.rate_bps =
            next.clamp(self.cfg.min_rate.as_bps() as f64, self.cfg.max_rate.as_bps() as f64);
        self.updates += 1;
        self.rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_scales_inverse_sqrt_p() {
        let t = TfrcController::new(TfrcConfig::default());
        let r1 = t.equation(0.01);
        let r4 = t.equation(0.04);
        // rate ~ 1/sqrt(p) plus an RTO term that grows with p: the ratio
        // for 4x loss sits between the ideal 2x and ~3x.
        assert!((2.0..3.0).contains(&(r1 / r4)), "ratio {}", r1 / r4);
    }

    #[test]
    fn no_loss_doubles_until_cap() {
        let mut t = TfrcController::new(TfrcConfig::default());
        for _ in 0..20 {
            t.update(0.0);
        }
        assert_eq!(t.rate_bps(), 10_000_000.0);
    }

    #[test]
    fn loss_brings_rate_to_equation_value() {
        let mut t = TfrcController::new(TfrcConfig::default());
        for _ in 0..300 {
            t.update(0.05);
        }
        let expect = t.equation(0.05);
        assert!((t.rate_bps() - expect).abs() < 0.05 * expect, "{} vs {expect}", t.rate_bps());
    }

    #[test]
    fn loss_spike_is_smoothed_into_the_estimate() {
        // A single loss spike moves the loss-event estimate by only the
        // EWMA weight, and the per-step rate change is bounded (no halving
        // cascade as in AIMD).
        let mut t = TfrcController::new(TfrcConfig::default());
        for _ in 0..50 {
            t.update(0.01);
        }
        let before = t.rate_bps();
        t.update(0.5);
        assert!(t.loss_estimate() < 0.07, "estimate {}", t.loss_estimate());
        assert!(t.rate_bps() >= 0.2 * before - 1.0, "bounded step");
        // Recovery: the estimate decays back once losses stop.
        for _ in 0..100 {
            t.update(0.01);
        }
        assert!((t.loss_estimate() - 0.01).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "rtt must be positive")]
    fn rejects_bad_rtt() {
        let _ = TfrcController::new(TfrcConfig { rtt_s: 0.0, ..Default::default() });
    }
}
