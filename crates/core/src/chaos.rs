//! Chaos harness: scripted fault scenarios on the Fig. 6 dumbbell.
//!
//! Each case builds the standard two-flow PELS scenario, installs one
//! [`FaultSchedule`] (link failure, bandwidth degradation, control-packet
//! mangling, total feedback loss, router queue flush), runs to completion,
//! and checks the protocol's recovery invariants:
//!
//! * **Rate recovery** — every flow's MKC rate ends within
//!   [`RATE_TOLERANCE`] of the Lemma 6 stationary rate
//!   `r* = C/N + α/β`, and reaches that band within
//!   [`RECOVERY_EPOCH_BUDGET`] control steps of the fault clearing.
//! * **Green delivery** — the base layer survives the fault: at least
//!   [`GREEN_DELIVERY_FLOOR`] of all green packets sent are delivered.
//!
//! Runs are pure functions of the seed, so a report is reproducible
//! bit-for-bit; the `chaos` binary (and `pels chaos`) verifies this by
//! running the matrix twice and comparing serialized reports.

use crate::scenario::{pels_flows, Scenario, ScenarioConfig};
use crate::SimError;
use pels_netsim::error::invalid_config;
use pels_netsim::faults::{ControlFaultPolicy, FaultSchedule};
use pels_netsim::packet::AgentId;
use pels_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Relative tolerance around the Lemma 6 stationary rate.
pub const RATE_TOLERANCE: f64 = 0.10;
/// Minimum fraction of sent green (base-layer) packets that must arrive.
pub const GREEN_DELIVERY_FLOOR: f64 = 0.99;
/// Control steps allowed between the fault clearing and the rate
/// re-entering the tolerance band.
pub const RECOVERY_EPOCH_BUDGET: u64 = 20;

/// The machine-checked recovery bar a chaos case must clear, shared by
/// the simulator matrix here and the wire matrix in `pels_wire::chaos`
/// (which runs a tighter [`rate_tolerance`](Self::rate_tolerance)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryInvariants {
    /// The Lemma 6 stationary rate `r* = C/N + α/β`, bits/s.
    pub r_star_bps: f64,
    /// Relative half-width of the acceptance band around `r*`.
    pub rate_tolerance: f64,
    /// Minimum fraction of sent green (base-layer) packets delivered.
    pub green_floor: f64,
}

impl RecoveryInvariants {
    /// Whether `rate_bps` is inside the acceptance band around `r*`.
    pub fn rate_ok(&self, rate_bps: f64) -> bool {
        (rate_bps - self.r_star_bps).abs() <= self.rate_tolerance * self.r_star_bps
    }

    /// Whether a green delivery ratio clears the base-layer floor.
    pub fn green_ok(&self, delivery: f64) -> bool {
        delivery >= self.green_floor
    }
}

/// One scripted fault case of the *wire* recovery matrix
/// (`pels chaos --wire`, implemented in `pels_wire::chaos`). The type
/// lives here so reports and tooling share one vocabulary with the
/// simulator's [`ChaosCase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireChaosCase {
    /// The receiver's feedback path (ACK/NACK/HELLO) blacks out.
    FeedbackBlackout,
    /// A heavy loss burst on the source→router data path.
    DataLossBurst,
    /// Corruption and truncation storm on the router's forwarding path.
    CorruptionStorm,
    /// The receiver dies mid-stream and a replacement joins.
    ReceiverChurn,
    /// Duplicate/reorder flood on both data and feedback paths.
    DupReorderFlood,
    /// Large one-way delay on the feedback path only.
    AsymmetricDelay,
}

impl WireChaosCase {
    /// All cases, in matrix order.
    pub const ALL: [WireChaosCase; 6] = [
        WireChaosCase::FeedbackBlackout,
        WireChaosCase::DataLossBurst,
        WireChaosCase::CorruptionStorm,
        WireChaosCase::ReceiverChurn,
        WireChaosCase::DupReorderFlood,
        WireChaosCase::AsymmetricDelay,
    ];

    /// Stable human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            WireChaosCase::FeedbackBlackout => "feedback-blackout",
            WireChaosCase::DataLossBurst => "data-loss-burst",
            WireChaosCase::CorruptionStorm => "corruption-storm",
            WireChaosCase::ReceiverChurn => "receiver-churn",
            WireChaosCase::DupReorderFlood => "dup-reorder-flood",
            WireChaosCase::AsymmetricDelay => "asymmetric-delay",
        }
    }
}

/// One scripted fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosCase {
    /// No faults: sanity-checks the invariants themselves.
    Baseline,
    /// The bottleneck link goes fully down during the fault window.
    LinkOutage,
    /// The bottleneck serves at 35% of nominal rate during the window.
    DegradedLink,
    /// 30% of control packets dropped, 20% duplicated, 20% reordered.
    FeedbackMangling,
    /// Every ACK/NACK is lost: sources must detect staleness and back off.
    StaleFeedback,
    /// The bottleneck router's queues are flushed (simulated reboot).
    RouterFlush,
}

impl ChaosCase {
    /// All cases, in matrix order.
    pub const ALL: [ChaosCase; 6] = [
        ChaosCase::Baseline,
        ChaosCase::LinkOutage,
        ChaosCase::DegradedLink,
        ChaosCase::FeedbackMangling,
        ChaosCase::StaleFeedback,
        ChaosCase::RouterFlush,
    ];

    /// Stable human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosCase::Baseline => "baseline",
            ChaosCase::LinkOutage => "link-outage",
            ChaosCase::DegradedLink => "degraded-link",
            ChaosCase::FeedbackMangling => "feedback-mangling",
            ChaosCase::StaleFeedback => "stale-feedback",
            ChaosCase::RouterFlush => "router-flush",
        }
    }
}

/// Parameters shared by every case of a chaos run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Simulator seed (the whole report is a pure function of it).
    pub seed: u64,
    /// Number of PELS video flows.
    pub flows: usize,
    /// Total simulated time per case.
    pub duration: SimDuration,
    /// When the fault begins.
    pub fault_from: SimDuration,
    /// When the fault clears (instantaneous faults fire at `fault_from`).
    pub fault_to: SimDuration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            flows: 2,
            duration: SimDuration::from_secs_f64(30.0),
            fault_from: SimDuration::from_secs_f64(10.0),
            fault_to: SimDuration::from_secs_f64(11.5),
        }
    }
}

impl ChaosConfig {
    fn validate(&self) -> Result<(), SimError> {
        if self.flows == 0 {
            return Err(invalid_config("chaos needs at least one flow"));
        }
        if self.fault_from >= self.fault_to {
            return Err(invalid_config("fault window must end after it starts"));
        }
        if self.fault_to >= self.duration {
            return Err(invalid_config(
                "the run must extend past the fault window to measure recovery",
            ));
        }
        Ok(())
    }
}

/// Per-case outcome and invariant verdicts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseReport {
    /// Case name (see [`ChaosCase::name`]).
    pub name: String,
    /// Lemma 6 stationary rate for this topology, kb/s.
    pub r_star_kbps: f64,
    /// Final MKC rate per flow, kb/s.
    pub final_rate_kbps: Vec<f64>,
    /// Every flow ended within [`RATE_TOLERANCE`] of `r*`.
    pub rate_ok: bool,
    /// Green packets sent across all flows.
    pub green_sent: u64,
    /// Green packets delivered across all flows.
    pub green_received: u64,
    /// `green_received / green_sent`.
    pub green_delivery: f64,
    /// `green_delivery >= GREEN_DELIVERY_FLOOR`.
    pub green_ok: bool,
    /// Control steps after the fault cleared until flow 0 re-entered the
    /// rate band (`None`: never did).
    pub recovery_epochs: Option<u64>,
    /// `recovery_epochs` exists and is within [`RECOVERY_EPOCH_BUDGET`].
    pub recovery_ok: bool,
    /// Stale-feedback decays applied across all sources.
    pub stale_decays: u64,
    /// Frames that shed red or all enhancement across all sources.
    pub shed_frames: u64,
    /// Fault events dispatched by the simulator.
    pub faults_applied: u64,
    /// Control packets dropped by the fault policy.
    pub control_dropped: u64,
    /// Control packets duplicated by the fault policy.
    pub control_duplicated: u64,
    /// Control packets reordered by the fault policy.
    pub control_reordered: u64,
    /// All invariants held.
    pub ok: bool,
}

/// The whole matrix outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Seed the matrix ran under.
    pub seed: u64,
    /// Simulated seconds per case.
    pub duration_s: f64,
    /// Per-case reports, in [`ChaosCase::ALL`] order.
    pub cases: Vec<CaseReport>,
    /// Every case's invariants held.
    pub all_ok: bool,
}

fn schedule_for(case: ChaosCase, cfg: &ChaosConfig) -> FaultSchedule {
    let r1 = AgentId(0); // scenario layout: agent 0 is the AQM bottleneck
    let from = SimTime::from_secs_f64(cfg.fault_from.as_secs_f64());
    let to = SimTime::from_secs_f64(cfg.fault_to.as_secs_f64());
    let mut s = FaultSchedule::new();
    match case {
        ChaosCase::Baseline => {}
        ChaosCase::LinkOutage => {
            s.link_outage(r1, 0, from, to);
        }
        ChaosCase::DegradedLink => {
            s.degraded_window(r1, 0, 0.35, from, to);
        }
        ChaosCase::FeedbackMangling => {
            let policy = ControlFaultPolicy {
                drop: 0.3,
                duplicate: 0.2,
                reorder: 0.2,
                reorder_delay: SimDuration::from_millis(20),
            };
            s.control_fault_window(policy, from, to);
        }
        ChaosCase::StaleFeedback => {
            s.control_fault_window(ControlFaultPolicy::drop_fraction(1.0), from, to);
        }
        ChaosCase::RouterFlush => {
            s.flush_at(r1, from);
        }
    }
    s
}

/// Runs one fault case and evaluates its invariants.
pub fn run_case(case: ChaosCase, cfg: &ChaosConfig) -> Result<CaseReport, SimError> {
    run_case_instrumented(case, cfg, &pels_telemetry::Telemetry::disabled())
}

/// [`run_case`] with a telemetry handle attached to every agent for the
/// case's run; one cumulative snapshot is flushed when the case ends.
pub fn run_case_instrumented(
    case: ChaosCase,
    cfg: &ChaosConfig,
    telemetry: &pels_telemetry::Telemetry,
) -> Result<CaseReport, SimError> {
    cfg.validate()?;
    let sc = ScenarioConfig {
        seed: cfg.seed,
        flows: pels_flows(&vec![0.0; cfg.flows]),
        keep_series: true,
        ..Default::default()
    };
    let mut s = Scenario::try_build(sc)?;
    s.attach_telemetry(telemetry);
    s.install_faults(&schedule_for(case, cfg));
    s.run_until(SimTime::from_secs_f64(cfg.duration.as_secs_f64()));
    s.flush_telemetry(telemetry);

    let n = cfg.flows;
    let pels_capacity = s.config().bottleneck.scale(s.config().aqm.pels_share);
    let r_star = s
        .source(0)
        .mkc()
        .ok_or_else(|| invalid_config("chaos flows must run MKC"))?
        .stationary_rate_bps(pels_capacity, n);
    let invariants = RecoveryInvariants {
        r_star_bps: r_star,
        rate_tolerance: RATE_TOLERANCE,
        green_floor: GREEN_DELIVERY_FLOOR,
    };
    let band = |rate_bps: f64| invariants.rate_ok(rate_bps);

    let final_rate_kbps: Vec<f64> = (0..n).map(|i| s.source(i).rate_bps() / 1_000.0).collect();
    let rate_ok = (0..n).map(|i| s.source(i).rate_bps()).all(band);

    let mut green_sent = 0;
    let mut green_received = 0;
    let mut stale_decays = 0;
    let mut shed_frames = 0;
    for i in 0..n {
        let src = s.source(i);
        green_sent += src.sent_by_color[0];
        shed_frames += src.shed_red_frames + src.shed_yellow_frames;
        stale_decays += src.mkc().map_or(0, |m| m.stale_decays());
        green_received += s.receiver(i).received_by_color[0];
    }
    let green_delivery =
        if green_sent > 0 { green_received as f64 / green_sent as f64 } else { 0.0 };
    let green_ok = green_sent > 0 && invariants.green_ok(green_delivery);

    // Control steps of flow 0 after the fault cleared, until back in band.
    let clear_s = cfg.fault_to.as_secs_f64();
    let recovery_epochs = s
        .source(0)
        .rate_series
        .points
        .iter()
        .filter(|(t, _)| *t >= clear_s)
        .position(|(_, kbps)| band(kbps * 1_000.0))
        .map(|i| i as u64);
    let recovery_ok = recovery_epochs.is_some_and(|e| e <= RECOVERY_EPOCH_BUDGET);

    let fs = s.sim.fault_stats();
    let ok = rate_ok && green_ok && recovery_ok;
    Ok(CaseReport {
        name: case.name().to_string(),
        r_star_kbps: r_star / 1_000.0,
        final_rate_kbps,
        rate_ok,
        green_sent,
        green_received,
        green_delivery,
        green_ok,
        recovery_epochs,
        recovery_ok,
        stale_decays,
        shed_frames,
        faults_applied: fs.faults_applied,
        control_dropped: fs.control_dropped,
        control_duplicated: fs.control_duplicated,
        control_reordered: fs.control_reordered,
        ok,
    })
}

/// Runs every [`ChaosCase`] and aggregates the verdicts.
pub fn run_matrix(cfg: &ChaosConfig) -> Result<ChaosReport, SimError> {
    run_matrix_instrumented(cfg, &pels_telemetry::Telemetry::disabled())
}

/// [`run_matrix`] with telemetry: all cases share the registry, so each
/// flushed snapshot line is cumulative across the cases run so far.
pub fn run_matrix_instrumented(
    cfg: &ChaosConfig,
    telemetry: &pels_telemetry::Telemetry,
) -> Result<ChaosReport, SimError> {
    cfg.validate()?;
    let mut cases = Vec::with_capacity(ChaosCase::ALL.len());
    for case in ChaosCase::ALL {
        cases.push(run_case_instrumented(case, cfg, telemetry)?);
    }
    let all_ok = cases.iter().all(|c| c.ok);
    Ok(ChaosReport { seed: cfg.seed, duration_s: cfg.duration.as_secs_f64(), cases, all_ok })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_cfg() -> ChaosConfig {
        ChaosConfig {
            seed: 3,
            duration: SimDuration::from_secs_f64(14.0),
            fault_from: SimDuration::from_secs_f64(6.0),
            fault_to: SimDuration::from_secs_f64(7.5),
            ..Default::default()
        }
    }

    #[test]
    fn baseline_invariants_hold() {
        let r = run_case(ChaosCase::Baseline, &short_cfg()).unwrap();
        assert!(r.ok, "{r:?}");
        assert_eq!(r.faults_applied, 0);
        assert_eq!(r.stale_decays, 0);
    }

    #[test]
    fn link_outage_recovers_and_keeps_green() {
        let r = run_case(ChaosCase::LinkOutage, &short_cfg()).unwrap();
        assert!(r.rate_ok, "{r:?}");
        assert!(r.green_ok, "green delivery {}", r.green_delivery);
        assert!(r.recovery_ok, "recovery epochs {:?}", r.recovery_epochs);
        assert!(r.stale_decays > 0, "outage starves feedback");
    }

    #[test]
    fn stale_feedback_decays_then_recovers() {
        let r = run_case(ChaosCase::StaleFeedback, &short_cfg()).unwrap();
        assert!(r.ok, "{r:?}");
        assert!(r.stale_decays > 0);
        assert!(r.control_dropped > 0);
    }

    #[test]
    fn case_reports_are_deterministic() {
        let cfg = short_cfg();
        let a = serde_json::to_string(&run_case(ChaosCase::FeedbackMangling, &cfg).unwrap());
        let b = serde_json::to_string(&run_case(ChaosCase::FeedbackMangling, &cfg).unwrap());
        assert_eq!(a.unwrap(), b.unwrap());
    }

    #[test]
    fn rejects_degenerate_windows() {
        let mut cfg = short_cfg();
        cfg.fault_to = cfg.fault_from;
        assert!(run_case(ChaosCase::Baseline, &cfg).is_err());
        let mut cfg = short_cfg();
        cfg.fault_to = cfg.duration + SimDuration::from_secs_f64(1.0);
        assert!(run_matrix(&cfg).is_err());
        let mut cfg = short_cfg();
        cfg.flows = 0;
        assert!(run_matrix(&cfg).is_err());
    }
}
