//! The PELS receiver agent.
//!
//! The receiver records every arriving video packet into per-frame
//! reception maps (consumed after the run by the FGS prefix decoder),
//! measures one-way delays per color (the paper's Fig. 8–9), and echoes the
//! router feedback back to the source in a small ACK for every data packet
//! (Section 5.2).

use crate::source::{PROBE_FRAME, RETX_MARKER};
use pels_fgs::decoder::{DecodedFrame, FrameReception, UtilityStats};
use pels_netsim::packet::{FlowId, FrameTag, Packet, PacketKind};
use pels_netsim::port::Port;
use pels_netsim::sim::{Agent, Context};
use pels_netsim::stats::DelayRecorder;
use pels_netsim::time::SimDuration;
use pels_telemetry::Telemetry;
use std::any::Any;
use std::collections::BTreeMap;

/// Size of the acknowledgment packets, bytes.
pub const ACK_BYTES: u32 = 40;

/// Receiver-side NACK configuration for the ARQ comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NackConfig {
    /// How many NACK rounds each frame may trigger. The same value caps how
    /// often any single packet may be requested, so a duplicate or late
    /// retransmission can never restart a frame's rounds.
    pub max_rounds: u8,
    /// Cap on NACKs per frame per round.
    pub max_per_round: usize,
    /// Frames to wait before the first retry round; the wait doubles every
    /// round (exponential backoff).
    pub backoff_base: u64,
    /// Lifetime cap on NACKs this receiver may send. Requests beyond the
    /// budget are counted in [`PelsReceiver::nacks_suppressed`] instead of
    /// transmitted, bounding reverse-path load under pathological loss.
    pub retry_budget: u64,
}

impl Default for NackConfig {
    fn default() -> Self {
        NackConfig { max_rounds: 2, max_per_round: 64, backoff_base: 1, retry_budget: 65_536 }
    }
}

/// Per-frame retransmission-request bookkeeping.
#[derive(Debug, Clone)]
struct FrameNackState {
    /// Rounds already issued for this frame.
    rounds: u8,
    /// The frame horizon at which the next round may fire (backoff gate).
    next_round_frame: u64,
    /// Per-packet request counts, indexed by packet index within the frame.
    per_packet: Vec<u8>,
}

/// The NACK scheduling state machine, factored out of [`PelsReceiver`] so
/// the live wire receiver (`pels-wire`) can run the identical ARQ policy
/// over real sockets.
///
/// The tracker decides *which* packets to request; actually building and
/// transmitting the NACK (a simulator [`Packet`] or a wire datagram) is the
/// caller's job — one request per returned [`FrameTag`].
///
/// Round pacing is exponential: round `r` of frame `g` fires only once the
/// (monotone) frame horizon reaches the backoff gate set when round `r−1`
/// fired (`backoff_base · 2^r` frames past that horizon). Every request is
/// charged against a per-packet cap of `max_rounds` and a lifetime
/// `retry_budget`, so duplicate NACK responses — which re-enter the receive
/// path with *old* frame tags — can neither rewind the window nor reset any
/// counter.
#[derive(Debug, Clone)]
pub struct NackTracker {
    cfg: NackConfig,
    /// Per-frame NACK state (rounds, backoff gate, per-packet counts).
    state: BTreeMap<u64, FrameNackState>,
    nacks_sent: u64,
    nacks_suppressed: u64,
}

impl NackTracker {
    /// Creates a tracker with the given policy.
    pub fn new(cfg: NackConfig) -> Self {
        NackTracker { cfg, state: BTreeMap::new(), nacks_sent: 0, nacks_suppressed: 0 }
    }

    /// The configured policy.
    pub fn config(&self) -> &NackConfig {
        &self.cfg
    }

    /// NACK requests granted so far (each charged against the budget).
    pub fn nacks_sent(&self) -> u64 {
        self.nacks_sent
    }

    /// Requests suppressed by an exhausted retry budget.
    pub fn nacks_suppressed(&self) -> u64 {
        self.nacks_suppressed
    }

    /// Returns the frame tags whose packets are due for a retransmission
    /// request at the given frame `horizon`, inspecting the per-frame
    /// reception maps in `frames`. The caller must send exactly one NACK
    /// per returned tag; the tracker's counters assume it does.
    ///
    /// `horizon` must be monotone across calls (the highest frame number
    /// seen in any data packet, late retransmissions excluded by the
    /// caller keeping its own running maximum).
    pub fn due(&mut self, horizon: u64, frames: &BTreeMap<u64, FrameReception>) -> Vec<FrameTag> {
        let cfg = self.cfg;
        let mut out = Vec::new();
        let lo = horizon.saturating_sub(4);
        for g in lo..horizon {
            let Some(rx) = frames.get(&g) else { continue };
            let (total, base) = (rx.total, rx.base_count);
            let missing: Vec<u16> = (0..total).filter(|&i| !rx.is_received(i)).collect();
            if missing.is_empty() {
                continue;
            }
            let st = self.state.entry(g).or_insert_with(|| FrameNackState {
                rounds: 0,
                next_round_frame: g + cfg.backoff_base.max(1),
                per_packet: vec![0u8; total as usize],
            });
            if st.rounds >= cfg.max_rounds || horizon < st.next_round_frame {
                continue;
            }
            let mut sent_this_round = 0usize;
            for index in missing {
                if sent_this_round >= cfg.max_per_round {
                    break;
                }
                if st.per_packet.get(index as usize).is_some_and(|&c| c >= cfg.max_rounds) {
                    continue;
                }
                if self.nacks_sent >= cfg.retry_budget {
                    self.nacks_suppressed += 1;
                    continue;
                }
                out.push(FrameTag { frame: g, index, total, base });
                self.nacks_sent += 1;
                if let Some(c) = st.per_packet.get_mut(index as usize) {
                    *c += 1;
                }
                sent_this_round += 1;
            }
            st.rounds += 1;
            st.next_round_frame = horizon + (cfg.backoff_base.max(1) << st.rounds.min(32));
        }
        // Evict far behind the 4-frame NACK window: a re-created entry can
        // never re-enter the active loop with reset counters because the
        // horizon is monotone.
        self.state.retain(|&f, _| f + 64 > horizon);
        out
    }
}

/// The receiving end of a PELS flow.
#[derive(Debug)]
pub struct PelsReceiver {
    flow: FlowId,
    port: Port,
    /// Source agent (learned from the first data packet; NACK destination).
    src_hint: pels_netsim::packet::AgentId,
    frames: BTreeMap<u64, FrameReception>,
    /// Playout deadline: packets older than this on arrival are discarded
    /// as undecodable (video frames have strict decoding deadlines —
    /// paper Section 1). `None` = infinite buffer.
    deadline: Option<SimDuration>,
    /// Per-color one-way delay statistics.
    pub delays: DelayRecorder,
    /// Packets received per color (green, yellow, red).
    pub received_by_color: [u64; 3],
    /// Packets that arrived after the playout deadline, per color.
    pub late_by_color: [u64; 3],
    /// Total video data packets received.
    pub received_packets: u64,
    /// NACK generation (ARQ comparator), when enabled.
    nack: Option<NackTracker>,
    /// Highest frame number seen in any data packet. Monotone: late
    /// retransmissions carry old frame tags and must not rewind the NACK
    /// window.
    max_frame_seen: u64,
    /// Retransmitted packets received in time to decode.
    pub recovered_on_time: u64,
    /// Retransmitted packets that missed the playout deadline.
    pub recovered_late: u64,
    /// Starvation probes acknowledged (not video data; see DESIGN.md §11).
    pub probes_acked: u64,
    telemetry: Telemetry,
    metric: RxMetricNames,
}

/// Per-flow telemetry metric names, formatted once at construction so the
/// per-packet instrumentation never allocates.
#[derive(Debug)]
struct RxMetricNames {
    /// Delay names per color: used both as a raw `(t, delay)` series and as
    /// a streaming distribution (the registry namespaces kinds separately).
    delay: [String; 3],
    nacks: String,
    recovered: String,
    late: String,
}

impl RxMetricNames {
    fn new(flow: FlowId) -> Self {
        let f = flow.0;
        RxMetricNames {
            delay: [
                format!("sim.flow{f}.delay.green"),
                format!("sim.flow{f}.delay.yellow"),
                format!("sim.flow{f}.delay.red"),
            ],
            nacks: format!("sim.flow{f}.nacks"),
            recovered: format!("sim.flow{f}.recovered"),
            late: format!("sim.flow{f}.late_packets"),
        }
    }
}

impl PelsReceiver {
    /// Creates a receiver answering `flow` through `port` (its access link,
    /// used for the reverse ACK path).
    ///
    /// `keep_delay_series` retains raw per-packet delay samples for
    /// plotting; aggregates are always kept.
    pub fn new(flow: FlowId, port: Port, keep_delay_series: bool) -> Self {
        let metric = RxMetricNames::new(flow);
        PelsReceiver {
            flow,
            port,
            src_hint: pels_netsim::packet::AgentId(u32::MAX),
            frames: BTreeMap::new(),
            deadline: None,
            delays: DelayRecorder::new(keep_delay_series),
            received_by_color: [0; 3],
            late_by_color: [0; 3],
            received_packets: 0,
            nack: None,
            max_frame_seen: 0,
            recovered_on_time: 0,
            recovered_late: 0,
            probes_acked: 0,
            telemetry: Telemetry::disabled(),
            metric,
        }
    }

    /// Attaches a telemetry handle. A disabled handle (the default) keeps
    /// every instrumentation point a single-branch no-op.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Sets a playout deadline (builder style): packets whose one-way delay
    /// exceeds it are counted in [`PelsReceiver::late_by_color`] and do not
    /// contribute to decoding.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enables NACK-based retransmission requests (builder style; the
    /// source must have ARQ enabled to answer them).
    pub fn with_nack(mut self, cfg: NackConfig) -> Self {
        self.nack = Some(NackTracker::new(cfg));
        self
    }

    /// NACK packets sent (0 when NACKs are disabled).
    pub fn nacks_sent(&self) -> u64 {
        self.nack.as_ref().map_or(0, NackTracker::nacks_sent)
    }

    /// NACK requests suppressed by an exhausted retry budget.
    pub fn nacks_suppressed(&self) -> u64 {
        self.nack.as_ref().map_or(0, NackTracker::nacks_suppressed)
    }

    /// Issues NACKs for frames behind the (monotone) frame horizon that
    /// still have gaps — one packet per tag the [`NackTracker`] grants.
    fn issue_nacks(&mut self, ctx: &mut Context<'_>) {
        let Some(tracker) = self.nack.as_mut() else { return };
        for tag in tracker.due(self.max_frame_seen, &self.frames) {
            let mut nack = Packet::data(self.flow, ctx.self_id, self.src_hint, 40)
                .with_frame(tag)
                .with_id(ctx.alloc_packet_id());
            nack.kind = PacketKind::Nack;
            nack.sent_at = ctx.now;
            self.port.send(nack, ctx);
            self.telemetry.counter_add(&self.metric.nacks, 1);
        }
    }

    /// The flow this receiver serves.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Number of frames with at least one received packet.
    pub fn frames_seen(&self) -> usize {
        self.frames.len()
    }

    /// Per-frame reception maps (frame index → reception).
    pub fn receptions(&self) -> &BTreeMap<u64, FrameReception> {
        &self.frames
    }

    /// Decodes every frame seen so far (prefix decoding, Section 3).
    pub fn decode_all(&self) -> Vec<DecodedFrame> {
        self.frames.values().map(|r| r.decode()).collect()
    }

    /// Aggregate utility over all frames seen so far.
    pub fn utility(&self) -> UtilityStats {
        let mut stats = UtilityStats::new();
        for d in self.decode_all() {
            stats.add(&d);
        }
        stats
    }
}

impl Agent for PelsReceiver {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if packet.kind != PacketKind::Data || packet.flow != self.flow {
            return;
        }
        let Some(tag) = packet.frame else { return };
        self.src_hint = packet.src;
        if tag.frame == PROBE_FRAME {
            // A starved source probing the path (DESIGN.md §11): solicit a
            // feedback label via the normal ACK path, but keep the probe out
            // of frame accounting — it is not video data, and counting it as
            // a complete one-packet frame would inflate utility.
            self.probes_acked += 1;
            let mut ack = Packet::ack_for(&packet, ACK_BYTES).with_id(ctx.alloc_packet_id());
            ack.sent_at = ctx.now;
            self.port.send(ack, ctx);
            return;
        }
        self.received_packets += 1;
        self.max_frame_seen = self.max_frame_seen.max(tag.frame);
        let delay = ctx.now.duration_since(packet.sent_at);
        let late = self.deadline.is_some_and(|d| delay > d);
        if packet.ack_no == RETX_MARKER {
            if late {
                self.recovered_late += 1;
            } else {
                self.recovered_on_time += 1;
                self.telemetry.counter_add(&self.metric.recovered, 1);
            }
        }
        if self.nack.is_some() {
            self.issue_nacks(ctx);
        }
        if (packet.class as usize) < 3 {
            if late {
                self.late_by_color[packet.class as usize] += 1;
                self.telemetry.counter_add(&self.metric.late, 1);
            } else {
                self.received_by_color[packet.class as usize] += 1;
            }
        }
        self.delays.record(packet.class, ctx.now.as_secs_f64(), delay.as_secs_f64());
        if self.telemetry.is_enabled() && (packet.class as usize) < 3 {
            let name = &self.metric.delay[packet.class as usize];
            self.telemetry.sample(name, ctx.now.as_secs_f64(), delay.as_secs_f64());
            self.telemetry.observe(name, delay.as_secs_f64());
        }

        if !late {
            let entry = self.frames.entry(tag.frame).or_insert_with(|| {
                FrameReception::with_counts(tag.frame, tag.total, tag.base, packet.size_bytes)
            });
            entry.mark_received_sized(tag.index, packet.size_bytes);
        }

        // ACKs flow even for late packets: the feedback label is still
        // fresh, and congestion control must see the path state.
        let mut ack = Packet::ack_for(&packet, ACK_BYTES).with_id(ctx.alloc_packet_id());
        ack.sent_at = ctx.now;
        self.port.send(ack, ctx);
    }

    fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
        self.port.on_tx_complete(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_netsim::disc::{DropTail, QueueLimit};
    use pels_netsim::packet::{AgentId, Feedback, FrameTag};
    use pels_netsim::sim::Simulator;
    use pels_netsim::time::{Rate, SimDuration, SimTime};

    struct AckSink {
        acks: Vec<Packet>,
    }
    impl Agent for AckSink {
        fn on_packet(&mut self, p: Packet, _ctx: &mut Context<'_>) {
            self.acks.push(p);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Delivers a fixed set of tagged packets to the receiver at start.
    struct Feeder {
        rx: AgentId,
        packets: Vec<Packet>,
    }
    impl Agent for Feeder {
        fn start(&mut self, ctx: &mut Context<'_>) {
            for (i, mut p) in self.packets.drain(..).enumerate() {
                p.sent_at = ctx.now;
                ctx.deliver(self.rx, SimDuration::from_millis(10 + i as u64), p);
            }
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn video_packet(frame: u64, index: u16, total: u16, base: u16, class: u8) -> Packet {
        let mut p = Packet::data(FlowId(1), AgentId(2), AgentId(0), 500)
            .with_class(class)
            .with_frame(FrameTag { frame, index, total, base });
        p.feedback = Some(Feedback::new(AgentId(5), 3, 0.1, 0.2));
        p
    }

    fn build(packets: Vec<Packet>) -> (Simulator, AgentId, AgentId) {
        let mut sim = Simulator::new(1);
        let rx_id = AgentId(0);
        let ack_sink_id = AgentId(1);
        let port = Port::new(
            0,
            ack_sink_id,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(100))),
        );
        sim.add_agent(Box::new(PelsReceiver::new(FlowId(1), port, true)));
        sim.add_agent(Box::new(AckSink { acks: vec![] }));
        sim.add_agent(Box::new(Feeder { rx: rx_id, packets }));
        (sim, rx_id, ack_sink_id)
    }

    #[test]
    fn records_receptions_and_decodes() {
        // Frame 0: 1 base + 4 enhancement, lose index 3.
        let pkts: Vec<Packet> = [0u16, 1, 2, 4]
            .iter()
            .map(|&i| video_packet(0, i, 5, 1, if i == 0 { 0 } else { 1 }))
            .collect();
        let (mut sim, rx, _acks) = build(pkts);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let r = sim.agent::<PelsReceiver>(rx);
        assert_eq!(r.frames_seen(), 1);
        let decoded = r.decode_all();
        assert!(decoded[0].base_ok);
        assert_eq!(decoded[0].enh_received_packets, 3);
        assert_eq!(decoded[0].enh_useful_packets, 2);
        let u = r.utility();
        assert!((u.utility() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn acks_every_data_packet_and_echoes_feedback() {
        let pkts = vec![video_packet(0, 0, 2, 1, 0), video_packet(0, 1, 2, 1, 1)];
        let (mut sim, _rx, acks) = build(pkts);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let sink = sim.agent::<AckSink>(acks);
        assert_eq!(sink.acks.len(), 2);
        for a in &sink.acks {
            assert_eq!(a.kind, PacketKind::Ack);
            assert_eq!(a.size_bytes, ACK_BYTES);
            let fb = a.feedback.expect("ACK echoes the feedback label");
            assert_eq!(fb.epoch, 3);
        }
    }

    #[test]
    fn measures_one_way_delay_per_color() {
        let pkts = vec![video_packet(0, 0, 2, 1, 0), video_packet(0, 1, 2, 1, 2)];
        let (mut sim, rx, _acks) = build(pkts);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let r = sim.agent::<PelsReceiver>(rx);
        // Feeder delivers with 10 ms and 11 ms one-way delay.
        assert_eq!(r.delays.by_class[0].count(), 1);
        assert!((r.delays.by_class[0].mean() - 0.010).abs() < 1e-9);
        assert_eq!(r.delays.by_class[2].count(), 1);
        assert!((r.delays.by_class[2].mean() - 0.011).abs() < 1e-9);
    }

    #[test]
    fn ignores_foreign_flows_and_acks() {
        let mut foreign = video_packet(0, 0, 1, 1, 0);
        foreign.flow = FlowId(99);
        let mut ack = video_packet(0, 0, 1, 1, 0);
        ack.kind = PacketKind::Ack;
        let (mut sim, rx, _acks) = build(vec![foreign, ack]);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<PelsReceiver>(rx).received_packets, 0);
    }

    #[test]
    fn deadline_discards_late_packets_but_still_acks() {
        let on_time = video_packet(0, 0, 2, 1, 0); // delivered at +10 ms
        let late = video_packet(0, 1, 2, 1, 2); // delivered at +11 ms
        let mut sim = Simulator::new(1);
        let rx_id = AgentId(0);
        let ack_sink_id = AgentId(1);
        let port = Port::new(
            0,
            ack_sink_id,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(100))),
        );
        sim.add_agent(Box::new(
            PelsReceiver::new(FlowId(1), port, true)
                .with_deadline(SimDuration::from_micros(10_500)),
        ));
        sim.add_agent(Box::new(AckSink { acks: vec![] }));
        sim.add_agent(Box::new(Feeder { rx: rx_id, packets: vec![on_time, late] }));
        sim.run_until(SimTime::from_secs_f64(1.0));
        let r = sim.agent::<PelsReceiver>(rx_id);
        assert_eq!(r.received_by_color[0], 1);
        assert_eq!(r.late_by_color[2], 1, "11 ms > 10.5 ms deadline");
        let d = r.decode_all();
        assert!(d[0].base_ok);
        assert_eq!(d[0].enh_received_packets, 0, "late packet not decodable");
        // Both packets were still ACKed (feedback must flow).
        assert_eq!(sim.agent::<AckSink>(ack_sink_id).acks.len(), 2);
    }

    fn build_nack(packets: Vec<Packet>, cfg: NackConfig) -> (Simulator, AgentId, AgentId) {
        let mut sim = Simulator::new(1);
        let rx_id = AgentId(0);
        let ack_sink_id = AgentId(1);
        let port = Port::new(
            0,
            ack_sink_id,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(100))),
        );
        sim.add_agent(Box::new(PelsReceiver::new(FlowId(1), port, true).with_nack(cfg)));
        sim.add_agent(Box::new(AckSink { acks: vec![] }));
        sim.add_agent(Box::new(Feeder { rx: rx_id, packets }));
        (sim, rx_id, ack_sink_id)
    }

    #[test]
    fn nack_rounds_follow_exponential_backoff() {
        // Frame 0 misses index 1 of 3; frames 1..=8 arrive complete.
        let mut pkts = vec![video_packet(0, 0, 3, 1, 0), video_packet(0, 2, 3, 1, 1)];
        for f in 1..=8u64 {
            pkts.push(video_packet(f, 0, 1, 1, 0));
        }
        let (mut sim, rx, acks) = build_nack(pkts, NackConfig::default());
        sim.run_until(SimTime::from_secs_f64(1.0));
        let r = sim.agent::<PelsReceiver>(rx);
        // Round 0 fires at horizon 1, then backoff gates round 1 to
        // horizon 3 (1 + base·2^1); max_rounds = 2 stops it there.
        assert_eq!(r.nacks_sent(), 2, "one NACK per round for the single gap");
        assert_eq!(r.nacks_suppressed(), 0);
        let nacks: Vec<_> =
            sim.agent::<AckSink>(acks).acks.iter().filter(|p| p.kind == PacketKind::Nack).collect();
        assert_eq!(nacks.len(), 2);
        for n in &nacks {
            let tag = n.frame.expect("NACK carries the missing packet's tag");
            assert_eq!((tag.frame, tag.index), (0, 1));
        }
    }

    #[test]
    fn duplicate_late_retx_cannot_reset_nack_rounds() {
        // Satellite regression: a late retransmission carrying an old frame
        // tag used to rewind the NACK window after the per-frame round
        // counter had been evicted, restarting rounds for frames with gaps.
        let mut pkts = vec![video_packet(10, 0, 3, 1, 0), video_packet(10, 2, 3, 1, 1)];
        for f in 11..=30u64 {
            pkts.push(video_packet(f, 0, 1, 1, 0));
        }
        // Duplicate retransmission of frame 10 index 2, arriving last with
        // an old tag (frame 14 window under the legacy gating).
        let mut dup = video_packet(14, 0, 1, 1, 0);
        dup.ack_no = RETX_MARKER;
        pkts.push(dup);
        let (mut sim, rx, _acks) = build_nack(pkts, NackConfig::default());
        sim.run_until(SimTime::from_secs_f64(1.0));
        let r = sim.agent::<PelsReceiver>(rx);
        assert_eq!(
            r.nacks_sent(),
            2,
            "max_rounds is per-packet: the late duplicate must not restart rounds"
        );
    }

    #[test]
    fn retry_budget_suppresses_excess_nacks() {
        // Frame 0 misses indices 1 and 2 of 3; budget allows only one NACK.
        let pkts = vec![
            video_packet(0, 0, 3, 1, 0),
            video_packet(1, 0, 1, 1, 0),
            video_packet(2, 0, 1, 1, 0),
            video_packet(3, 0, 1, 1, 0),
        ];
        let cfg = NackConfig { retry_budget: 1, ..NackConfig::default() };
        let (mut sim, rx, _acks) = build_nack(pkts, cfg);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let r = sim.agent::<PelsReceiver>(rx);
        assert_eq!(r.nacks_sent(), 1, "budget caps lifetime NACKs");
        assert!(r.nacks_suppressed() >= 1, "suppressed requests are counted");
    }

    #[test]
    fn utility_over_multiple_frames() {
        let mut pkts = Vec::new();
        // Frame 0: everything (1 base + 2 enh).
        for i in 0..3u16 {
            pkts.push(video_packet(0, i, 3, 1, if i == 0 { 0 } else { 1 }));
        }
        // Frame 1: enhancement gap at first position.
        pkts.push(video_packet(1, 0, 3, 1, 0));
        pkts.push(video_packet(1, 2, 3, 1, 1));
        let (mut sim, rx, _acks) = build(pkts);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let u = sim.agent::<PelsReceiver>(rx).utility();
        assert_eq!(u.frames, 2);
        assert_eq!(u.enh_received, 3);
        assert_eq!(u.enh_useful, 2);
    }
}
