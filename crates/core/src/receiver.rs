//! The PELS receiver agent.
//!
//! The receiver records every arriving video packet into per-frame
//! reception maps (consumed after the run by the FGS prefix decoder),
//! measures one-way delays per color (the paper's Fig. 8–9), and echoes the
//! router feedback back to the source in a small ACK for every data packet
//! (Section 5.2).

use crate::source::RETX_MARKER;
use pels_fgs::decoder::{DecodedFrame, FrameReception, UtilityStats};
use pels_netsim::packet::{FlowId, Packet, PacketKind};
use pels_netsim::port::Port;
use pels_netsim::sim::{Agent, Context};
use pels_netsim::stats::DelayRecorder;
use pels_netsim::time::SimDuration;
use std::any::Any;
use std::collections::BTreeMap;

/// Size of the acknowledgment packets, bytes.
pub const ACK_BYTES: u32 = 40;

/// Receiver-side NACK configuration for the ARQ comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NackConfig {
    /// How many NACK rounds each frame may trigger.
    pub max_rounds: u8,
    /// Cap on NACKs per frame per round.
    pub max_per_round: usize,
}

impl Default for NackConfig {
    fn default() -> Self {
        NackConfig { max_rounds: 2, max_per_round: 64 }
    }
}

/// The receiving end of a PELS flow.
#[derive(Debug)]
pub struct PelsReceiver {
    flow: FlowId,
    port: Port,
    /// Source agent (learned from the first data packet; NACK destination).
    src_hint: pels_netsim::packet::AgentId,
    frames: BTreeMap<u64, FrameReception>,
    /// Playout deadline: packets older than this on arrival are discarded
    /// as undecodable (video frames have strict decoding deadlines —
    /// paper Section 1). `None` = infinite buffer.
    deadline: Option<SimDuration>,
    /// Per-color one-way delay statistics.
    pub delays: DelayRecorder,
    /// Packets received per color (green, yellow, red).
    pub received_by_color: [u64; 3],
    /// Packets that arrived after the playout deadline, per color.
    pub late_by_color: [u64; 3],
    /// Total video data packets received.
    pub received_packets: u64,
    /// NACK generation (ARQ comparator), when enabled.
    nack: Option<NackConfig>,
    /// Per-frame NACK rounds already issued.
    nack_rounds: BTreeMap<u64, u8>,
    /// NACK packets sent.
    pub nacks_sent: u64,
    /// Retransmitted packets received in time to decode.
    pub recovered_on_time: u64,
    /// Retransmitted packets that missed the playout deadline.
    pub recovered_late: u64,
}

impl PelsReceiver {
    /// Creates a receiver answering `flow` through `port` (its access link,
    /// used for the reverse ACK path).
    ///
    /// `keep_delay_series` retains raw per-packet delay samples for
    /// plotting; aggregates are always kept.
    pub fn new(flow: FlowId, port: Port, keep_delay_series: bool) -> Self {
        PelsReceiver {
            flow,
            port,
            src_hint: pels_netsim::packet::AgentId(u32::MAX),
            frames: BTreeMap::new(),
            deadline: None,
            delays: DelayRecorder::new(keep_delay_series),
            received_by_color: [0; 3],
            late_by_color: [0; 3],
            received_packets: 0,
            nack: None,
            nack_rounds: BTreeMap::new(),
            nacks_sent: 0,
            recovered_on_time: 0,
            recovered_late: 0,
        }
    }

    /// Sets a playout deadline (builder style): packets whose one-way delay
    /// exceeds it are counted in [`PelsReceiver::late_by_color`] and do not
    /// contribute to decoding.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enables NACK-based retransmission requests (builder style; the
    /// source must have ARQ enabled to answer them).
    pub fn with_nack(mut self, cfg: NackConfig) -> Self {
        self.nack = Some(cfg);
        self
    }

    /// Issues NACKs for frames behind `current_frame` that still have gaps.
    fn issue_nacks(&mut self, current_frame: u64, ctx: &mut Context<'_>) {
        let Some(cfg) = self.nack else { return };
        let lo = current_frame.saturating_sub(4);
        for g in lo..current_frame {
            let rounds = *self.nack_rounds.get(&g).unwrap_or(&0);
            if rounds >= cfg.max_rounds {
                continue;
            }
            // Round r of frame g fires once frame g + r + 1 is flowing.
            if current_frame < g + rounds as u64 + 1 {
                continue;
            }
            let Some(rx) = self.frames.get(&g) else { continue };
            let mut sent_this_round = 0usize;
            let (total, base) = (rx.total, rx.base_count);
            let missing: Vec<u16> =
                (0..total).filter(|&i| !rx.is_received(i)).collect();
            for index in missing {
                if sent_this_round >= cfg.max_per_round {
                    break;
                }
                let mut nack = Packet::data(self.flow, ctx.self_id, self.src_hint, 40)
                    .with_frame(pels_netsim::packet::FrameTag { frame: g, index, total, base })
                    .with_id(ctx.alloc_packet_id());
                nack.kind = PacketKind::Nack;
                nack.sent_at = ctx.now;
                self.port.send(nack, ctx);
                self.nacks_sent += 1;
                sent_this_round += 1;
            }
            self.nack_rounds.insert(g, rounds + 1);
            self.nack_rounds.retain(|&f, _| f + 16 > current_frame);
        }
    }

    /// The flow this receiver serves.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Number of frames with at least one received packet.
    pub fn frames_seen(&self) -> usize {
        self.frames.len()
    }

    /// Per-frame reception maps (frame index → reception).
    pub fn receptions(&self) -> &BTreeMap<u64, FrameReception> {
        &self.frames
    }

    /// Decodes every frame seen so far (prefix decoding, Section 3).
    pub fn decode_all(&self) -> Vec<DecodedFrame> {
        self.frames.values().map(|r| r.decode()).collect()
    }

    /// Aggregate utility over all frames seen so far.
    pub fn utility(&self) -> UtilityStats {
        let mut stats = UtilityStats::new();
        for d in self.decode_all() {
            stats.add(&d);
        }
        stats
    }
}

impl Agent for PelsReceiver {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if packet.kind != PacketKind::Data || packet.flow != self.flow {
            return;
        }
        let Some(tag) = packet.frame else { return };
        self.src_hint = packet.src;
        self.received_packets += 1;
        let delay = ctx.now.duration_since(packet.sent_at);
        let late = self.deadline.is_some_and(|d| delay > d);
        if packet.ack_no == RETX_MARKER {
            if late {
                self.recovered_late += 1;
            } else {
                self.recovered_on_time += 1;
            }
        }
        if self.nack.is_some() {
            self.issue_nacks(tag.frame, ctx);
        }
        if (packet.class as usize) < 3 {
            if late {
                self.late_by_color[packet.class as usize] += 1;
            } else {
                self.received_by_color[packet.class as usize] += 1;
            }
        }
        self.delays.record(packet.class, ctx.now.as_secs_f64(), delay.as_secs_f64());

        if !late {
            let entry = self.frames.entry(tag.frame).or_insert_with(|| {
                FrameReception::with_counts(tag.frame, tag.total, tag.base, packet.size_bytes)
            });
            entry.mark_received_sized(tag.index, packet.size_bytes);
        }

        // ACKs flow even for late packets: the feedback label is still
        // fresh, and congestion control must see the path state.
        let mut ack = Packet::ack_for(&packet, ACK_BYTES).with_id(ctx.alloc_packet_id());
        ack.sent_at = ctx.now;
        self.port.send(ack, ctx);
    }

    fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
        self.port.on_tx_complete(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_netsim::disc::{DropTail, QueueLimit};
    use pels_netsim::packet::{AgentId, Feedback, FrameTag};
    use pels_netsim::sim::Simulator;
    use pels_netsim::time::{Rate, SimDuration, SimTime};

    struct AckSink {
        acks: Vec<Packet>,
    }
    impl Agent for AckSink {
        fn on_packet(&mut self, p: Packet, _ctx: &mut Context<'_>) {
            self.acks.push(p);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Delivers a fixed set of tagged packets to the receiver at start.
    struct Feeder {
        rx: AgentId,
        packets: Vec<Packet>,
    }
    impl Agent for Feeder {
        fn start(&mut self, ctx: &mut Context<'_>) {
            for (i, mut p) in self.packets.drain(..).enumerate() {
                p.sent_at = ctx.now;
                ctx.deliver(self.rx, SimDuration::from_millis(10 + i as u64), p);
            }
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn video_packet(frame: u64, index: u16, total: u16, base: u16, class: u8) -> Packet {
        let mut p = Packet::data(FlowId(1), AgentId(2), AgentId(0), 500)
            .with_class(class)
            .with_frame(FrameTag { frame, index, total, base });
        p.feedback = Some(Feedback::new(AgentId(5), 3, 0.1, 0.2));
        p
    }

    fn build(packets: Vec<Packet>) -> (Simulator, AgentId, AgentId) {
        let mut sim = Simulator::new(1);
        let rx_id = AgentId(0);
        let ack_sink_id = AgentId(1);
        let port = Port::new(
            0,
            ack_sink_id,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(100))),
        );
        sim.add_agent(Box::new(PelsReceiver::new(FlowId(1), port, true)));
        sim.add_agent(Box::new(AckSink { acks: vec![] }));
        sim.add_agent(Box::new(Feeder { rx: rx_id, packets }));
        (sim, rx_id, ack_sink_id)
    }

    #[test]
    fn records_receptions_and_decodes() {
        // Frame 0: 1 base + 4 enhancement, lose index 3.
        let pkts: Vec<Packet> = [0u16, 1, 2, 4]
            .iter()
            .map(|&i| video_packet(0, i, 5, 1, if i == 0 { 0 } else { 1 }))
            .collect();
        let (mut sim, rx, _acks) = build(pkts);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let r = sim.agent::<PelsReceiver>(rx);
        assert_eq!(r.frames_seen(), 1);
        let decoded = r.decode_all();
        assert!(decoded[0].base_ok);
        assert_eq!(decoded[0].enh_received_packets, 3);
        assert_eq!(decoded[0].enh_useful_packets, 2);
        let u = r.utility();
        assert!((u.utility() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn acks_every_data_packet_and_echoes_feedback() {
        let pkts = vec![video_packet(0, 0, 2, 1, 0), video_packet(0, 1, 2, 1, 1)];
        let (mut sim, _rx, acks) = build(pkts);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let sink = sim.agent::<AckSink>(acks);
        assert_eq!(sink.acks.len(), 2);
        for a in &sink.acks {
            assert_eq!(a.kind, PacketKind::Ack);
            assert_eq!(a.size_bytes, ACK_BYTES);
            let fb = a.feedback.expect("ACK echoes the feedback label");
            assert_eq!(fb.epoch, 3);
        }
    }

    #[test]
    fn measures_one_way_delay_per_color() {
        let pkts = vec![video_packet(0, 0, 2, 1, 0), video_packet(0, 1, 2, 1, 2)];
        let (mut sim, rx, _acks) = build(pkts);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let r = sim.agent::<PelsReceiver>(rx);
        // Feeder delivers with 10 ms and 11 ms one-way delay.
        assert_eq!(r.delays.by_class[0].count(), 1);
        assert!((r.delays.by_class[0].mean() - 0.010).abs() < 1e-9);
        assert_eq!(r.delays.by_class[2].count(), 1);
        assert!((r.delays.by_class[2].mean() - 0.011).abs() < 1e-9);
    }

    #[test]
    fn ignores_foreign_flows_and_acks() {
        let mut foreign = video_packet(0, 0, 1, 1, 0);
        foreign.flow = FlowId(99);
        let mut ack = video_packet(0, 0, 1, 1, 0);
        ack.kind = PacketKind::Ack;
        let (mut sim, rx, _acks) = build(vec![foreign, ack]);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<PelsReceiver>(rx).received_packets, 0);
    }

    #[test]
    fn deadline_discards_late_packets_but_still_acks() {
        let on_time = video_packet(0, 0, 2, 1, 0); // delivered at +10 ms
        let late = video_packet(0, 1, 2, 1, 2); // delivered at +11 ms
        let mut sim = Simulator::new(1);
        let rx_id = AgentId(0);
        let ack_sink_id = AgentId(1);
        let port = Port::new(
            0,
            ack_sink_id,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(100))),
        );
        sim.add_agent(Box::new(
            PelsReceiver::new(FlowId(1), port, true)
                .with_deadline(SimDuration::from_micros(10_500)),
        ));
        sim.add_agent(Box::new(AckSink { acks: vec![] }));
        sim.add_agent(Box::new(Feeder { rx: rx_id, packets: vec![on_time, late] }));
        sim.run_until(SimTime::from_secs_f64(1.0));
        let r = sim.agent::<PelsReceiver>(rx_id);
        assert_eq!(r.received_by_color[0], 1);
        assert_eq!(r.late_by_color[2], 1, "11 ms > 10.5 ms deadline");
        let d = r.decode_all();
        assert!(d[0].base_ok);
        assert_eq!(d[0].enh_received_packets, 0, "late packet not decodable");
        // Both packets were still ACKed (feedback must flow).
        assert_eq!(sim.agent::<AckSink>(ack_sink_id).acks.len(), 2);
    }

    #[test]
    fn utility_over_multiple_frames() {
        let mut pkts = Vec::new();
        // Frame 0: everything (1 base + 2 enh).
        for i in 0..3u16 {
            pkts.push(video_packet(0, i, 3, 1, if i == 0 { 0 } else { 1 }));
        }
        // Frame 1: enhancement gap at first position.
        pkts.push(video_packet(1, 0, 3, 1, 0));
        pkts.push(video_packet(1, 2, 3, 1, 1));
        let (mut sim, rx, _acks) = build(pkts);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let u = sim.agent::<PelsReceiver>(rx).utility();
        assert_eq!(u.frames, 2);
        assert_eq!(u.enh_received, 3);
        assert_eq!(u.enh_useful, 2);
    }
}
