//! PELS packet colors.
//!
//! Applications mark their own packets (Section 4): green for the base
//! layer, yellow for the lower (decodable-prefix) part of the FGS
//! enhancement layer, red for the upper, expendable part. Colors map onto
//! [`pels_netsim::Packet::class`] values; class 3 is reserved for ordinary
//! Internet traffic.

use pels_fgs::Segment;
use serde::{Deserialize, Serialize};

/// The three PELS priority colors, highest priority first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Color {
    /// Base layer: dropped only when the entire FGS layer is gone.
    Green,
    /// Lower enhancement layer: protected by the red cushion.
    Yellow,
    /// Upper enhancement layer: the probing class whose purpose is to be
    /// lost first during congestion.
    Red,
}

/// Packet class carried by non-PELS (Internet) traffic.
pub const INTERNET_CLASS: u8 = 3;

impl Color {
    /// The wire class for this color (0, 1 or 2).
    pub const fn class(self) -> u8 {
        match self {
            Color::Green => 0,
            Color::Yellow => 1,
            Color::Red => 2,
        }
    }

    /// Parses a wire class back into a color.
    ///
    /// # Examples
    ///
    /// ```
    /// use pels_core::color::Color;
    ///
    /// assert_eq!(Color::from_class(0), Some(Color::Green));
    /// assert_eq!(Color::from_class(3), None); // Internet traffic
    /// ```
    pub const fn from_class(class: u8) -> Option<Color> {
        match class {
            0 => Some(Color::Green),
            1 => Some(Color::Yellow),
            2 => Some(Color::Red),
            _ => None,
        }
    }

    /// Whether a wire class is PELS video traffic.
    pub const fn is_pels_class(class: u8) -> bool {
        class < 3
    }

    /// All colors, highest priority first.
    pub const ALL: [Color; 3] = [Color::Green, Color::Yellow, Color::Red];
}

impl From<Segment> for Color {
    fn from(seg: Segment) -> Color {
        match seg {
            Segment::Base => Color::Green,
            Segment::Yellow => Color::Yellow,
            Segment::Red => Color::Red,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_roundtrip() {
        for c in Color::ALL {
            assert_eq!(Color::from_class(c.class()), Some(c));
        }
        assert_eq!(Color::from_class(INTERNET_CLASS), None);
    }

    #[test]
    fn priority_order() {
        assert!(Color::Green < Color::Yellow);
        assert!(Color::Yellow < Color::Red);
    }

    #[test]
    fn segment_mapping() {
        assert_eq!(Color::from(Segment::Base), Color::Green);
        assert_eq!(Color::from(Segment::Yellow), Color::Yellow);
        assert_eq!(Color::from(Segment::Red), Color::Red);
    }

    #[test]
    fn pels_class_predicate() {
        assert!(Color::is_pels_class(0));
        assert!(Color::is_pels_class(2));
        assert!(!Color::is_pels_class(3));
        assert!(!Color::is_pels_class(200));
    }
}
