//! The PELS streaming source agent.
//!
//! Once per frame interval the source scales the FGS frame to its current
//! MKC rate (Section 2.3/[5]), partitions the enhancement bytes into yellow
//! and red according to γ (Section 4.2, Fig. 4 right), packetizes, and paces
//! the packets evenly across the frame interval. Feedback arrives in ACKs;
//! each *fresh* epoch (Section 5.2) drives one MKC step (Eq. 8) and one γ
//! step (Eq. 4).

use crate::aimd::{AimdConfig, AimdController};
use crate::color::Color;
use crate::feedback::EpochFilter;
use crate::gamma::{GammaConfig, GammaController};
use crate::mkc::{MkcConfig, MkcController};
use crate::tfrc::{TfrcConfig, TfrcController};
use pels_fgs::frame::VideoTrace;
use pels_fgs::packetize::packetize;
use pels_fgs::scaling::{partition_enhancement, scale_to_rate};
use pels_netsim::fasthash::FastMap;
use pels_netsim::packet::{AgentId, FlowId, FrameTag, Packet, PacketKind};
use pels_netsim::port::Port;
use pels_netsim::sim::{Agent, Context};
use pels_netsim::stats::TimeSeries;
use pels_netsim::time::SimDuration;
use pels_telemetry::Telemetry;
use std::any::Any;
use std::collections::VecDeque;

/// How the source marks its enhancement packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SourceMode {
    /// PELS: yellow/red partition driven by the γ controller.
    Pels,
    /// Best-effort comparator: the whole enhancement layer is one class
    /// (yellow); γ is irrelevant.
    BestEffort,
}

/// Which congestion controller a source runs. PELS itself is independent
/// of the choice (paper Section 5) — AIMD is provided for the ablation
/// demonstrating exactly that.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CcSpec {
    /// Max-min Kelly Control (the paper's choice).
    Mkc(MkcConfig),
    /// Additive increase, multiplicative decrease.
    Aimd(AimdConfig),
    /// TFRC-style equation-based control.
    Tfrc(TfrcConfig),
}

impl Default for CcSpec {
    fn default() -> Self {
        CcSpec::Mkc(MkcConfig::default())
    }
}

#[derive(Debug)]
enum Cc {
    Mkc(MkcController),
    Aimd(AimdController),
    Tfrc(TfrcController),
}

impl Cc {
    fn new(spec: CcSpec) -> Self {
        match spec {
            CcSpec::Mkc(cfg) => Cc::Mkc(MkcController::new(cfg)),
            CcSpec::Aimd(cfg) => Cc::Aimd(AimdController::new(cfg)),
            CcSpec::Tfrc(cfg) => Cc::Tfrc(TfrcController::new(cfg)),
        }
    }

    fn rate_bps(&self) -> f64 {
        match self {
            Cc::Mkc(m) => m.rate_bps(),
            Cc::Aimd(a) => a.rate_bps(),
            Cc::Tfrc(t) => t.rate_bps(),
        }
    }

    fn update_from(&mut self, base_bps: f64, p: f64) -> f64 {
        match self {
            Cc::Mkc(m) => m.update_from(base_bps, p),
            Cc::Aimd(a) => a.update(p),
            Cc::Tfrc(t) => t.update(p),
        }
    }

    fn mkc(&self) -> Option<&MkcController> {
        match self {
            Cc::Mkc(m) => Some(m),
            _ => None,
        }
    }

    fn mkc_mut(&mut self) -> Option<&mut MkcController> {
        match self {
            Cc::Mkc(m) => Some(m),
            _ => None,
        }
    }
}

/// Retransmission (ARQ) configuration for the comparator experiments.
///
/// The paper argues *against* retransmission-based streaming (Section 1:
/// under congestion "even the retransmitted packets are dropped in the same
/// congested queues ... [and] miss their decoding deadlines"). Enabling ARQ
/// lets the harness measure exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ArqConfig {
    /// How many recent frames to keep retransmittable.
    pub buffer_frames: u64,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig { buffer_frames: 8 }
    }
}

/// Graceful degradation for the many-flow regime (DESIGN.md §11).
///
/// When the fair share `C/N` falls below the base-layer floor, MKC pins at
/// its minimum rate while the source keeps emitting the full base layer —
/// the aggregate green load exceeds the bottleneck, green packets tail-drop,
/// and *every* flow's base layer is corrupted (the N≳32 collapse). Two
/// stages extend PR 1's red-then-yellow shedding past the floor:
///
/// 1. **Base thinning** — while fresh feedback shows the controlled rate
///    below the base floor, frames are emitted on a byte budget so the
///    green load tracks the controlled rate instead of overshooting it.
/// 2. **Starvation (self-admission)** — a flow whose sustainable goodput
///    `r·(1 − p̂)` stays below the floor for `patience` stops emitting
///    entirely and probes the path at `probe_interval`; it resumes once the
///    goodput the smoothed price *implies*, `(α/β)·(1 − p̂)/p̂` (which at
///    the MKC fixed point equals the fair share `C/M` of the admitted set,
///    independent of the starved flow's own decayed rate), clears the floor
///    by `resume_headroom` for `resume_hold`. Patience and resume are
///    staggered by flow id so flows yield (and return) one at a time
///    instead of oscillating in lockstep.
///
/// Both stages act only on *fresh* feedback epochs; under stale feedback
/// the PR 1 watchdog owns the rate and the policy stands down.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DegradationConfig {
    /// Master switch; disabled reproduces the pre-PR 4 collapse.
    pub enabled: bool,
    /// EWMA weight for the smoothed price p̂ (per fresh epoch).
    pub smoothing: f64,
    /// Starve when sustainable goodput stays below `floor_headroom ×` the
    /// base floor. Keep at 1.0: the admission boundary is exactly "the base
    /// layer no longer fits", and a lower value strands perpetual green
    /// drops while a higher one starves flows the bottleneck could carry.
    pub floor_headroom: f64,
    /// How long the sustainable rate must sit below the floor before the
    /// flow starves itself.
    pub patience: SimDuration,
    /// Per-flow-id stagger added to `patience`, breaking the symmetry of
    /// simultaneous starve decisions so flows shed one at a time and the
    /// survivors' recovering price can halt the shedding.
    pub patience_step: SimDuration,
    /// Interval between path probes while starved.
    pub probe_interval: SimDuration,
    /// How long the price-implied goodput must clear the resume threshold
    /// before a starved flow resumes.
    pub resume_hold: SimDuration,
    /// Per-flow-id stagger added to `resume_hold`. Much larger than
    /// `patience_step` by design — shed fast, rejoin slow: when a capacity
    /// event starves many flows at once they all see the same recovered
    /// price, and only a rejoin spacing longer than one probe interval lets
    /// each returning flow's price impact reach the rest before the next
    /// one decides, preventing a mass rejoin → collapse → mass starve
    /// oscillation.
    pub resume_step: SimDuration,
    /// A starved flow resumes when the price-implied goodput reaches
    /// `resume_headroom ×` the base floor. Keeping this above
    /// `floor_headroom` opens a hysteresis band: the admitted set settles
    /// where newcomers no longer see enough margin to rejoin, instead of
    /// flapping across a single shared boundary.
    pub resume_headroom: f64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            enabled: true,
            smoothing: 0.2,
            floor_headroom: 1.0,
            patience: SimDuration::from_millis(1_000),
            patience_step: SimDuration::from_millis(25),
            probe_interval: SimDuration::from_millis(500),
            resume_hold: SimDuration::from_millis(500),
            resume_step: SimDuration::from_millis(500),
            resume_headroom: 1.35,
        }
    }
}

/// Configuration of a [`PelsSource`].
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// Flow identifier (must be unique per source).
    pub flow: FlowId,
    /// The receiving agent.
    pub dst: AgentId,
    /// When the flow starts, relative to simulation start.
    pub start_at: SimDuration,
    /// Optional departure time (absolute simulation time): the source stops
    /// emitting frames once the frame clock reaches it (flash-crowd
    /// departure schedules). `None` streams forever. Note the video trace
    /// loops, so trimming the trace cannot end a flow — only this can.
    pub stop_at: Option<pels_netsim::time::SimTime>,
    /// The video being streamed (looped).
    pub trace: VideoTrace,
    /// Congestion controller and its gains.
    pub cc: CcSpec,
    /// Partition-controller gains.
    pub gamma: GammaConfig,
    /// Wire packet size (paper: 500 bytes).
    pub packet_bytes: u32,
    /// Marking mode.
    pub mode: SourceMode,
    /// Optional ARQ: answer NACKs with retransmissions.
    pub arq: Option<ArqConfig>,
    /// Floor-aware degradation for the many-flow regime.
    pub degradation: DegradationConfig,
    /// Whether to retain per-step time series (rate, γ, feedback).
    pub keep_series: bool,
}

const START_TOKEN: u64 = 0;
const FRAME_TOKEN: u64 = 1;
const PACE_TOKEN: u64 = 2;
/// Periodic stale-feedback watchdog (MKC sources only).
const WATCHDOG_TOKEN: u64 = 3;
/// Path probe while starved (degradation policy, DESIGN.md §11).
const PROBE_TOKEN: u64 = 4;

/// Sentinel frame number marking a starvation probe. Probes travel as green
/// data so routers label them with ordinary feedback, but receivers must
/// keep them out of frame accounting (a probe is not video). Real frame
/// numbers are sequential from 0 and can never reach this value.
pub const PROBE_FRAME: u64 = u64::MAX;

/// Shed the red class when the controlled rate drops below this multiple of
/// the current frame's base bitrate: close to the base floor, spending the
/// scarce budget on droppable red packets only competes with the base layer
/// on a degraded path. Public so the live wire source (`pels-wire`) applies
/// the identical shedding policy.
pub const RED_SHED_HEADROOM: f64 = 1.1;
/// Within 5% of the base floor every enhancement byte is shed; only the
/// base layer flows until the rate recovers.
pub const YELLOW_SHED_HEADROOM: f64 = 1.05;

/// Sentinel in [`Packet::ack_no`] marking a retransmitted data packet
/// (whose `sent_at` is the original frame emission time and must not be
/// refreshed at transmit time).
pub const RETX_MARKER: u64 = u64::MAX;

/// The streaming source agent.
#[derive(Debug)]
pub struct PelsSource {
    cfg: SourceConfig,
    port: Port,
    cc: Cc,
    gamma: GammaController,
    filter: EpochFilter,
    frame_idx: u64,
    seq: u64,
    pending: VecDeque<Packet>,
    pace_gap: SimDuration,
    /// Packets sent per color (green, yellow, red).
    pub sent_by_color: [u64; 3],
    /// Frame packets that missed their interval and were abandoned.
    pub abandoned_packets: u64,
    /// Frames whose red enhancement was shed because the rate collapsed
    /// toward the base-layer floor.
    pub shed_red_frames: u64,
    /// Frames whose entire enhancement (yellow and red) was shed because
    /// the rate fell below the base-layer floor.
    pub shed_yellow_frames: u64,
    /// Retransmissions performed in response to NACKs.
    pub retransmissions: u64,
    /// Smoothed price p̂: EWMA of fresh feedback loss labels. `None` until
    /// the first fresh epoch.
    p_hat: Option<f64>,
    /// When the sustainable rate first dipped below the base floor.
    below_floor_since: Option<pels_netsim::time::SimTime>,
    /// When the price-implied goodput first cleared the resume threshold
    /// while starved.
    resume_ready_since: Option<pels_netsim::time::SimTime>,
    /// Whether the flow has starved itself (emits probes, not frames).
    starved: bool,
    /// Whether a PROBE timer chain is live (prevents duplicate chains
    /// across starve/resume cycles).
    probe_timer_armed: bool,
    /// Byte budget for base thinning, in bits.
    base_credit_bits: f64,
    /// Frames skipped by base thinning (rate below the floor).
    pub skipped_base_frames: u64,
    /// Frame intervals elapsed while starved (nothing emitted).
    pub starved_frames: u64,
    /// Path probes sent while starved.
    pub probes_sent: u64,
    /// Times the flow entered the starved state.
    pub starve_events: u64,
    /// Retransmission buffer: frame -> (emitted_at, per-packet (bytes, class)).
    retx_buffer: FastMap<u64, (pels_netsim::time::SimTime, Vec<(u32, u8)>)>,
    /// `(t, rate kb/s)` after each applied control step.
    pub rate_series: TimeSeries,
    /// `(t, γ)` after each applied control step.
    pub gamma_series: TimeSeries,
    /// `(t, fgs loss)` as fed to the γ controller.
    pub loss_series: TimeSeries,
    telemetry: Telemetry,
    metric: FlowMetricNames,
}

/// Per-flow telemetry metric names, formatted once at construction so the
/// per-update instrumentation never allocates.
#[derive(Debug)]
struct FlowMetricNames {
    rate: String,
    gamma: String,
    fgs_loss: String,
    epochs: String,
    stale_decays: String,
}

impl FlowMetricNames {
    fn new(flow: FlowId) -> Self {
        let f = flow.0;
        FlowMetricNames {
            rate: format!("sim.flow{f}.rate_kbps"),
            gamma: format!("sim.flow{f}.gamma"),
            fgs_loss: format!("sim.flow{f}.fgs_loss"),
            epochs: format!("sim.flow{f}.feedback_epochs"),
            stale_decays: format!("sim.flow{f}.stale_decays"),
        }
    }
}

impl PelsSource {
    /// Creates a source sending through `port` (its access link).
    pub fn new(cfg: SourceConfig, port: Port) -> Self {
        let cc = Cc::new(cfg.cc);
        let gamma = GammaController::new(cfg.gamma);
        let metric = FlowMetricNames::new(cfg.flow);
        PelsSource {
            cfg,
            port,
            cc,
            gamma,
            filter: EpochFilter::new(),
            frame_idx: 0,
            seq: 0,
            pending: VecDeque::new(),
            pace_gap: SimDuration::ZERO,
            sent_by_color: [0; 3],
            abandoned_packets: 0,
            shed_red_frames: 0,
            shed_yellow_frames: 0,
            retransmissions: 0,
            p_hat: None,
            below_floor_since: None,
            resume_ready_since: None,
            starved: false,
            probe_timer_armed: false,
            base_credit_bits: 0.0,
            skipped_base_frames: 0,
            starved_frames: 0,
            probes_sent: 0,
            starve_events: 0,
            retx_buffer: FastMap::default(),
            rate_series: TimeSeries::new("rate_kbps"),
            gamma_series: TimeSeries::new("gamma"),
            loss_series: TimeSeries::new("fgs_loss"),
            telemetry: Telemetry::disabled(),
            metric,
        }
    }

    /// Attaches a telemetry handle. A disabled handle (the default) keeps
    /// every instrumentation point a single-branch no-op.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The current congestion-controlled sending rate, bits/s.
    pub fn rate_bps(&self) -> f64 {
        self.cc.rate_bps()
    }

    /// The current partition fraction γ.
    pub fn gamma(&self) -> f64 {
        self.gamma.gamma()
    }

    /// Flow id of this source.
    pub fn flow(&self) -> FlowId {
        self.cfg.flow
    }

    /// Number of frames emitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.frame_idx
    }

    /// The MKC controller, when this source runs MKC (staleness state).
    pub fn mkc(&self) -> Option<&MkcController> {
        self.cc.mkc()
    }

    /// Whether the degradation policy has starved this flow (DESIGN.md §11).
    pub fn is_starved(&self) -> bool {
        self.starved
    }

    /// Smoothed feedback price p̂ (`None` until the first fresh epoch).
    pub fn p_hat(&self) -> Option<f64> {
        self.p_hat
    }

    /// Base bitrate of the frame about to be emitted, bits/s.
    fn current_base_floor_bps(&self) -> f64 {
        let trace = &self.cfg.trace;
        f64::from(trace.frame(self.frame_idx).base_bytes) * 8.0 * trace.fps
    }

    /// Whether fresh feedback is currently steering the controller (the
    /// degradation policy stands down under stale feedback: the PR 1
    /// watchdog owns the rate there, and a stale p̂ must not starve flows).
    fn control_is_fresh(&self) -> bool {
        self.p_hat.is_some() && self.cc.mkc().is_none_or(|m| !m.in_stale_fallback())
    }

    fn emit_frame(&mut self, ctx: &mut Context<'_>) {
        // Unsent packets from the previous frame interval have missed their
        // deadline; drop them rather than let the backlog snowball.
        self.abandoned_packets += self.pending.len() as u64;
        self.pending.clear();

        // Departure: past `stop_at` the flow is gone — stop the frame clock
        // (and with it all emission) instead of rescheduling.
        if self.cfg.stop_at.is_some_and(|t| ctx.now >= t) {
            return;
        }

        let interval = SimDuration::from_secs_f64(self.cfg.trace.frame_interval_secs());
        if self.starved {
            // Starved: the frame clock keeps running so frame numbers stay
            // aligned with wall time, but nothing is emitted.
            self.frame_idx += 1;
            self.starved_frames += 1;
            ctx.schedule_timer(interval, FRAME_TOKEN);
            return;
        }

        let trace = &self.cfg.trace;
        let spec = *trace.frame(self.frame_idx);
        // Base thinning: with the controlled rate pinned below the base
        // floor, emitting every base frame would overshoot the rate MKC
        // granted — exactly the aggregate overload behind the many-flow
        // collapse. Spend a byte budget that accrues at the controlled rate
        // and skip frames the budget cannot cover. Only fresh feedback may
        // thin: a decayed rate under stale feedback says nothing about the
        // path, and blanking video on it would be self-inflicted damage.
        if self.cfg.degradation.enabled
            && self.control_is_fresh()
            && self.cc.rate_bps() < f64::from(spec.base_bytes) * 8.0 * trace.fps
        {
            self.base_credit_bits += self.cc.rate_bps() / trace.fps;
            let base_bits = f64::from(spec.base_bytes) * 8.0;
            if self.base_credit_bits < base_bits {
                self.skipped_base_frames += 1;
                self.frame_idx += 1;
                ctx.schedule_timer(interval, FRAME_TOKEN);
                return;
            }
            self.base_credit_bits -= base_bits;
        } else {
            self.base_credit_bits = 0.0;
        }
        let mut scaled = scale_to_rate(&spec, self.cc.rate_bps(), trace.fps);
        let gamma = match self.cfg.mode {
            SourceMode::Pels => self.gamma.gamma(),
            SourceMode::BestEffort => 0.0,
        };
        let (mut yellow, mut red) = partition_enhancement(scaled.enhancement_bytes, gamma);
        // Layer shedding: when the controlled rate collapses toward the
        // base-layer floor (link failure, stale-feedback decay), drop the
        // red class first and then all enhancement, so the base layer keeps
        // flowing through the degraded path. Restores by itself once the
        // rate recovers.
        let base_floor_bps = f64::from(spec.base_bytes) * 8.0 * trace.fps;
        let rate_bps = self.cc.rate_bps();
        if rate_bps < YELLOW_SHED_HEADROOM * base_floor_bps {
            if yellow > 0 || red > 0 {
                self.shed_yellow_frames += 1;
            }
            yellow = 0;
            red = 0;
        } else if rate_bps < RED_SHED_HEADROOM * base_floor_bps && red > 0 {
            self.shed_red_frames += 1;
            red = 0;
        }
        scaled.enhancement_bytes = yellow + red;
        let plan = packetize(&scaled, yellow, red, self.cfg.packet_bytes);
        let total = plan.len() as u16;
        let base = plan.iter().filter(|p| p.segment == pels_fgs::Segment::Base).count() as u16;
        for pp in &plan {
            let color = Color::from(pp.segment);
            let mut pkt = Packet::data(self.cfg.flow, ctx.self_id, self.cfg.dst, pp.bytes)
                .with_class(color.class())
                .with_seq(self.seq)
                .with_frame(FrameTag { frame: self.frame_idx, index: pp.index, total, base })
                .with_id(ctx.alloc_packet_id());
            pkt.sent_at = ctx.now; // refreshed at actual transmit time
            self.seq += 1;
            self.pending.push_back(pkt);
        }
        if let Some(arq) = self.cfg.arq {
            let meta = plan.iter().map(|pp| (pp.bytes, Color::from(pp.segment).class())).collect();
            self.retx_buffer.insert(self.frame_idx, (ctx.now, meta));
            self.retx_buffer.retain(|&f, _| f + arq.buffer_frames > self.frame_idx);
        }
        self.frame_idx += 1;
        // Pace the frame's packets evenly across the interval (first packet
        // leaves immediately, the last one a gap before the next frame).
        self.pace_gap = interval / plan.len() as u64;
        ctx.schedule_timer(SimDuration::ZERO, PACE_TOKEN);
        ctx.schedule_timer(interval, FRAME_TOKEN);
    }

    fn pace_one(&mut self, ctx: &mut Context<'_>) {
        let Some(mut pkt) = self.pending.pop_front() else {
            return;
        };
        if pkt.ack_no != RETX_MARKER {
            pkt.sent_at = ctx.now;
        }
        pkt.rate_echo = self.cc.rate_bps();
        if let Some(color) = Color::from_class(pkt.class) {
            self.sent_by_color[color.class() as usize] += 1;
        }
        self.port.send(pkt, ctx);
        if !self.pending.is_empty() {
            ctx.schedule_timer(self.pace_gap, PACE_TOKEN);
        }
    }

    /// Answers a NACK by re-queueing the requested packet at the head of
    /// the pacing queue. The retransmission keeps the *original* frame
    /// emission time as `sent_at`, so receiver-side deadline accounting
    /// sees the full decode latency (original wait + NACK round trip).
    fn handle_nack(&mut self, nack: &Packet, ctx: &mut Context<'_>) {
        let Some(tag) = nack.frame else { return };
        let Some((emitted_at, meta)) = self.retx_buffer.get(&tag.frame) else {
            return; // frame already evicted: the data is gone
        };
        let Some(&(bytes, class)) = meta.get(tag.index as usize) else {
            return;
        };
        let mut pkt = Packet::data(self.cfg.flow, ctx.self_id, self.cfg.dst, bytes)
            .with_class(class)
            .with_seq(self.seq)
            .with_frame(tag)
            .with_id(ctx.alloc_packet_id());
        pkt.sent_at = *emitted_at;
        pkt.ack_no = RETX_MARKER;
        self.seq += 1;
        self.retransmissions += 1;
        let was_idle = self.pending.is_empty();
        self.pending.push_front(pkt);
        if was_idle {
            ctx.schedule_timer(SimDuration::ZERO, PACE_TOKEN);
        }
    }

    /// Advances the starvation state machine on one fresh feedback epoch.
    ///
    /// A flow starves itself when its *sustainable* goodput `r·(1 − p̂)`
    /// sits below the base floor for the configured patience: the
    /// bottleneck cannot carry even its base layer, and continuing to emit
    /// green only corrupts every other flow's base. Starved flows probe the
    /// path and resume once the goodput the smoothed price implies clears
    /// the floor with `resume_headroom` margin. The implied goodput
    /// `(α/β)·(1 − p̂)/p̂` is used rather than the flow's own `r·(1 − p̂)`:
    /// probes arrive slower than the stale timeout, so the watchdog pins a
    /// starved flow's rate near the minimum, while at the MKC fixed point
    /// the implied form equals the admitted set's fair share `C/M` exactly.
    /// An admitted-set equilibrium at capacity keeps `C/M` below the resume
    /// threshold, so the set is stable rather than oscillating.
    fn update_degradation(&mut self, loss: f64, ctx: &mut Context<'_>) {
        let deg = self.cfg.degradation;
        if !deg.enabled {
            return;
        }
        let sample = loss.clamp(-1.0, 1.0);
        let p_hat = match self.p_hat {
            Some(prev) => prev + deg.smoothing * (sample - prev),
            None => sample,
        };
        self.p_hat = Some(p_hat);
        let id = u64::from(self.cfg.flow.0);
        if self.starved {
            if self.implied_goodput_bps(p_hat)
                >= deg.resume_headroom * self.current_base_floor_bps()
            {
                let since = *self.resume_ready_since.get_or_insert(ctx.now);
                let stagger = deg.resume_step.saturating_mul(id);
                if ctx.now.duration_since(since) >= deg.resume_hold + stagger {
                    self.starved = false;
                    self.resume_ready_since = None;
                    self.base_credit_bits = 0.0;
                    // The FRAME timer kept running; the next tick emits.
                }
            } else {
                self.resume_ready_since = None;
            }
        } else {
            let sustainable = self.cc.rate_bps() * (1.0 - p_hat.max(0.0));
            if sustainable < deg.floor_headroom * self.current_base_floor_bps() {
                let since = *self.below_floor_since.get_or_insert(ctx.now);
                let stagger = deg.patience_step.saturating_mul(id);
                if ctx.now.duration_since(since) >= deg.patience + stagger {
                    self.starve(ctx);
                }
            } else {
                self.below_floor_since = None;
            }
        }
    }

    /// The goodput the smoothed price implies for a flow joining the
    /// admitted set: the MKC fixed point under `p̂` is `r = α/(β·p̂)`, so
    /// goodput `r·(1 − p̂)` becomes `(α/β)·(1 − p̂)/p̂`. A non-positive
    /// price implies unbounded goodput (spare capacity). Falls back to the
    /// flow's own `r·(1 − p̂)` for non-MKC controllers.
    fn implied_goodput_bps(&self, p_hat: f64) -> f64 {
        match self.cc.mkc() {
            Some(m) if p_hat > 0.0 => {
                let cfg = m.config();
                cfg.alpha_bps / cfg.beta * (1.0 - p_hat) / p_hat
            }
            Some(_) => f64::INFINITY,
            None => self.cc.rate_bps() * (1.0 - p_hat.max(0.0)),
        }
    }

    fn starve(&mut self, ctx: &mut Context<'_>) {
        self.starved = true;
        self.starve_events += 1;
        self.below_floor_since = None;
        self.resume_ready_since = None;
        self.abandoned_packets += self.pending.len() as u64;
        self.pending.clear();
        self.base_credit_bits = 0.0;
        if !self.probe_timer_armed {
            self.probe_timer_armed = true;
            ctx.schedule_timer(self.cfg.degradation.probe_interval, PROBE_TOKEN);
        }
    }

    /// One green probe packet soliciting a feedback label while starved.
    /// Tagged with the [`PROBE_FRAME`] sentinel so receivers ACK it without
    /// counting it as video data.
    fn send_probe(&mut self, ctx: &mut Context<'_>) {
        let tag = FrameTag { frame: PROBE_FRAME, index: 0, total: 1, base: 1 };
        let mut pkt = Packet::data(self.cfg.flow, ctx.self_id, self.cfg.dst, self.cfg.packet_bytes)
            .with_class(Color::Green.class())
            .with_seq(self.seq)
            .with_frame(tag)
            .with_id(ctx.alloc_packet_id());
        pkt.sent_at = ctx.now;
        pkt.rate_echo = self.cc.rate_bps();
        self.seq += 1;
        self.probes_sent += 1;
        self.port.send(pkt, ctx);
    }

    fn apply_feedback(&mut self, pkt: &Packet, ctx: &mut Context<'_>) {
        let Some(fb) = pkt.feedback else { return };
        if !self.filter.accept(&fb) {
            return;
        }
        // Eq. 8 base r(k - D): the rate echoed through the ACK, i.e. the
        // rate in effect when the acknowledged packet was sent.
        self.cc.update_from(pkt.rate_echo, fb.loss);
        if let Some(m) = self.cc.mkc_mut() {
            m.record_fresh(ctx.now);
        }
        if self.cfg.mode == SourceMode::Pels {
            self.gamma.update(fb.fgs_loss);
            self.update_degradation(fb.loss, ctx);
        }
        if self.cfg.keep_series {
            let t = ctx.now.as_secs_f64();
            self.rate_series.push(t, self.cc.rate_bps() / 1_000.0);
            self.gamma_series.push(t, self.gamma.gamma());
            self.loss_series.push(t, fb.fgs_loss);
        }
        if self.telemetry.is_enabled() {
            let t = ctx.now.as_secs_f64();
            self.telemetry.counter_add(&self.metric.epochs, 1);
            self.telemetry.sample(&self.metric.rate, t, self.cc.rate_bps() / 1_000.0);
            self.telemetry.sample(&self.metric.gamma, t, self.gamma.gamma());
            self.telemetry.sample(&self.metric.fgs_loss, t, fb.fgs_loss);
        }
    }
}

impl Agent for PelsSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.schedule_timer(self.cfg.start_at, START_TOKEN);
        if let Some(m) = self.cc.mkc() {
            // Stale-feedback watchdog: checked every quarter timeout so a
            // fault is detected within 1.25 timeouts of the last fresh epoch.
            let period = m.config().stale_timeout / 4;
            ctx.schedule_timer(self.cfg.start_at + period, WATCHDOG_TOKEN);
        }
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if packet.flow != self.cfg.flow {
            return;
        }
        match packet.kind {
            PacketKind::Ack => self.apply_feedback(&packet, ctx),
            PacketKind::Nack if self.cfg.arq.is_some() => self.handle_nack(&packet, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        match token {
            START_TOKEN | FRAME_TOKEN => self.emit_frame(ctx),
            PACE_TOKEN => self.pace_one(ctx),
            PROBE_TOKEN => {
                if self.starved {
                    self.send_probe(ctx);
                    ctx.schedule_timer(self.cfg.degradation.probe_interval, PROBE_TOKEN);
                } else {
                    self.probe_timer_armed = false;
                }
            }
            WATCHDOG_TOKEN => {
                if let Some(m) = self.cc.mkc_mut() {
                    let decayed = m.apply_staleness(ctx.now);
                    let (rate, period) = (m.rate_bps(), m.config().stale_timeout / 4);
                    if decayed {
                        // A stale gap says nothing about the path: patience
                        // accrued before it must not carry across.
                        self.below_floor_since = None;
                        if self.cfg.keep_series {
                            self.rate_series.push(ctx.now.as_secs_f64(), rate / 1_000.0);
                        }
                        self.telemetry.counter_add(&self.metric.stale_decays, 1);
                        self.telemetry.sample(
                            &self.metric.rate,
                            ctx.now.as_secs_f64(),
                            rate / 1_000.0,
                        );
                    }
                    ctx.schedule_timer(period, WATCHDOG_TOKEN);
                }
            }
            other => unreachable!("unknown timer token {other}"),
        }
    }

    fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
        self.port.on_tx_complete(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_fgs::frame::foreman;
    use pels_netsim::disc::{DropTail, QueueLimit};
    use pels_netsim::packet::Feedback;
    use pels_netsim::sim::Simulator;
    use pels_netsim::time::{Rate, SimTime};

    struct Recorder {
        got: Vec<Packet>,
        reply_feedback: Option<Feedback>,
    }
    impl Agent for Recorder {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            if p.kind == PacketKind::Data {
                let mut ack = Packet::ack_for(&p, 40).with_id(ctx.alloc_packet_id());
                if let Some(fb) = self.reply_feedback {
                    ack.feedback = Some(fb);
                }
                ctx.deliver(ack.dst, SimDuration::from_millis(1), ack);
                self.got.push(p);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn source_cfg(dst: AgentId) -> SourceConfig {
        SourceConfig {
            flow: FlowId(1),
            dst,
            start_at: SimDuration::ZERO,
            stop_at: None,
            trace: VideoTrace::constant(30, 10.0, 1_600, 10_000),
            cc: CcSpec::default(),
            gamma: GammaConfig::default(),
            packet_bytes: 500,
            mode: SourceMode::Pels,
            arq: None,
            degradation: DegradationConfig::default(),
            keep_series: true,
        }
    }

    fn build(mode: SourceMode, reply_feedback: Option<Feedback>) -> (Simulator, AgentId, AgentId) {
        let mut sim = Simulator::new(5);
        let src_id = AgentId(0);
        let dst_id = AgentId(1);
        let port = Port::new(
            0,
            dst_id,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(1000))),
        );
        let cfg = SourceConfig { mode, ..source_cfg(dst_id) };
        sim.add_agent(Box::new(PelsSource::new(cfg, port)));
        sim.add_agent(Box::new(Recorder { got: vec![], reply_feedback }));
        (sim, src_id, dst_id)
    }

    #[test]
    fn emits_frames_at_frame_rate() {
        let (mut sim, src, dst) = build(SourceMode::Pels, None);
        sim.run_until(SimTime::from_secs_f64(1.05));
        // 10 fps for ~1s: 11 frame emissions (t=0 included).
        assert_eq!(sim.agent::<PelsSource>(src).frames_sent(), 11);
        let got = &sim.agent::<Recorder>(dst).got;
        // Initial rate 128 kb/s == base bitrate: base-only frames.
        let frames: std::collections::HashSet<u64> =
            got.iter().map(|p| p.frame.unwrap().frame).collect();
        assert!(frames.len() >= 10);
        assert!(got.iter().all(|p| p.class == 0), "base-only at 128 kb/s");
    }

    #[test]
    fn frame_tags_are_consistent() {
        let (mut sim, _src, dst) = build(SourceMode::Pels, None);
        sim.run_until(SimTime::from_secs_f64(0.5));
        for p in &sim.agent::<Recorder>(dst).got {
            let tag = p.frame.expect("video packets carry frame tags");
            assert!(tag.index < tag.total);
            assert!(tag.base <= tag.total);
        }
    }

    #[test]
    fn no_feedback_keeps_initial_rate() {
        // Without any feedback labels the control loop never fires: the
        // source keeps streaming at its initial rate.
        let (mut sim, src, _dst) = build(SourceMode::Pels, None);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let s = sim.agent::<PelsSource>(src);
        assert!((s.rate_bps() - 128_000.0).abs() < 1.0, "no feedback, no change");
        assert_eq!(s.rate_series.len(), 0);
    }

    #[test]
    fn stale_epochs_do_not_drive_control() {
        let (mut sim, src, dst) =
            build(SourceMode::Pels, Some(Feedback::new(AgentId(7), 5, -1.0, 0.0)));
        // Stop before the 300 ms stale timeout: this test isolates the
        // epoch filter, not the staleness watchdog.
        sim.run_until(SimTime::from_secs_f64(0.25));
        let s = sim.agent::<PelsSource>(src);
        // Every ACK carries the same epoch 5: exactly one MKC step applies.
        // One step from 128k with p=-1: 128k + 20k + 0.5*128k = 212k.
        assert!((s.rate_bps() - 212_000.0).abs() < 1.0, "rate {}", s.rate_bps());
        assert_eq!(s.rate_series.len(), 1);
        let _ = dst;
    }

    #[test]
    fn watchdog_decays_rate_when_feedback_goes_stale() {
        // One fresh epoch arrives early, then only duplicates: after the
        // stale timeout the watchdog multiplicatively decreases the rate
        // down to the configured floor.
        let (mut sim, src, _dst) =
            build(SourceMode::Pels, Some(Feedback::new(AgentId(7), 5, -1.0, 0.0)));
        sim.run_until(SimTime::from_secs_f64(2.0));
        let s = sim.agent::<PelsSource>(src);
        let m = s.mkc().expect("default CC is MKC");
        assert!(m.in_stale_fallback(), "stale for ~1.7 s");
        assert!(m.stale_decays() > 5);
        assert!(
            (s.rate_bps() - 64_000.0).abs() < 1.0,
            "decayed to the 64 kb/s floor, got {}",
            s.rate_bps()
        );
    }

    #[test]
    fn sheds_red_then_yellow_as_rate_nears_base_floor() {
        // Base bitrate is 128 kb/s (1600 B at 10 fps). At 135 kb/s the
        // source is inside the red-shed band (< 1.1×base); at 130 kb/s it
        // is inside the yellow-shed band (< 1.05×base).
        for (kbps, expect_red_shed, expect_yellow_shed) in
            [(135.0, true, false), (130.0, false, true)]
        {
            let mut sim = Simulator::new(5);
            let dst_id = AgentId(1);
            let port = Port::new(
                0,
                dst_id,
                Rate::from_mbps(10.0),
                SimDuration::from_millis(1),
                Box::new(DropTail::new(QueueLimit::Packets(1000))),
            );
            let cfg = SourceConfig {
                cc: CcSpec::Mkc(MkcConfig { initial: Rate::from_kbps(kbps), ..Default::default() }),
                ..source_cfg(dst_id)
            };
            sim.add_agent(Box::new(PelsSource::new(cfg, port)));
            sim.add_agent(Box::new(Recorder { got: vec![], reply_feedback: None }));
            sim.run_until(SimTime::from_secs_f64(1.0));
            let s = sim.agent::<PelsSource>(AgentId(0));
            assert_eq!(s.sent_by_color[2], 0, "red shed at {kbps} kb/s");
            assert_eq!(s.shed_red_frames > 0, expect_red_shed, "{kbps} kb/s");
            assert_eq!(s.shed_yellow_frames > 0, expect_yellow_shed, "{kbps} kb/s");
            if expect_red_shed {
                assert!(s.sent_by_color[1] > 0, "yellow still flows in the red-shed band");
            }
            if expect_yellow_shed {
                assert_eq!(s.sent_by_color[1], 0, "base-only below the yellow-shed floor");
            }
        }
    }

    /// ACKs every data packet with a fresh (incrementing) epoch; the loss
    /// label flips from `loss_before` to `loss_after` at `switch_at`.
    struct EpochRecorder {
        got: Vec<Packet>,
        epoch: u64,
        loss_before: f64,
        loss_after: f64,
        switch_at: SimTime,
    }
    impl Agent for EpochRecorder {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            if p.kind == PacketKind::Data {
                self.epoch += 1;
                let loss =
                    if ctx.now < self.switch_at { self.loss_before } else { self.loss_after };
                let mut ack = Packet::ack_for(&p, 40).with_id(ctx.alloc_packet_id());
                ack.feedback = Some(Feedback::new(AgentId(7), self.epoch, loss, 0.0));
                ctx.deliver(ack.dst, SimDuration::from_millis(1), ack);
                self.got.push(p);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build_with_price(
        degradation: DegradationConfig,
        loss_before: f64,
        loss_after: f64,
        switch_at_s: f64,
    ) -> Simulator {
        let mut sim = Simulator::new(5);
        let dst_id = AgentId(1);
        let port = Port::new(
            0,
            dst_id,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(1000))),
        );
        let cfg = SourceConfig { degradation, ..source_cfg(dst_id) };
        sim.add_agent(Box::new(PelsSource::new(cfg, port)));
        sim.add_agent(Box::new(EpochRecorder {
            got: vec![],
            epoch: 0,
            loss_before,
            loss_after,
            switch_at: SimTime::from_secs_f64(switch_at_s),
        }));
        sim
    }

    #[test]
    fn thins_base_frames_when_rate_pinned_below_floor() {
        // A constant price p = 0.5 pins MKC at its 80 kb/s fixed point
        // (r = 0.75·r + 20k), below the 128 kb/s base floor. With
        // starvation patience pushed out of reach, base thinning must hold
        // the emitted green load to the controlled rate by skipping frames.
        let deg =
            DegradationConfig { patience: SimDuration::from_secs_f64(1e6), ..Default::default() };
        let mut sim = build_with_price(deg, 0.5, 0.5, f64::MAX);
        sim.run_until(SimTime::from_secs_f64(10.0));
        let s = sim.agent::<PelsSource>(AgentId(0));
        assert!((s.rate_bps() - 80_000.0).abs() < 8_000.0, "rate {}", s.rate_bps());
        assert!(!s.is_starved(), "patience out of reach");
        // ~100 frame slots at 10 fps; the 80/128 byte budget passes ~62.
        let emitted = s.frames_sent() - s.skipped_base_frames;
        assert!(s.skipped_base_frames > 20, "skipped {}", s.skipped_base_frames);
        assert!((45..80).contains(&emitted), "emitted {emitted}");
    }

    #[test]
    fn starves_after_patience_and_resumes_on_negative_price() {
        // Price 0.5 caps sustainable goodput at half the (80 kb/s) rate —
        // far below the base floor — so after the 1 s patience the flow
        // must starve itself and switch to probing. When the price turns
        // negative (spare capacity) at t = 3 s, the probes see it and the
        // flow must resume.
        let mut sim = build_with_price(DegradationConfig::default(), 0.5, -0.5, 3.0);
        sim.run_until(SimTime::from_secs_f64(2.5));
        {
            let s = sim.agent::<PelsSource>(AgentId(0));
            assert!(s.is_starved(), "sustainable < floor for > patience");
            assert_eq!(s.starve_events, 1);
            assert!(s.probes_sent > 0, "starved flows probe the path");
            assert!(s.starved_frames > 0);
            assert!(s.frames_sent() > 20, "frame clock keeps running while starved");
        }
        sim.run_until(SimTime::from_secs_f64(12.0));
        let s = sim.agent::<PelsSource>(AgentId(0));
        assert!(!s.is_starved(), "negative price resumes the flow");
        assert!(s.rate_bps() > 128_000.0, "rate recovered past the floor");
        let got = &sim.agent::<EpochRecorder>(AgentId(1)).got;
        let resumed_video = got
            .iter()
            .filter(|p| p.frame.unwrap().frame != PROBE_FRAME)
            .any(|p| p.sent_at > SimTime::from_secs_f64(8.0));
        assert!(resumed_video, "video flows again after resume");
    }

    #[test]
    fn degradation_stands_down_under_stale_feedback() {
        // One fresh epoch, then silence: the watchdog decays the rate to
        // the 64 kb/s floor, but a stale p̂ must neither thin nor starve —
        // blanking video on information-free feedback is self-harm.
        // (A frame or two may thin in the short fresh window before the
        // stale timeout; what matters is that nothing thins after it.)
        let (mut sim, src, _dst) =
            build(SourceMode::Pels, Some(Feedback::new(AgentId(7), 5, 0.5, 0.0)));
        sim.run_until(SimTime::from_secs_f64(1.0));
        let skipped_while_fresh = sim.agent::<PelsSource>(src).skipped_base_frames;
        sim.run_until(SimTime::from_secs_f64(4.0));
        let s = sim.agent::<PelsSource>(src);
        assert!(s.mkc().expect("default CC is MKC").in_stale_fallback());
        assert!(s.rate_bps() < 128_000.0, "decayed below the floor");
        assert_eq!(s.skipped_base_frames, skipped_while_fresh, "no thinning once stale");
        assert!(!s.is_starved(), "no starvation under stale feedback");
        assert_eq!(s.frames_sent(), 41, "the frame clock keeps running");
    }

    #[test]
    fn disabled_degradation_reproduces_the_collapse_behavior() {
        let deg = DegradationConfig { enabled: false, ..Default::default() };
        let mut sim = build_with_price(deg, 0.5, 0.5, f64::MAX);
        sim.run_until(SimTime::from_secs_f64(5.0));
        let s = sim.agent::<PelsSource>(AgentId(0));
        assert_eq!(s.skipped_base_frames, 0);
        assert_eq!(s.starve_events, 0);
        assert!(!s.is_starved());
    }

    #[test]
    fn best_effort_mode_sends_no_red_and_keeps_gamma_idle() {
        let (mut sim, src, dst) =
            build(SourceMode::BestEffort, Some(Feedback::new(AgentId(7), 1, -1.0, 0.2)));
        sim.run_until(SimTime::from_secs_f64(2.0));
        let s = sim.agent::<PelsSource>(src);
        assert_eq!(s.sent_by_color[2], 0, "best-effort sends no red");
        // Gamma was never updated in BestEffort mode.
        assert!((s.gamma() - 0.5).abs() < 1e-12);
        let got = &sim.agent::<Recorder>(dst).got;
        assert!(got.iter().all(|p| p.class <= 1));
    }

    #[test]
    fn pacing_spreads_packets_within_the_interval() {
        let (mut sim, _src, dst) = build(SourceMode::Pels, None);
        sim.run_until(SimTime::from_secs_f64(0.35));
        let got = &sim.agent::<Recorder>(dst).got;
        // Packets of frame 1 (t in [0.1, 0.2)) are spaced, not a burst.
        let f1: Vec<f64> = got
            .iter()
            .filter(|p| p.frame.unwrap().frame == 1)
            .map(|p| p.sent_at.as_secs_f64())
            .collect();
        assert!(f1.len() >= 3);
        let gaps: Vec<f64> = f1.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().all(|&g| g > 0.005), "gaps {gaps:?}");
    }

    #[test]
    fn paper_trace_base_is_21_green_packets() {
        // With the paper-literal Foreman trace, a base-only frame is 21
        // green packets of 500 bytes.
        let mut sim = Simulator::new(5);
        let dst_id = AgentId(1);
        let port = Port::new(
            0,
            dst_id,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(1000))),
        );
        let cfg = SourceConfig {
            trace: foreman::trace(),
            cc: CcSpec::Mkc(MkcConfig {
                initial: Rate::from_kbps(840.0), // exactly the base bitrate
                ..Default::default()
            }),
            ..source_cfg(dst_id)
        };
        sim.add_agent(Box::new(PelsSource::new(cfg, port)));
        sim.add_agent(Box::new(Recorder { got: vec![], reply_feedback: None }));
        sim.run_until(SimTime::from_secs_f64(0.55));
        let got = &sim.agent::<Recorder>(dst_id).got;
        let frame0: Vec<_> = got.iter().filter(|p| p.frame.unwrap().frame == 0).collect();
        assert_eq!(frame0.len(), 21);
        assert!(frame0.iter().all(|p| p.class == 0 && p.size_bytes == 500));
    }
}
