//! The PELS streaming source agent.
//!
//! Once per frame interval the source scales the FGS frame to its current
//! MKC rate (Section 2.3/[5]), partitions the enhancement bytes into yellow
//! and red according to γ (Section 4.2, Fig. 4 right), packetizes, and paces
//! the packets evenly across the frame interval. Feedback arrives in ACKs;
//! each *fresh* epoch (Section 5.2) drives one MKC step (Eq. 8) and one γ
//! step (Eq. 4).

use crate::aimd::{AimdConfig, AimdController};
use crate::color::Color;
use crate::feedback::EpochFilter;
use crate::gamma::{GammaConfig, GammaController};
use crate::mkc::{MkcConfig, MkcController};
use crate::tfrc::{TfrcConfig, TfrcController};
use pels_fgs::frame::VideoTrace;
use pels_fgs::packetize::packetize;
use pels_fgs::scaling::{partition_enhancement, scale_to_rate};
use pels_netsim::packet::{AgentId, FlowId, FrameTag, Packet, PacketKind};
use pels_netsim::port::Port;
use pels_netsim::sim::{Agent, Context};
use pels_netsim::stats::TimeSeries;
use pels_netsim::time::SimDuration;
use pels_telemetry::Telemetry;
use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// How the source marks its enhancement packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SourceMode {
    /// PELS: yellow/red partition driven by the γ controller.
    Pels,
    /// Best-effort comparator: the whole enhancement layer is one class
    /// (yellow); γ is irrelevant.
    BestEffort,
}

/// Which congestion controller a source runs. PELS itself is independent
/// of the choice (paper Section 5) — AIMD is provided for the ablation
/// demonstrating exactly that.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CcSpec {
    /// Max-min Kelly Control (the paper's choice).
    Mkc(MkcConfig),
    /// Additive increase, multiplicative decrease.
    Aimd(AimdConfig),
    /// TFRC-style equation-based control.
    Tfrc(TfrcConfig),
}

impl Default for CcSpec {
    fn default() -> Self {
        CcSpec::Mkc(MkcConfig::default())
    }
}

#[derive(Debug)]
enum Cc {
    Mkc(MkcController),
    Aimd(AimdController),
    Tfrc(TfrcController),
}

impl Cc {
    fn new(spec: CcSpec) -> Self {
        match spec {
            CcSpec::Mkc(cfg) => Cc::Mkc(MkcController::new(cfg)),
            CcSpec::Aimd(cfg) => Cc::Aimd(AimdController::new(cfg)),
            CcSpec::Tfrc(cfg) => Cc::Tfrc(TfrcController::new(cfg)),
        }
    }

    fn rate_bps(&self) -> f64 {
        match self {
            Cc::Mkc(m) => m.rate_bps(),
            Cc::Aimd(a) => a.rate_bps(),
            Cc::Tfrc(t) => t.rate_bps(),
        }
    }

    fn update_from(&mut self, base_bps: f64, p: f64) -> f64 {
        match self {
            Cc::Mkc(m) => m.update_from(base_bps, p),
            Cc::Aimd(a) => a.update(p),
            Cc::Tfrc(t) => t.update(p),
        }
    }

    fn mkc(&self) -> Option<&MkcController> {
        match self {
            Cc::Mkc(m) => Some(m),
            _ => None,
        }
    }

    fn mkc_mut(&mut self) -> Option<&mut MkcController> {
        match self {
            Cc::Mkc(m) => Some(m),
            _ => None,
        }
    }
}

/// Retransmission (ARQ) configuration for the comparator experiments.
///
/// The paper argues *against* retransmission-based streaming (Section 1:
/// under congestion "even the retransmitted packets are dropped in the same
/// congested queues ... [and] miss their decoding deadlines"). Enabling ARQ
/// lets the harness measure exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ArqConfig {
    /// How many recent frames to keep retransmittable.
    pub buffer_frames: u64,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig { buffer_frames: 8 }
    }
}

/// Configuration of a [`PelsSource`].
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// Flow identifier (must be unique per source).
    pub flow: FlowId,
    /// The receiving agent.
    pub dst: AgentId,
    /// When the flow starts, relative to simulation start.
    pub start_at: SimDuration,
    /// The video being streamed (looped).
    pub trace: VideoTrace,
    /// Congestion controller and its gains.
    pub cc: CcSpec,
    /// Partition-controller gains.
    pub gamma: GammaConfig,
    /// Wire packet size (paper: 500 bytes).
    pub packet_bytes: u32,
    /// Marking mode.
    pub mode: SourceMode,
    /// Optional ARQ: answer NACKs with retransmissions.
    pub arq: Option<ArqConfig>,
    /// Whether to retain per-step time series (rate, γ, feedback).
    pub keep_series: bool,
}

const START_TOKEN: u64 = 0;
const FRAME_TOKEN: u64 = 1;
const PACE_TOKEN: u64 = 2;
/// Periodic stale-feedback watchdog (MKC sources only).
const WATCHDOG_TOKEN: u64 = 3;

/// Shed the red class when the controlled rate drops below this multiple of
/// the current frame's base bitrate: close to the base floor, spending the
/// scarce budget on droppable red packets only competes with the base layer
/// on a degraded path. Public so the live wire source (`pels-wire`) applies
/// the identical shedding policy.
pub const RED_SHED_HEADROOM: f64 = 1.1;
/// Within 5% of the base floor every enhancement byte is shed; only the
/// base layer flows until the rate recovers.
pub const YELLOW_SHED_HEADROOM: f64 = 1.05;

/// Sentinel in [`Packet::ack_no`] marking a retransmitted data packet
/// (whose `sent_at` is the original frame emission time and must not be
/// refreshed at transmit time).
pub const RETX_MARKER: u64 = u64::MAX;

/// The streaming source agent.
#[derive(Debug)]
pub struct PelsSource {
    cfg: SourceConfig,
    port: Port,
    cc: Cc,
    gamma: GammaController,
    filter: EpochFilter,
    frame_idx: u64,
    seq: u64,
    pending: VecDeque<Packet>,
    pace_gap: SimDuration,
    /// Packets sent per color (green, yellow, red).
    pub sent_by_color: [u64; 3],
    /// Frame packets that missed their interval and were abandoned.
    pub abandoned_packets: u64,
    /// Frames whose red enhancement was shed because the rate collapsed
    /// toward the base-layer floor.
    pub shed_red_frames: u64,
    /// Frames whose entire enhancement (yellow and red) was shed because
    /// the rate fell below the base-layer floor.
    pub shed_yellow_frames: u64,
    /// Retransmissions performed in response to NACKs.
    pub retransmissions: u64,
    /// Retransmission buffer: frame -> (emitted_at, per-packet (bytes, class)).
    retx_buffer: HashMap<u64, (pels_netsim::time::SimTime, Vec<(u32, u8)>)>,
    /// `(t, rate kb/s)` after each applied control step.
    pub rate_series: TimeSeries,
    /// `(t, γ)` after each applied control step.
    pub gamma_series: TimeSeries,
    /// `(t, fgs loss)` as fed to the γ controller.
    pub loss_series: TimeSeries,
    telemetry: Telemetry,
    metric: FlowMetricNames,
}

/// Per-flow telemetry metric names, formatted once at construction so the
/// per-update instrumentation never allocates.
#[derive(Debug)]
struct FlowMetricNames {
    rate: String,
    gamma: String,
    fgs_loss: String,
    epochs: String,
    stale_decays: String,
}

impl FlowMetricNames {
    fn new(flow: FlowId) -> Self {
        let f = flow.0;
        FlowMetricNames {
            rate: format!("sim.flow{f}.rate_kbps"),
            gamma: format!("sim.flow{f}.gamma"),
            fgs_loss: format!("sim.flow{f}.fgs_loss"),
            epochs: format!("sim.flow{f}.feedback_epochs"),
            stale_decays: format!("sim.flow{f}.stale_decays"),
        }
    }
}

impl PelsSource {
    /// Creates a source sending through `port` (its access link).
    pub fn new(cfg: SourceConfig, port: Port) -> Self {
        let cc = Cc::new(cfg.cc);
        let gamma = GammaController::new(cfg.gamma);
        let metric = FlowMetricNames::new(cfg.flow);
        PelsSource {
            cfg,
            port,
            cc,
            gamma,
            filter: EpochFilter::new(),
            frame_idx: 0,
            seq: 0,
            pending: VecDeque::new(),
            pace_gap: SimDuration::ZERO,
            sent_by_color: [0; 3],
            abandoned_packets: 0,
            shed_red_frames: 0,
            shed_yellow_frames: 0,
            retransmissions: 0,
            retx_buffer: HashMap::new(),
            rate_series: TimeSeries::new("rate_kbps"),
            gamma_series: TimeSeries::new("gamma"),
            loss_series: TimeSeries::new("fgs_loss"),
            telemetry: Telemetry::disabled(),
            metric,
        }
    }

    /// Attaches a telemetry handle. A disabled handle (the default) keeps
    /// every instrumentation point a single-branch no-op.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The current congestion-controlled sending rate, bits/s.
    pub fn rate_bps(&self) -> f64 {
        self.cc.rate_bps()
    }

    /// The current partition fraction γ.
    pub fn gamma(&self) -> f64 {
        self.gamma.gamma()
    }

    /// Flow id of this source.
    pub fn flow(&self) -> FlowId {
        self.cfg.flow
    }

    /// Number of frames emitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.frame_idx
    }

    /// The MKC controller, when this source runs MKC (staleness state).
    pub fn mkc(&self) -> Option<&MkcController> {
        self.cc.mkc()
    }

    fn emit_frame(&mut self, ctx: &mut Context<'_>) {
        // Unsent packets from the previous frame interval have missed their
        // deadline; drop them rather than let the backlog snowball.
        self.abandoned_packets += self.pending.len() as u64;
        self.pending.clear();

        let trace = &self.cfg.trace;
        let spec = *trace.frame(self.frame_idx);
        let mut scaled = scale_to_rate(&spec, self.cc.rate_bps(), trace.fps);
        let gamma = match self.cfg.mode {
            SourceMode::Pels => self.gamma.gamma(),
            SourceMode::BestEffort => 0.0,
        };
        let (mut yellow, mut red) = partition_enhancement(scaled.enhancement_bytes, gamma);
        // Layer shedding: when the controlled rate collapses toward the
        // base-layer floor (link failure, stale-feedback decay), drop the
        // red class first and then all enhancement, so the base layer keeps
        // flowing through the degraded path. Restores by itself once the
        // rate recovers.
        let base_floor_bps = f64::from(spec.base_bytes) * 8.0 * trace.fps;
        let rate_bps = self.cc.rate_bps();
        if rate_bps < YELLOW_SHED_HEADROOM * base_floor_bps {
            if yellow > 0 || red > 0 {
                self.shed_yellow_frames += 1;
            }
            yellow = 0;
            red = 0;
        } else if rate_bps < RED_SHED_HEADROOM * base_floor_bps && red > 0 {
            self.shed_red_frames += 1;
            red = 0;
        }
        scaled.enhancement_bytes = yellow + red;
        let plan = packetize(&scaled, yellow, red, self.cfg.packet_bytes);
        let total = plan.len() as u16;
        let base = plan.iter().filter(|p| p.segment == pels_fgs::Segment::Base).count() as u16;
        for pp in &plan {
            let color = Color::from(pp.segment);
            let mut pkt = Packet::data(self.cfg.flow, ctx.self_id, self.cfg.dst, pp.bytes)
                .with_class(color.class())
                .with_seq(self.seq)
                .with_frame(FrameTag { frame: self.frame_idx, index: pp.index, total, base })
                .with_id(ctx.alloc_packet_id());
            pkt.sent_at = ctx.now; // refreshed at actual transmit time
            self.seq += 1;
            self.pending.push_back(pkt);
        }
        if let Some(arq) = self.cfg.arq {
            let meta = plan.iter().map(|pp| (pp.bytes, Color::from(pp.segment).class())).collect();
            self.retx_buffer.insert(self.frame_idx, (ctx.now, meta));
            self.retx_buffer.retain(|&f, _| f + arq.buffer_frames > self.frame_idx);
        }
        self.frame_idx += 1;
        // Pace the frame's packets evenly across the interval (first packet
        // leaves immediately, the last one a gap before the next frame).
        let interval = SimDuration::from_secs_f64(trace.frame_interval_secs());
        self.pace_gap = interval / plan.len() as u64;
        ctx.schedule_timer(SimDuration::ZERO, PACE_TOKEN);
        ctx.schedule_timer(interval, FRAME_TOKEN);
    }

    fn pace_one(&mut self, ctx: &mut Context<'_>) {
        let Some(mut pkt) = self.pending.pop_front() else {
            return;
        };
        if pkt.ack_no != RETX_MARKER {
            pkt.sent_at = ctx.now;
        }
        pkt.rate_echo = self.cc.rate_bps();
        if let Some(color) = Color::from_class(pkt.class) {
            self.sent_by_color[color.class() as usize] += 1;
        }
        self.port.send(pkt, ctx);
        if !self.pending.is_empty() {
            ctx.schedule_timer(self.pace_gap, PACE_TOKEN);
        }
    }

    /// Answers a NACK by re-queueing the requested packet at the head of
    /// the pacing queue. The retransmission keeps the *original* frame
    /// emission time as `sent_at`, so receiver-side deadline accounting
    /// sees the full decode latency (original wait + NACK round trip).
    fn handle_nack(&mut self, nack: &Packet, ctx: &mut Context<'_>) {
        let Some(tag) = nack.frame else { return };
        let Some((emitted_at, meta)) = self.retx_buffer.get(&tag.frame) else {
            return; // frame already evicted: the data is gone
        };
        let Some(&(bytes, class)) = meta.get(tag.index as usize) else {
            return;
        };
        let mut pkt = Packet::data(self.cfg.flow, ctx.self_id, self.cfg.dst, bytes)
            .with_class(class)
            .with_seq(self.seq)
            .with_frame(tag)
            .with_id(ctx.alloc_packet_id());
        pkt.sent_at = *emitted_at;
        pkt.ack_no = RETX_MARKER;
        self.seq += 1;
        self.retransmissions += 1;
        let was_idle = self.pending.is_empty();
        self.pending.push_front(pkt);
        if was_idle {
            ctx.schedule_timer(SimDuration::ZERO, PACE_TOKEN);
        }
    }

    fn apply_feedback(&mut self, pkt: &Packet, ctx: &mut Context<'_>) {
        let Some(fb) = pkt.feedback else { return };
        if !self.filter.accept(&fb) {
            return;
        }
        // Eq. 8 base r(k - D): the rate echoed through the ACK, i.e. the
        // rate in effect when the acknowledged packet was sent.
        self.cc.update_from(pkt.rate_echo, fb.loss);
        if let Some(m) = self.cc.mkc_mut() {
            m.record_fresh(ctx.now);
        }
        if self.cfg.mode == SourceMode::Pels {
            self.gamma.update(fb.fgs_loss);
        }
        if self.cfg.keep_series {
            let t = ctx.now.as_secs_f64();
            self.rate_series.push(t, self.cc.rate_bps() / 1_000.0);
            self.gamma_series.push(t, self.gamma.gamma());
            self.loss_series.push(t, fb.fgs_loss);
        }
        if self.telemetry.is_enabled() {
            let t = ctx.now.as_secs_f64();
            self.telemetry.counter_add(&self.metric.epochs, 1);
            self.telemetry.sample(&self.metric.rate, t, self.cc.rate_bps() / 1_000.0);
            self.telemetry.sample(&self.metric.gamma, t, self.gamma.gamma());
            self.telemetry.sample(&self.metric.fgs_loss, t, fb.fgs_loss);
        }
    }
}

impl Agent for PelsSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.schedule_timer(self.cfg.start_at, START_TOKEN);
        if let Some(m) = self.cc.mkc() {
            // Stale-feedback watchdog: checked every quarter timeout so a
            // fault is detected within 1.25 timeouts of the last fresh epoch.
            let period = m.config().stale_timeout / 4;
            ctx.schedule_timer(self.cfg.start_at + period, WATCHDOG_TOKEN);
        }
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if packet.flow != self.cfg.flow {
            return;
        }
        match packet.kind {
            PacketKind::Ack => self.apply_feedback(&packet, ctx),
            PacketKind::Nack if self.cfg.arq.is_some() => self.handle_nack(&packet, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        match token {
            START_TOKEN | FRAME_TOKEN => self.emit_frame(ctx),
            PACE_TOKEN => self.pace_one(ctx),
            WATCHDOG_TOKEN => {
                if let Some(m) = self.cc.mkc_mut() {
                    let decayed = m.apply_staleness(ctx.now);
                    let (rate, period) = (m.rate_bps(), m.config().stale_timeout / 4);
                    if decayed {
                        if self.cfg.keep_series {
                            self.rate_series.push(ctx.now.as_secs_f64(), rate / 1_000.0);
                        }
                        self.telemetry.counter_add(&self.metric.stale_decays, 1);
                        self.telemetry.sample(
                            &self.metric.rate,
                            ctx.now.as_secs_f64(),
                            rate / 1_000.0,
                        );
                    }
                    ctx.schedule_timer(period, WATCHDOG_TOKEN);
                }
            }
            other => unreachable!("unknown timer token {other}"),
        }
    }

    fn on_tx_complete(&mut self, _port: usize, ctx: &mut Context<'_>) {
        self.port.on_tx_complete(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_fgs::frame::foreman;
    use pels_netsim::disc::{DropTail, QueueLimit};
    use pels_netsim::packet::Feedback;
    use pels_netsim::sim::Simulator;
    use pels_netsim::time::{Rate, SimTime};

    struct Recorder {
        got: Vec<Packet>,
        reply_feedback: Option<Feedback>,
    }
    impl Agent for Recorder {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            if p.kind == PacketKind::Data {
                let mut ack = Packet::ack_for(&p, 40).with_id(ctx.alloc_packet_id());
                if let Some(fb) = self.reply_feedback {
                    ack.feedback = Some(fb);
                }
                ctx.deliver(ack.dst, SimDuration::from_millis(1), ack);
                self.got.push(p);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn source_cfg(dst: AgentId) -> SourceConfig {
        SourceConfig {
            flow: FlowId(1),
            dst,
            start_at: SimDuration::ZERO,
            trace: VideoTrace::constant(30, 10.0, 1_600, 10_000),
            cc: CcSpec::default(),
            gamma: GammaConfig::default(),
            packet_bytes: 500,
            mode: SourceMode::Pels,
            arq: None,
            keep_series: true,
        }
    }

    fn build(mode: SourceMode, reply_feedback: Option<Feedback>) -> (Simulator, AgentId, AgentId) {
        let mut sim = Simulator::new(5);
        let src_id = AgentId(0);
        let dst_id = AgentId(1);
        let port = Port::new(
            0,
            dst_id,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(1000))),
        );
        let cfg = SourceConfig { mode, ..source_cfg(dst_id) };
        sim.add_agent(Box::new(PelsSource::new(cfg, port)));
        sim.add_agent(Box::new(Recorder { got: vec![], reply_feedback }));
        (sim, src_id, dst_id)
    }

    #[test]
    fn emits_frames_at_frame_rate() {
        let (mut sim, src, dst) = build(SourceMode::Pels, None);
        sim.run_until(SimTime::from_secs_f64(1.05));
        // 10 fps for ~1s: 11 frame emissions (t=0 included).
        assert_eq!(sim.agent::<PelsSource>(src).frames_sent(), 11);
        let got = &sim.agent::<Recorder>(dst).got;
        // Initial rate 128 kb/s == base bitrate: base-only frames.
        let frames: std::collections::HashSet<u64> =
            got.iter().map(|p| p.frame.unwrap().frame).collect();
        assert!(frames.len() >= 10);
        assert!(got.iter().all(|p| p.class == 0), "base-only at 128 kb/s");
    }

    #[test]
    fn frame_tags_are_consistent() {
        let (mut sim, _src, dst) = build(SourceMode::Pels, None);
        sim.run_until(SimTime::from_secs_f64(0.5));
        for p in &sim.agent::<Recorder>(dst).got {
            let tag = p.frame.expect("video packets carry frame tags");
            assert!(tag.index < tag.total);
            assert!(tag.base <= tag.total);
        }
    }

    #[test]
    fn no_feedback_keeps_initial_rate() {
        // Without any feedback labels the control loop never fires: the
        // source keeps streaming at its initial rate.
        let (mut sim, src, _dst) = build(SourceMode::Pels, None);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let s = sim.agent::<PelsSource>(src);
        assert!((s.rate_bps() - 128_000.0).abs() < 1.0, "no feedback, no change");
        assert_eq!(s.rate_series.len(), 0);
    }

    #[test]
    fn stale_epochs_do_not_drive_control() {
        let (mut sim, src, dst) =
            build(SourceMode::Pels, Some(Feedback::new(AgentId(7), 5, -1.0, 0.0)));
        // Stop before the 300 ms stale timeout: this test isolates the
        // epoch filter, not the staleness watchdog.
        sim.run_until(SimTime::from_secs_f64(0.25));
        let s = sim.agent::<PelsSource>(src);
        // Every ACK carries the same epoch 5: exactly one MKC step applies.
        // One step from 128k with p=-1: 128k + 20k + 0.5*128k = 212k.
        assert!((s.rate_bps() - 212_000.0).abs() < 1.0, "rate {}", s.rate_bps());
        assert_eq!(s.rate_series.len(), 1);
        let _ = dst;
    }

    #[test]
    fn watchdog_decays_rate_when_feedback_goes_stale() {
        // One fresh epoch arrives early, then only duplicates: after the
        // stale timeout the watchdog multiplicatively decreases the rate
        // down to the configured floor.
        let (mut sim, src, _dst) =
            build(SourceMode::Pels, Some(Feedback::new(AgentId(7), 5, -1.0, 0.0)));
        sim.run_until(SimTime::from_secs_f64(2.0));
        let s = sim.agent::<PelsSource>(src);
        let m = s.mkc().expect("default CC is MKC");
        assert!(m.in_stale_fallback(), "stale for ~1.7 s");
        assert!(m.stale_decays() > 5);
        assert!(
            (s.rate_bps() - 64_000.0).abs() < 1.0,
            "decayed to the 64 kb/s floor, got {}",
            s.rate_bps()
        );
    }

    #[test]
    fn sheds_red_then_yellow_as_rate_nears_base_floor() {
        // Base bitrate is 128 kb/s (1600 B at 10 fps). At 135 kb/s the
        // source is inside the red-shed band (< 1.1×base); at 130 kb/s it
        // is inside the yellow-shed band (< 1.05×base).
        for (kbps, expect_red_shed, expect_yellow_shed) in
            [(135.0, true, false), (130.0, false, true)]
        {
            let mut sim = Simulator::new(5);
            let dst_id = AgentId(1);
            let port = Port::new(
                0,
                dst_id,
                Rate::from_mbps(10.0),
                SimDuration::from_millis(1),
                Box::new(DropTail::new(QueueLimit::Packets(1000))),
            );
            let cfg = SourceConfig {
                cc: CcSpec::Mkc(MkcConfig { initial: Rate::from_kbps(kbps), ..Default::default() }),
                ..source_cfg(dst_id)
            };
            sim.add_agent(Box::new(PelsSource::new(cfg, port)));
            sim.add_agent(Box::new(Recorder { got: vec![], reply_feedback: None }));
            sim.run_until(SimTime::from_secs_f64(1.0));
            let s = sim.agent::<PelsSource>(AgentId(0));
            assert_eq!(s.sent_by_color[2], 0, "red shed at {kbps} kb/s");
            assert_eq!(s.shed_red_frames > 0, expect_red_shed, "{kbps} kb/s");
            assert_eq!(s.shed_yellow_frames > 0, expect_yellow_shed, "{kbps} kb/s");
            if expect_red_shed {
                assert!(s.sent_by_color[1] > 0, "yellow still flows in the red-shed band");
            }
            if expect_yellow_shed {
                assert_eq!(s.sent_by_color[1], 0, "base-only below the yellow-shed floor");
            }
        }
    }

    #[test]
    fn best_effort_mode_sends_no_red_and_keeps_gamma_idle() {
        let (mut sim, src, dst) =
            build(SourceMode::BestEffort, Some(Feedback::new(AgentId(7), 1, -1.0, 0.2)));
        sim.run_until(SimTime::from_secs_f64(2.0));
        let s = sim.agent::<PelsSource>(src);
        assert_eq!(s.sent_by_color[2], 0, "best-effort sends no red");
        // Gamma was never updated in BestEffort mode.
        assert!((s.gamma() - 0.5).abs() < 1e-12);
        let got = &sim.agent::<Recorder>(dst).got;
        assert!(got.iter().all(|p| p.class <= 1));
    }

    #[test]
    fn pacing_spreads_packets_within_the_interval() {
        let (mut sim, _src, dst) = build(SourceMode::Pels, None);
        sim.run_until(SimTime::from_secs_f64(0.35));
        let got = &sim.agent::<Recorder>(dst).got;
        // Packets of frame 1 (t in [0.1, 0.2)) are spaced, not a burst.
        let f1: Vec<f64> = got
            .iter()
            .filter(|p| p.frame.unwrap().frame == 1)
            .map(|p| p.sent_at.as_secs_f64())
            .collect();
        assert!(f1.len() >= 3);
        let gaps: Vec<f64> = f1.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().all(|&g| g > 0.005), "gaps {gaps:?}");
    }

    #[test]
    fn paper_trace_base_is_21_green_packets() {
        // With the paper-literal Foreman trace, a base-only frame is 21
        // green packets of 500 bytes.
        let mut sim = Simulator::new(5);
        let dst_id = AgentId(1);
        let port = Port::new(
            0,
            dst_id,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(1),
            Box::new(DropTail::new(QueueLimit::Packets(1000))),
        );
        let cfg = SourceConfig {
            trace: foreman::trace(),
            cc: CcSpec::Mkc(MkcConfig {
                initial: Rate::from_kbps(840.0), // exactly the base bitrate
                ..Default::default()
            }),
            ..source_cfg(dst_id)
        };
        sim.add_agent(Box::new(PelsSource::new(cfg, port)));
        sim.add_agent(Box::new(Recorder { got: vec![], reply_feedback: None }));
        sim.run_until(SimTime::from_secs_f64(0.55));
        let got = &sim.agent::<Recorder>(dst_id).got;
        let frame0: Vec<_> = got.iter().filter(|p| p.frame.unwrap().frame == 0).collect();
        assert_eq!(frame0.len(), 21);
        assert!(frame0.iter().all(|p| p.class == 0 && p.size_bytes == 500));
    }
}
