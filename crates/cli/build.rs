//! Embeds build provenance so `pels --version` can prove which commit a
//! binary was built from. Stale `target/release` binaries have been
//! observed to survive `cargo build --release` on some hosts, silently
//! recording results for old code; ci.sh gates on the embedded commit
//! matching `git rev-parse HEAD` before any result is written.

use std::path::Path;
use std::process::Command;

fn main() {
    let commit = git(&["rev-parse", "HEAD"]).unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=PELS_GIT_COMMIT={commit}");

    // Seconds since the epoch at compile time — enough to spot a binary
    // that predates the source tree it claims to represent.
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    println!("cargo:rustc-env=PELS_BUILD_UNIX_TIME={timestamp}");

    // Re-run when HEAD moves (new commit or branch switch) so the embedded
    // commit cannot go stale. HEAD itself only changes on branch switches;
    // the ref it points at changes on every commit, so track both.
    if let Some(git_dir) = git(&["rev-parse", "--git-dir"]) {
        let git_dir = Path::new(&git_dir);
        println!("cargo:rerun-if-changed={}", git_dir.join("HEAD").display());
        if let Some(head_ref) = git(&["symbolic-ref", "-q", "HEAD"]) {
            println!("cargo:rerun-if-changed={}", git_dir.join(head_ref).display());
        }
    }
}

fn git(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim();
    if s.is_empty() {
        None
    } else {
        Some(s.to_string())
    }
}
